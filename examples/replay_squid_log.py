"""Scenario: replay a real Squid access log through the simulator.

Operators who still have NLANR-style sanitized access logs can feed
them straight in.  This example writes a demonstration log in Squid
native format, parses it back (dropping POSTs, errors and zero-byte
responses, and deriving document versions from size changes), and
answers the operator's question: how much would browser-cache sharing
help this population?

Run:  python examples/replay_squid_log.py
"""

import tempfile
from pathlib import Path

from repro import Organization, SimulationConfig, simulate
from repro.traces import compute_stats, generate_trace, parse_squid_log, SyntheticTraceConfig
from repro.traces.squid import write_squid_log


def make_demo_log(path: Path) -> None:
    """Produce a realistic access.log (a synthetic day, serialized)."""
    trace = generate_trace(
        SyntheticTraceConfig(n_requests=30_000, n_clients=60, name="office"),
        seed=11,
    )
    write_squid_log(trace, path)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        log_path = Path(tmp) / "access.log"
        make_demo_log(log_path)
        print(f"parsing {log_path} ({log_path.stat().st_size / 1e6:.1f} MB)")

        trace = parse_squid_log(log_path, name="office-day")
        stats = compute_stats(trace)
        print(
            f"  {stats.n_requests:,} cacheable GETs, {stats.n_clients} clients, "
            f"{stats.total_gb:.2f} GB requested, "
            f"max hit ratio {stats.max_hit_ratio:.1%}"
        )

        config = SimulationConfig.relative(trace, proxy_frac=0.10, browser_sizing="minimum")
        plb = simulate(trace, Organization.PROXY_AND_LOCAL_BROWSER, config)
        baps = simulate(trace, Organization.BROWSERS_AWARE_PROXY, config)

        print(f"\nconventional proxy + browsers : {plb.hit_ratio:.2%} hit ratio")
        print(f"browsers-aware proxy server    : {baps.hit_ratio:.2%} hit ratio")
        saved = baps.hits - plb.hits
        print(
            f"\n{saved:,} additional requests ({saved / len(trace):.2%} of the day) "
            "would be served inside the LAN instead of crossing the WAN"
        )
        print(
            f"peak browser-index memory at the proxy: "
            f"{baps.index_peak_footprint_bytes / 1e3:.0f} KB "
            f"({baps.index_peak_entries:,} entries)"
        )


if __name__ == "__main__":
    main()
