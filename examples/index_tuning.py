"""Scenario: tuning the browser index for a resource-constrained proxy.

The browser index file is the one new data structure BAPS adds to a
proxy.  This example explores the two knobs the paper discusses:

* **update discipline** — immediate invalidation messages vs batched
  periodic updates at increasing delay thresholds (trading hit ratio
  for update traffic),
* **representation** — exact 28-byte entries vs per-client Bloom
  filters at several bits/doc budgets (trading memory for false
  positives).

Run:  python examples/index_tuning.py
"""

from repro import Organization, PeriodicUpdatePolicy, SimulationConfig
from repro.core.simulator import Simulator
from repro.index.bloom import BloomIndex
from repro.traces import SyntheticTraceConfig, generate_trace
from repro.util.fmt import ascii_table
from repro.util.rng import make_rng


def main() -> None:
    trace = generate_trace(
        SyntheticTraceConfig(n_requests=40_000, n_clients=80, name="branch-office"),
        seed=5,
    )
    base = SimulationConfig.relative(trace, proxy_frac=0.10, browser_sizing="average")

    # -- update discipline --------------------------------------------------
    rows = []
    exact_sim = Simulator(trace, Organization.BROWSERS_AWARE_PROXY, base)
    exact = exact_sim.run()
    rows.append(
        ["invalidation", f"{exact.hit_ratio:.2%}",
         f"{exact.overhead.index_update_messages:,}", "0", "0"]
    )
    for threshold in (0.01, 0.05, 0.10, 0.25):
        config = base.with_(index_update_policy=PeriodicUpdatePolicy(threshold=threshold))
        r = Simulator(trace, Organization.BROWSERS_AWARE_PROXY, config).run()
        rows.append(
            [f"periodic {threshold:.0%}", f"{r.hit_ratio:.2%}",
             f"{r.index_stats.flushes:,}",
             str(r.index_stats.false_hits), str(r.index_stats.false_misses)]
        )
    print(ascii_table(
        ["discipline", "hit ratio", "update msgs", "false hits", "false misses"],
        rows,
        title="index update discipline (BAPS, 10% cache)",
    ))

    # -- representation ------------------------------------------------------
    browsers = exact_sim.browsers
    cached = {(cid, d) for cid, cache in enumerate(browsers) for d in cache}
    per_client = max(1, max(len(c) for c in browsers))
    rng = make_rng(3)
    probes = list(
        zip(
            rng.integers(0, len(browsers), size=20_000).tolist(),
            rng.integers(0, trace.n_docs, size=20_000).tolist(),
        )
    )
    rows = [[
        "exact (28 B/doc)",
        f"{exact.index_peak_footprint_bytes / 1e3:.0f} KB",
        "0.000%",
    ]]
    for bits in (8.0, 12.0, 16.0, 24.0):
        bloom = BloomIndex(len(browsers), per_client, bits_per_doc=bits)
        for cid, cache in enumerate(browsers):
            bloom.rebuild(cid, list(cache))
        negatives = [(c, d) for c, d in probes if (c, d) not in cached]
        fp = sum(1 for c, d in negatives if d in bloom._filters[c]) / len(negatives)
        rows.append(
            [f"bloom {bits:g} bits/doc", f"{bloom.footprint_bytes() / 1e3:.0f} KB",
             f"{fp:.3%}"]
        )
    print()
    print(ascii_table(
        ["representation", "proxy memory", "false-positive rate"],
        rows,
        title="index representation (final cache contents)",
    ))
    print("\nrule of thumb: periodic 10% + bloom 16 bits/doc keeps the index")
    print("an order of magnitude cheaper with a negligible hit-ratio cost.")


if __name__ == "__main__":
    main()
