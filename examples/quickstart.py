"""Quickstart: is browser-cache content worth sharing?

Loads the calibrated NLANR-uc trace, runs the conventional
proxy-and-local-browser organization and the browsers-aware proxy
server side by side, and prints where BAPS's extra hits come from.

Run:  python examples/quickstart.py
"""

from repro import Organization, SimulationConfig, load_paper_trace, simulate


def main() -> None:
    trace = load_paper_trace("NLANR-uc")
    print(f"trace: {trace.name}, {len(trace):,} requests, {trace.n_clients} clients")

    # Size caches the way the paper does: proxy = 10% of the infinite
    # cache size, browser caches at their "minimum" (aggregate equals
    # the proxy cache).
    config = SimulationConfig.relative(trace, proxy_frac=0.10, browser_sizing="minimum")
    print(
        f"proxy cache: {config.proxy_capacity / 1e6:.1f} MB, "
        f"browser caches: {config.browser_capacity / 1e3:.0f} KB each\n"
    )

    plb = simulate(trace, Organization.PROXY_AND_LOCAL_BROWSER, config)
    baps = simulate(trace, Organization.BROWSERS_AWARE_PROXY, config)

    print(f"{'':34s}{'hit ratio':>12s}{'byte hit ratio':>16s}")
    for result in (plb, baps):
        print(
            f"{result.organization:34s}{result.hit_ratio:>11.2%} "
            f"{result.byte_hit_ratio:>15.2%}"
        )

    breakdown = baps.breakdown()
    print(
        f"\nBAPS hit locations: {breakdown.local_browser:.2%} local browser, "
        f"{breakdown.proxy:.2%} proxy, {breakdown.remote_browser:.2%} remote browsers"
    )
    gain = baps.hit_ratio - plb.hit_ratio
    print(
        f"browsers-aware proxy adds {gain * 100:.2f} hit-ratio points "
        f"({gain / plb.hit_ratio:.1%} relative) by harvesting remote browser caches"
    )
    print(
        f"communication overhead: {baps.overhead.communication_fraction:.3%} "
        "of total service time"
    )


if __name__ == "__main__":
    main()
