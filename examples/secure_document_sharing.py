"""Scenario: reliable peer-to-peer document sharing (paper §6).

Walks the full reliability story on a simulated LAN of three browsers:

1. the proxy watermarks a document (MD5 digest signed with the proxy's
   RSA private key) when it first serves it,
2. a remote-browser hit is relayed through the anonymizing proxy —
   the transcript shows neither peer learns the other's identity,
3. the requester verifies the watermark; a tampered copy is rejected,
4. the decentralised alternative: the same request routed through a
   mix chain of peer browsers,
5. the overhead of all this cryptography, priced against the 10 Mbps
   transfer it protects.

Run:  python examples/secure_document_sharing.py
"""

from repro.network import EthernetModel
from repro.security import (
    MixChain,
    SecureTransferProtocol,
    SecurityOverheadModel,
    WatermarkError,
)
from repro.security.anonymity import PeerEndpoint

DOCUMENT = (b"<html><head><title>CS 562 Lecture 7</title></head>"
            b"<body>Peer-to-peer web caching, browser-aware proxies...</body></html>" * 24)


def main() -> None:
    protocol = SecureTransferProtocol(seed=2002)
    alice = PeerEndpoint.create("alice", seed=1)
    bob = PeerEndpoint.create("bob", seed=2)
    carol = PeerEndpoint.create("carol", seed=3)

    # 1. the proxy serves bob and watermarks the document.
    mark = protocol.publish(bob, key=42, document=DOCUMENT)
    print(f"published doc 42 to bob ({len(DOCUMENT)} B), "
          f"watermark digest {mark.digest.hex()[:16]}…")

    # 2-3. alice's request is a remote-browser hit on bob's cache.
    doc, record = protocol.transfer(alice, bob, key=42)
    assert doc == DOCUMENT
    print(f"alice received and verified doc 42 "
          f"(crypto cost {record.crypto_seconds * 1e3:.1f} ms at 2002-era rates)")

    transcript = protocol.anonymizer.transcript
    print("\nwire transcript (what an eavesdropper sees):")
    for msg in transcript:
        print(f"  {msg.sender:>9s} -> {msg.receiver:<9s} {msg.kind:<8s} {len(msg.payload)} B")
    bob_saw = {m.sender for m in transcript if m.receiver == "bob"}
    alice_saw = {m.sender for m in transcript if m.receiver == "alice"}
    print(f"bob only ever talked to: {sorted(bob_saw)} (never learns 'alice')")
    print(f"alice only ever talked to: {sorted(alice_saw)} (never learns 'bob')")

    # 3b. tampering is detected.
    bob.store[42] = DOCUMENT.replace(b"proxies", b"pwned!!")
    try:
        protocol.transfer(carol, bob, key=42)
        raise SystemExit("BUG: tampered document accepted")
    except WatermarkError as exc:
        print(f"\ntampered copy rejected: {exc}")
    bob.store[42] = DOCUMENT  # restore

    # 4. decentralised variant: onion routing over peer hops.
    chain = MixChain(seed=7)
    delivered = chain.route([carol, alice, bob], b"GET doc 42")
    print(f"\nmix chain delivered request through carol->alice->bob: {delivered!r}")
    hops_seen_by_alice = {m.sender for m in chain.transcript if m.receiver == "alice"}
    print(f"middle hop alice saw only its predecessor: {sorted(hops_seen_by_alice)}")

    # 5. overhead against the LAN transfer it protects.
    lan = EthernetModel()
    model = SecurityOverheadModel()
    n = len(DOCUMENT)
    crypto = model.transfer_cost(n)
    wire = lan.transfer_time(n)
    print(f"\nper-transfer cost for {n} B: crypto {crypto * 1e3:.1f} ms vs "
          f"LAN transfer {wire * 1e3:.1f} ms ({crypto / wire:.1%} overhead)")


if __name__ == "__main__":
    main()
