"""Scenario: browser sharing vs proxy-level cooperation.

An ISP has a fixed storage budget for caching and several ways to
deploy it: one big proxy, several sibling proxies with ICP queries, a
two-level leaf/parent hierarchy — or the paper's proposal, one proxy
that additionally harvests the browser caches its clients already have.

This example compares all of them at the same total proxy storage on
the NLANR-bo1 workload and prints where each scheme's hits come from.

Run:  python examples/cooperative_proxies.py
"""

from repro import Organization, SimulationConfig, load_paper_trace, simulate
from repro.core.events import HitLocation
from repro.hierarchy import HierarchyConfig, HierarchySimulator
from repro.util.fmt import ascii_table


def main() -> None:
    trace = load_paper_trace("NLANR-bo1")
    core = SimulationConfig.relative(trace, proxy_frac=0.10, browser_sizing="minimum")
    total = core.proxy_capacity
    browser = core.browser_capacity
    print(
        f"workload: {trace.name}, {len(trace):,} requests, {trace.n_clients} clients; "
        f"budget: {total / 1e6:.0f} MB of proxy storage + the clients' own "
        f"{browser / 1e3:.0f} KB browser caches\n"
    )

    rows = []

    def add_row(label, result, extra=""):
        rows.append(
            [
                label,
                f"{result.hit_ratio * 100:.2f}%",
                f"{result.byte_hit_ratio * 100:.2f}%",
                extra,
            ]
        )

    plb = simulate(trace, Organization.PROXY_AND_LOCAL_BROWSER, core)
    add_row("one proxy, private browsers", plb)

    baps = simulate(trace, Organization.BROWSERS_AWARE_PROXY, core)
    add_row(
        "one browsers-aware proxy (BAPS)",
        baps,
        f"{baps.by_location_remote_hits():,} remote-browser hits",
    )

    sib_cfg = HierarchyConfig(
        n_leaves=4, leaf_capacity=total // 4, siblings=True, browser_capacity=browser
    )
    sib_sim = HierarchySimulator(trace, sib_cfg)
    sib = sib_sim.run()
    add_row(
        "4 sibling proxies (ICP)",
        sib,
        f"{sib.by_location[HitLocation.SIBLING_PROXY].hits:,} sibling hits, "
        f"{sib_sim.icp_stats.queries_sent:,} queries",
    )

    two = HierarchySimulator(
        trace,
        HierarchyConfig(
            n_leaves=1,
            leaf_capacity=total // 2,
            parent_capacity=total - total // 2,
            browser_capacity=browser,
        ),
    ).run()
    add_row(
        "leaf + parent hierarchy",
        two,
        f"{two.by_location[HitLocation.PARENT_PROXY].hits:,} parent hits",
    )

    print(ascii_table(
        ["deployment", "hit ratio", "byte hit ratio", "notes"],
        rows,
        title="equal-storage comparison",
    ))

    print(
        "\ntakeaway: sibling cooperation roughly recovers what splitting the\n"
        "budget loses, an inclusive hierarchy duplicates content between\n"
        "levels, and only the browsers-aware proxy *adds* capacity — the\n"
        "browser caches were already paid for."
    )


if __name__ == "__main__":
    main()
