"""Scenario: sizing a campus proxy with peer-to-peer browser sharing.

A university department runs one Squid-style proxy in front of 150 lab
machines.  The question the paper's §3.2 matrix answers: which caching
organization serves this population best, and how does the answer
change with the proxy budget?

This example builds a custom synthetic workload (heavier client
affinity than the NLANR profiles — lab users revisit course pages), and
sweeps all five organizations over four proxy budgets, printing the
Figure 2-style tables plus the §5 overhead summary for BAPS.

Run:  python examples/campus_proxy_comparison.py
"""

from repro import Organization, SimulationConfig, SyntheticTraceConfig, generate_trace, simulate
from repro.core.sweep import run_policy_sweep


def build_campus_trace():
    config = SyntheticTraceConfig(
        n_requests=60_000,
        n_clients=150,
        p_new=0.45,          # course material is heavily revisited
        p_self=0.30,         # strong per-user working sets
        private_doc_frac=0.10,
        uniform_doc_frac=0.30,
        recency_bias=0.2,
        client_activity_alpha=0.4,
        mean_doc_size=15_000,
        duration=7 * 86_400.0,  # one teaching week
        name="campus",
    )
    return generate_trace(config, seed=2026)


def main() -> None:
    trace = build_campus_trace()
    print(f"workload: {len(trace):,} requests, {trace.n_clients} clients, "
          f"{trace.total_bytes / 1e9:.2f} GB requested\n")

    sweep = run_policy_sweep(
        trace,
        organizations=tuple(Organization),
        fractions=(0.005, 0.05, 0.10, 0.20),
        browser_sizing="minimum",
    )
    print(sweep.table("hit_ratio", title="campus: hit ratios by organization"))
    print()
    print(sweep.table("byte_hit_ratio", title="campus: byte hit ratios by organization"))

    # How much LAN traffic does the sharing cost at the 10% budget?
    baps = sweep.get(Organization.BROWSERS_AWARE_PROXY, 0.10)
    o = baps.overhead
    print(
        f"\nBAPS at the 10% budget: {baps.by_location_remote_hits():,} remote-browser "
        f"hits moved {baps.by_location[list(baps.by_location)[2]].hit_bytes / 1e6:.1f} MB "
        "across the LAN"
    )
    print(
        f"  communication: {o.communication_fraction:.3%} of service time, "
        f"contention {o.contention_fraction_of_communication:.3%} of communication"
    )

    # Decision rule: does BAPS beat doubling the proxy?
    plb_20 = sweep.get(Organization.PROXY_AND_LOCAL_BROWSER, 0.20)
    baps_10 = sweep.get(Organization.BROWSERS_AWARE_PROXY, 0.10)
    verdict = "yes" if baps_10.hit_ratio >= plb_20.hit_ratio else "no"
    print(
        f"\nDoes BAPS@10% match a doubled conventional proxy (PLB@20%)? {verdict} "
        f"({baps_10.hit_ratio:.2%} vs {plb_20.hit_ratio:.2%})"
    )


if __name__ == "__main__":
    main()
