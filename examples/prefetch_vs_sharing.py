"""Scenario: prefetch into browser caches, or share them?

Both techniques exploit the same resource — idle browser-cache
capacity.  The browsers-aware proxy shares *what browsers already
hold*; a PPM prefetcher *speculatively fills them*.  Which wins depends
entirely on the workload's sequential structure, which this example
makes visible by running both techniques on two workloads that differ
only in that respect.

Run:  python examples/prefetch_vs_sharing.py
"""

from repro import Organization, SimulationConfig, load_paper_trace, simulate
from repro.analysis import analyze_trace
from repro.prefetch import PrefetchConfig, simulate_prefetch
from repro.traces import SyntheticTraceConfig, generate_trace
from repro.util.fmt import ascii_table


def page_workload():
    return generate_trace(
        SyntheticTraceConfig(
            n_requests=40_000,
            n_clients=60,
            p_new=0.12,
            p_self=0.2,
            embedded_per_page_mean=4.0,
            client_activity_alpha=0.3,
            name="intranet-portal",
        ),
        seed=21,
    )


def evaluate(trace):
    base = SimulationConfig.relative(trace, proxy_frac=0.10, browser_sizing="average")
    plb = simulate(trace, Organization.PROXY_AND_LOCAL_BROWSER, base)
    baps = simulate(trace, Organization.BROWSERS_AWARE_PROXY, base)
    pf_config = PrefetchConfig(
        proxy_capacity=base.proxy_capacity,
        browser_capacity=base.browser_capacity,
        confidence_threshold=0.4,
        max_prefetches_per_request=2,
    )
    pf, stats = simulate_prefetch(trace, pf_config)
    return plb, baps, pf, stats


def main() -> None:
    rows = []
    for trace in (page_workload(), load_paper_trace("NLANR-uc")):
        plb, baps, pf, stats = evaluate(trace)
        rows.append(
            [
                trace.name,
                f"{plb.hit_ratio:.2%}",
                f"{baps.hit_ratio:.2%}",
                f"{pf.hit_ratio:.2%}",
                f"{stats.precision:.1%}",
                f"{stats.wan_bytes / 1e6:.0f} MB",
            ]
        )
        # what does the workload look like?
        analysis = analyze_trace(trace, stack_points=[64])
        print(
            f"{trace.name}: Zipf alpha {analysis.zipf.alpha:.2f}, "
            f"{analysis.stack_cdf[64]:.0%} of re-references within a 64-doc LRU"
        )
    print()
    print(ascii_table(
        ["workload", "PLB", "BAPS", "PLB+PPM", "PPM precision", "prefetch WAN cost"],
        rows,
        title="sharing vs prefetching at a 10% cache budget",
    ))
    print(
        "\nrule of thumb: prefetch when the click-stream is predictable\n"
        "(portals, docs sites); share browser caches when it is not —\n"
        "sharing never wastes WAN bandwidth."
    )


if __name__ == "__main__":
    main()
