"""Hot-path replay benchmark: optimized engine vs the frozen reference.

Replays the small paper profile through both engines —
:func:`repro.core.simulator.simulate` (the optimized hot path) and
:func:`repro.core.reference.reference_simulate` (the frozen pre-
optimization engine) — for every organization, and reports requests
per second plus the speedup ratio.  Because both engines run on the
same machine in the same process, the *speedup* is machine-neutral:
CI compares the measured speedup against the committed baseline
(``BENCH_hotpath.json``) instead of absolute throughput, so a slower
runner does not fail the gate.

Usage::

    python benchmarks/bench_hotpath.py                  # print table
    python benchmarks/bench_hotpath.py --json out.json  # also write JSON
    python benchmarks/bench_hotpath.py --check BENCH_hotpath.json
        # exit 1 if the aggregate speedup regressed >30% vs baseline

The differential suite (``tests/test_differential.py``) separately
guarantees both engines produce bit-identical results; this harness
only measures time.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.config import SimulationConfig  # noqa: E402
from repro.core.policies import Organization  # noqa: E402
from repro.core.reference import reference_simulate  # noqa: E402
from repro.core.simulator import simulate  # noqa: E402
from repro.traces.profiles import small_paper_trace  # noqa: E402

#: sizing used by the golden harness: proxy at 8% of the infinite
#: cache, browsers at 0.4% each — small enough that eviction churn
#: (the expensive part of the replay) stays exercised.
PROXY_FRAC = 0.08
BROWSER_FRAC = 0.004


def _best_of(fn, repeats: int) -> float:
    """Minimum wall time of *repeats* runs — the least-noise estimator
    for a deterministic workload."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_benchmark(n_requests: int, repeats: int) -> dict:
    trace = small_paper_trace("NLANR-uc", n_requests=n_requests)
    config = SimulationConfig.relative(
        trace, proxy_frac=PROXY_FRAC, browser_frac=BROWSER_FRAC
    )
    per_org: dict[str, dict] = {}
    total_opt = total_ref = 0.0
    for org in Organization:
        t_opt = _best_of(lambda: simulate(trace, org, config), repeats)
        t_ref = _best_of(lambda: reference_simulate(trace, org, config), repeats)
        total_opt += t_opt
        total_ref += t_ref
        per_org[org.value] = {
            "optimized_seconds": t_opt,
            "reference_seconds": t_ref,
            "optimized_rps": n_requests / t_opt,
            "reference_rps": n_requests / t_ref,
            "speedup": t_ref / t_opt,
        }
    return {
        "trace": trace.name,
        "n_requests": n_requests,
        "repeats": repeats,
        "per_org": per_org,
        "aggregate": {
            "optimized_seconds": total_opt,
            "reference_seconds": total_ref,
            "optimized_rps": len(per_org) * n_requests / total_opt,
            "reference_rps": len(per_org) * n_requests / total_ref,
            "speedup": total_ref / total_opt,
        },
    }


def render(report: dict) -> str:
    lines = [
        f"hot-path benchmark — {report['trace']}, "
        f"{report['n_requests']:,} requests, best of {report['repeats']}",
        f"{'organization':<32} {'optimized':>12} {'reference':>12} {'speedup':>8}",
    ]
    for org, row in report["per_org"].items():
        lines.append(
            f"{org:<32} {row['optimized_rps']:>10,.0f}/s "
            f"{row['reference_rps']:>10,.0f}/s {row['speedup']:>7.2f}x"
        )
    agg = report["aggregate"]
    lines.append(
        f"{'aggregate (all orgs)':<32} {agg['optimized_rps']:>10,.0f}/s "
        f"{agg['reference_rps']:>10,.0f}/s {agg['speedup']:>7.2f}x"
    )
    return "\n".join(lines)


def check(report: dict, baseline_path: Path, tolerance: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    base_speedup = baseline["aggregate"]["speedup"]
    now_speedup = report["aggregate"]["speedup"]
    floor = base_speedup * (1.0 - tolerance)
    print(
        f"baseline aggregate speedup {base_speedup:.2f}x, "
        f"measured {now_speedup:.2f}x, floor {floor:.2f}x "
        f"(tolerance {tolerance:.0%})"
    )
    if now_speedup < floor:
        print(
            "PERF REGRESSION: the optimized hot path lost more than "
            f"{tolerance:.0%} of its speedup over the frozen reference",
            file=sys.stderr,
        )
        return 1
    print("OK: hot-path speedup within tolerance of the committed baseline")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--requests",
        type=int,
        default=6000,
        help="trace length (small paper profile, default 6000)",
    )
    parser.add_argument(
        "--repeats", type=int, default=7, help="best-of-N repeats (default 7)"
    )
    parser.add_argument("--json", metavar="PATH", help="write the JSON report")
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a committed baseline JSON; exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional speedup regression for --check (default 0.30)",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args.requests, args.repeats)
    print(render(report))
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    if args.check:
        return check(report, Path(args.check), args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
