"""Extension — graceful degradation of BAPS under client churn."""

from repro.experiments import availability


def test_availability_degradation(once, emit):
    result = once(availability.run)
    emit("availability", result.render())
    avails = sorted(result.by_availability, reverse=True)
    gains = [result.gain(a) for a in avails]
    # the gain shrinks as holders go offline...
    assert gains == sorted(gains, reverse=True)
    # ...but BAPS never falls below the conventional organization
    assert all(g >= -1e-9 for g in gains)
    # full availability reproduces the headline gain
    assert gains[0] > 0.005
    # offline-holder events were actually exercised
    low = result.by_availability[avails[-1]]
    assert low.holder_unavailable > 0
