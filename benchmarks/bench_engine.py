"""Engine microbenchmarks — simulator and substrate throughput.

Unlike the table/figure benchmarks these use pytest-benchmark's normal
multi-round timing, giving stable ops/sec numbers for the hot paths.
"""

import dataclasses

import numpy as np

from repro.cache import LRUCache, TieredLRUCache
from repro.core import Organization, SimulationConfig, resolve_workers, run_policy_sweep, simulate
from repro.index.bloom import BloomFilter
from repro.security.md5 import md5_digest
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

_TRACE = generate_trace(
    SyntheticTraceConfig(n_requests=20_000, n_clients=32, name="bench"), seed=9
)
_CONFIG = SimulationConfig.relative(_TRACE, proxy_frac=0.10, browser_sizing="minimum")

_SWEEP_ORGS = (
    Organization.PROXY_ONLY,
    Organization.PROXY_AND_LOCAL_BROWSER,
    Organization.BROWSERS_AWARE_PROXY,
)
_SWEEP_FRACTIONS = (0.05, 0.10, 0.20)


def test_engine_throughput_baps(benchmark):
    result = benchmark.pedantic(
        lambda: simulate(_TRACE, Organization.BROWSERS_AWARE_PROXY, _CONFIG),
        rounds=3,
        iterations=1,
    )
    assert result.n_requests == len(_TRACE)


def test_engine_throughput_plb(benchmark):
    result = benchmark.pedantic(
        lambda: simulate(_TRACE, Organization.PROXY_AND_LOCAL_BROWSER, _CONFIG),
        rounds=3,
        iterations=1,
    )
    assert result.n_requests == len(_TRACE)


def test_sweep_engine_serial(benchmark):
    """Serial-equivalent baseline for the parallel sweep engine."""
    sweep = benchmark.pedantic(
        lambda: run_policy_sweep(
            _TRACE, organizations=_SWEEP_ORGS, fractions=_SWEEP_FRACTIONS, workers=0
        ),
        rounds=2,
        iterations=1,
    )
    assert not sweep.failures
    assert len(sweep.results) == len(_SWEEP_ORGS) * len(_SWEEP_FRACTIONS)


def test_sweep_engine_parallel(benchmark):
    """Same grid over a full-width process pool; asserts the results
    are bit-identical to the serial path (the engine's core guarantee)
    and reports the measured speedup."""
    serial = run_policy_sweep(
        _TRACE, organizations=_SWEEP_ORGS, fractions=_SWEEP_FRACTIONS, workers=0
    )
    sweep = benchmark.pedantic(
        lambda: run_policy_sweep(
            _TRACE,
            organizations=_SWEEP_ORGS,
            fractions=_SWEEP_FRACTIONS,
            workers=resolve_workers(None),
        ),
        rounds=2,
        iterations=1,
    )
    assert not sweep.failures
    for key, result in serial.results.items():
        assert dataclasses.asdict(sweep.results[key]) == dataclasses.asdict(result)
    benchmark.extra_info["speedup_vs_serial"] = round(
        sweep.timing.speedup_vs_serial, 3
    )
    benchmark.extra_info["workers"] = sweep.timing.workers


def test_trace_generation(benchmark):
    config = SyntheticTraceConfig(n_requests=20_000, n_clients=32)
    trace = benchmark.pedantic(lambda: generate_trace(config, seed=1), rounds=3, iterations=1)
    assert len(trace) == 20_000


def test_lru_cache_ops(benchmark):
    keys = np.random.default_rng(0).integers(0, 2_000, size=10_000).tolist()

    def work():
        cache = LRUCache(100_000)
        for k in keys:
            if cache.get(k) is None:
                cache.put(k, 64)
        return cache

    benchmark(work)


def test_tiered_cache_ops(benchmark):
    keys = np.random.default_rng(0).integers(0, 2_000, size=10_000).tolist()

    def work():
        cache = TieredLRUCache(100_000, memory_fraction=0.1)
        for k in keys:
            entry, _tier = cache.get(k)
            if entry is None:
                cache.put(k, 64)
        return cache

    benchmark(work)


def test_bloom_filter_ops(benchmark):
    def work():
        f = BloomFilter.for_capacity(5_000)
        for k in range(5_000):
            f.add(k)
        return sum(1 for k in range(5_000) if k in f)

    assert benchmark(work) == 5_000


def test_md5_throughput(benchmark):
    payload = b"x" * 65_536
    digest = benchmark(lambda: md5_digest(payload))
    assert len(digest) == 16
