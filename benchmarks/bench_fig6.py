"""Figure 6 — BAPS vs proxy-and-local-browser on BU-98."""

from repro.experiments import fig4_6


def test_fig6(once, emit):
    result = once(lambda: fig4_6.run(6))
    emit("fig6", result.render())
    assert result.baps_wins_everywhere()
    assert result.mean_hit_gain() > 0.005
