"""§5 — browser index space requirement."""

from repro.experiments import index_space


def test_index_space(once, emit):
    result = once(index_space.run)
    emit("index_space", result.render())
    rep = result.model.report()
    # The paper's arithmetic: 100 browsers x 1K pages x 28 B/entry is a
    # few MB; Bloom compression brings it well under 2 MB.
    assert 1.0 < rep["exact_index_mb"] < 10.0
    assert rep["bloom_index_mb"] < 2.0
    # The measured peak from an actual run stays small as well.
    assert result.measured_peak_bytes < 5_000_000
    assert result.measured_peak_entries > 0
