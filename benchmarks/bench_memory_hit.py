"""§4.2 — memory byte hit ratios and hit latency."""

from repro.experiments import memory_hit


def test_memory_hit(once, emit):
    result = once(memory_hit.run)
    emit("memory_hit", result.render())

    conservative, resident = result.variants

    # The pairing is meaningful only if the byte hit ratios are close
    # (the paper picked 5% vs 10% for exactly this reason).
    for v in result.variants:
        assert abs(v.baps.byte_hit_ratio - v.plb.byte_hit_ratio) < 0.03

    # With memory-resident browser caches (the §1 technique), BAPS at
    # half the storage serves documents with lower per-byte latency.
    assert resident.normalized_latency_reduction > 0.0
    assert resident.latency_reduction > 0.0
    # And the conservative setting already shows the absolute latency
    # advantage of the smaller BAPS configuration.
    assert conservative.latency_reduction > 0.0
