"""§5 — remote-browser communication and contention overhead."""

from repro.experiments import overhead


def test_overhead(once, emit):
    result = once(overhead.run)
    emit("overhead", result.render())
    # "the largest accumulated communication and network contention
    # portion out of the total workload service time ... is less than
    # 1.2%"
    assert result.max_communication_fraction() < 0.012
    # "the contention time only contributes up to 0.12% of the total
    # communication time" — we allow a little headroom.
    assert result.max_contention_fraction() < 0.005
    # every trace actually exercised the remote path (except possibly
    # the 3-client limit case, which is still allowed a tiny share)
    assert any(
        r.by_location_remote_hits() > 100 for r in result.results.values()
    )
