"""Extension — PPM prefetching vs BAPS peer sharing."""

from repro.experiments import prefetching


def test_prefetch_vs_baps(once, emit):
    result = once(prefetching.run)
    emit("prefetch", result.render())

    page = result.row("page-structured")
    paper = result.row("NLANR-uc")

    # On a hyperlink-structured workload prefetching wins big...
    assert page.prefetch_stats.precision > 0.4
    assert page.prefetch_hr > page.baps_hr
    assert page.prefetch_hr > page.plb_hr + 0.05
    # ...at a real WAN-traffic cost.
    assert page.prefetch_stats.wan_bytes > 0

    # On the paper-style workload (no sequential structure) the
    # predictor has nothing to learn: precision collapses and BAPS's
    # free capacity wins.
    assert paper.prefetch_stats.precision < 0.2
    assert paper.baps_hr > paper.prefetch_hr
