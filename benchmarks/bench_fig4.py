"""Figure 4 — BAPS vs proxy-and-local-browser on NLANR-bo1."""

from repro.experiments import fig4_6


def test_fig4(once, emit):
    result = once(lambda: fig4_6.run(4))
    emit("fig4", result.render())
    # "consistently and significantly increases both hit ratios and
    # byte hit ratios"
    assert result.baps_wins_everywhere()
    assert result.mean_hit_gain() > 0.005  # > 0.5 points on average
