"""Figure 3 — BAPS hit-location breakdowns on NLANR-uc."""

from repro.experiments import fig3


def test_fig3(once, emit):
    result = once(fig3.run)
    emit("fig3", result.render())

    for frac in result.fractions:
        bd = result.hit_breakdowns[frac]
        # all three locations contribute at every size
        assert bd.local_browser > 0
        assert bd.proxy > 0
        # "the hit ratio in remote browser caches should not be
        # neglected even when the browser cache size is very small"
        assert bd.remote_browser > 0.005, frac

    # proxy share grows with the proxy cache
    proxies = [result.hit_breakdowns[f].proxy for f in result.fractions]
    assert proxies == sorted(proxies)
