"""Figure 7 — the BAPS limit case on CA*netII (3 clients)."""

from repro.core.policies import Organization
from repro.experiments import fig7


def test_fig7(once, emit):
    result = once(fig7.run)
    emit("fig7", result.render())
    # "The increases of both average hit ratio and byte hit ratio of
    # this trace ... are below 1%".
    assert 0 <= result.mean_hit_gain() < 0.01
    assert 0 <= result.mean_byte_gain() < 0.01
    # BAPS must still never be worse.
    for f in result.sweep.fractions:
        baps = result.sweep.get(Organization.BROWSERS_AWARE_PROXY, f)
        plb = result.sweep.get(Organization.PROXY_AND_LOCAL_BROWSER, f)
        assert baps.hit_ratio >= plb.hit_ratio - 1e-12
