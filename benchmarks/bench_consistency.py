"""Extension — stale deliveries vs validation traffic under real
consistency policies."""

from repro.experiments import consistency


def test_consistency_tradeoff(once, emit):
    result = once(consistency.run)
    emit("consistency", result.render())
    always = result.get("always-validate").consistency_stats
    day = result.get("fixed TTL 1d").consistency_stats
    adaptive = result.get("adaptive (Alex, 0.2)").consistency_stats

    # strong consistency never leaks stale bytes but validates a lot
    assert always.stale_deliveries == 0
    assert always.validations > day.validations

    # a one-day TTL trades the validations away for stale deliveries
    assert day.stale_deliveries >= always.stale_deliveries
    assert day.validations < always.validations / 5

    # adaptive sits between the fixed extremes on validations
    assert day.validations <= adaptive.validations <= always.validations

    # and coherence never *increases* the true-fresh hit count beyond
    # the perfect-coherence ceiling by more than the stale deliveries
    perfect = result.get("perfect (paper's rule)")
    for label, r in result.results.items():
        cs = r.consistency_stats
        assert r.hits - cs.stale_deliveries <= perfect.hits + 0.01 * r.n_requests, label
