"""Extension — BAPS vs cooperative proxy caching at equal storage."""

from repro.experiments import hierarchy


def test_hierarchy_comparison(once, emit):
    result = once(hierarchy.run)
    emit("hierarchy", result.render())
    r = result.results
    # BAPS tops the table: browser sharing adds capacity, cooperation
    # only redistributes it.
    assert result.baps_tops_table()
    # ICP siblings recover most of what splitting the storage loses.
    assert (
        r["4 sibling leaves (ICP)"].hit_ratio
        > r["4 siblings, no cooperation"].hit_ratio + 0.02
    )
    # An inclusive two-level hierarchy wastes storage on duplication.
    assert (
        r["leaf + parent (two-level)"].hit_ratio
        < r["single proxy + private browsers (PLB)"].hit_ratio
    )
