"""One-pass MRC benchmark: single analysis pass vs per-size re-replay.

Sweeps a dense relative-size grid for one organization two ways — the
per-cell replay engine (one full trace traversal *per size*) and the
one-pass stack-distance analysis (:mod:`repro.analysis.mrc`, one
traversal for the whole grid) — and reports the wall-clock speedup.
Because both paths run on the same machine in the same process, the
*speedup ratio* is machine-neutral: CI compares it against the
committed baseline (``BENCH_mrc.json``) instead of absolute
throughput, so a slower runner does not fail the gate.

``--check`` enforces two gates:

* the measured speedup stays within ``--tolerance`` of the committed
  baseline's (regression gate), and
* the measured speedup clears the acceptance floor of 5x (the issue's
  hard requirement — one pass must beat N replays outright).

Usage::

    python benchmarks/bench_mrc.py                  # print table
    python benchmarks/bench_mrc.py --json out.json  # also write JSON
    python benchmarks/bench_mrc.py --check BENCH_mrc.json

The golden suite (``tests/test_golden_figures.py``) separately pins
what the one-pass analysis *computes*; this harness only measures
time.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.policies import Organization  # noqa: E402
from repro.core.sweep import run_size_sweep  # noqa: E402
from repro.traces.profiles import small_paper_trace  # noqa: E402

#: the organization swept (pure LRU, so the two paths also agree
#: bit-exactly — asserted below before timing anything).
ORGANIZATION = Organization.PROXY_ONLY

#: a dense size grid (32 sizes, 1.6%..50% of the infinite cache): the
#: replay cost scales linearly with the number of sizes, the one-pass
#: cost does not — this is the workload the MRC path exists for
#: (fig2/fig3-style curves at every-size resolution instead of the
#: paper's four points).
FRACTIONS = tuple((i + 1) / 64 for i in range(32))

#: the issue's acceptance floor for --check.
SPEEDUP_FLOOR = 5.0


def _best_of(fn, repeats: int) -> float:
    """Minimum wall time of *repeats* runs — the least-noise estimator
    for a deterministic workload."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_benchmark(n_requests: int, repeats: int) -> dict:
    trace = small_paper_trace("NLANR-uc", n_requests=n_requests)

    def replay_sweep():
        return run_size_sweep(trace, ORGANIZATION, fractions=FRACTIONS)

    def mrc_sweep():
        return run_size_sweep(trace, ORGANIZATION, fractions=FRACTIONS, mrc=True)

    # correctness first: PROXY_ONLY is a pure-LRU organization, so the
    # two paths must agree bit-exactly before their times mean anything.
    replayed, derived = replay_sweep(), mrc_sweep()
    for frac in FRACTIONS:
        want = replayed.get(ORGANIZATION, frac)
        got = derived.get(ORGANIZATION, frac)
        assert abs(got.hit_ratio - want.hit_ratio) < 1e-12, frac
        assert abs(got.byte_hit_ratio - want.byte_hit_ratio) < 1e-12, frac

    t_replay = _best_of(replay_sweep, repeats)
    t_mrc = _best_of(mrc_sweep, repeats)
    n_sizes = len(FRACTIONS)
    return {
        "trace": trace.name,
        "n_requests": n_requests,
        "organization": ORGANIZATION.value,
        "n_sizes": n_sizes,
        "repeats": repeats,
        "replay_seconds": t_replay,
        "mrc_seconds": t_mrc,
        "replay_cells_per_second": n_sizes / t_replay,
        "mrc_cells_per_second": n_sizes / t_mrc,
        "replays_avoided": n_sizes - 1,
        "speedup": t_replay / t_mrc,
        "speedup_floor": SPEEDUP_FLOOR,
    }


def render(report: dict) -> str:
    return "\n".join(
        [
            f"one-pass MRC benchmark — {report['trace']}, "
            f"{report['n_requests']:,} requests, {report['n_sizes']} sizes, "
            f"best of {report['repeats']}",
            f"{'per-size re-replay':<24} {report['replay_seconds']:>8.3f}s "
            f"({report['replay_cells_per_second']:.1f} cells/s)",
            f"{'one-pass analysis':<24} {report['mrc_seconds']:>8.3f}s "
            f"({report['mrc_cells_per_second']:.1f} cells/s, "
            f"{report['replays_avoided']} replays avoided)",
            f"{'speedup':<24} {report['speedup']:>8.2f}x "
            f"(acceptance floor {report['speedup_floor']:.1f}x)",
        ]
    )


def check(report: dict, baseline_path: Path, tolerance: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    base_speedup = baseline["speedup"]
    now_speedup = report["speedup"]
    floor = max(base_speedup * (1.0 - tolerance), SPEEDUP_FLOOR)
    print(
        f"baseline speedup {base_speedup:.2f}x, measured {now_speedup:.2f}x, "
        f"floor {floor:.2f}x (tolerance {tolerance:.0%}, "
        f"hard acceptance floor {SPEEDUP_FLOOR:.1f}x)"
    )
    if now_speedup < floor:
        print(
            "PERF REGRESSION: the one-pass MRC analysis no longer clears "
            "its speedup floor over the per-size re-replay sweep",
            file=sys.stderr,
        )
        return 1
    print("OK: one-pass MRC speedup within tolerance of the committed baseline")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--requests",
        type=int,
        default=6000,
        help="trace length (small paper profile, default 6000)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="best-of-N repeats (default 5)"
    )
    parser.add_argument("--json", metavar="PATH", help="write the JSON report")
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a committed baseline JSON; exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional speedup regression for --check (default 0.30)",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args.requests, args.repeats)
    print(render(report))
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    if args.check:
        return check(report, Path(args.check), args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
