"""Benchmark harness plumbing.

Each benchmark regenerates one table/figure of the paper, prints the
rows (so ``pytest benchmarks/ --benchmark-only | tee`` captures them),
saves them under ``benchmarks/results/``, and asserts the paper's
qualitative shape.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def emit(capsys):
    """Print *text* to the real terminal and save it to results/."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")

    return _emit


@pytest.fixture()
def once(benchmark):
    """Run an expensive experiment exactly once under pytest-benchmark."""

    def _once(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _once
