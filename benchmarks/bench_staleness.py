"""§5 — index staleness under delayed (periodic) updates."""

from repro.experiments import staleness


def test_staleness(once, emit):
    result = once(staleness.run)
    emit("staleness", result.render())
    # "The delay threshold of 1% to 10% ... results in a tolerable
    # degradation of the cache hit ratios" (paper cites 0.2%-1.7% for
    # broadcast-based cooperation; ours is browser->proxy only, so the
    # degradation must be under 2 points everywhere).
    for thr in (0.01, 0.05, 0.10):
        assert result.degradation(thr) < 0.02, thr
    # Batching must actually reduce update messages vs invalidation.
    exact_msgs = result.exact.overhead.index_update_messages
    for thr, r in result.stale.items():
        assert r.index_stats.flushes < exact_msgs
    # Larger thresholds mean fewer flush messages.
    flushes = [result.stale[t].index_stats.flushes for t in sorted(result.stale)]
    assert flushes == sorted(flushes, reverse=True)
