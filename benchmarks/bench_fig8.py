"""Figure 8 — hit/byte-hit increments vs relative number of clients."""

from repro.experiments import fig8


def test_fig8(once, emit):
    result = once(fig8.run)
    emit("fig8", result.render())
    # "both hit ratio increment and byte hit ratio increment ...
    # proportionally increase as the number of clients increases"
    assert result.all_monotonic("hit_ratio", slack=0.01)
    assert result.all_monotonic("byte_hit_ratio", slack=0.01)
    for name, scaling in result.results.items():
        incs = [v for _, v in scaling.increments("hit_ratio")]
        assert incs[-1] > incs[0], name  # strictly better at full scale
        assert incs[-1] > 0.02, name  # a few percent relative at 100%
