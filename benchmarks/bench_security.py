"""§6 — reliability/security protocol overhead."""

from repro.experiments import security_overhead


def test_security_overhead(once, emit):
    result = once(security_overhead.run)
    emit("security", result.render())
    # "the associated overheads are trivial": crypto work is a tiny
    # share of total service time ...
    assert result.crypto_fraction_of_total < 0.005
    # ... and moderate even against just the communication it protects
    # (era-hardware rates; the dominant term is the 0.1 s connection
    # setup per transfer).
    assert result.crypto_fraction_of_communication < 0.25
    # the live pure-Python transfer actually verified integrity
    assert result.live_transfer_seconds > 0
