"""Ablation — index maintenance discipline (exact / periodic / bloom)."""

from repro.experiments import ablation_index


def test_ablation_index(once, emit):
    result = once(ablation_index.run)
    emit("ablation_index", result.render())
    # Periodic updates barely dent the hit ratio...
    assert result.exact.hit_ratio - result.periodic.hit_ratio < 0.02
    # ...while sending an order of magnitude fewer messages.
    assert (
        result.periodic.overhead.index_update_messages
        < result.exact.overhead.index_update_messages / 5
    )
    # Bloom summaries compress the index several-fold with a tiny FP rate.
    assert result.bloom_footprint_bytes < result.exact_footprint_bytes
    assert result.bloom_false_positive_rate < 0.01
