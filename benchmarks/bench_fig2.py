"""Figure 2 — five caching policies on NLANR-uc (minimum browser cache)."""

from repro.core.policies import Organization
from repro.experiments import fig2


def test_fig2(once, emit):
    result = once(fig2.run)
    emit("fig2", result.render())
    sweep = result.sweep

    # Headline: BAPS has the highest hit and byte hit ratios everywhere.
    assert result.baps_dominates()

    # Local-browser-cache-only is the weakest organization.
    for frac in sweep.fractions:
        local = sweep.get(Organization.LOCAL_BROWSER_ONLY, frac)
        for org in sweep.organizations:
            assert local.hit_ratio <= sweep.get(org, frac).hit_ratio + 1e-12

    # "proxy-and-local-browser only slightly outperforms
    # proxy-cache-only" — within a few points, and never behind.
    for frac in sweep.fractions:
        plb = sweep.get(Organization.PROXY_AND_LOCAL_BROWSER, frac).hit_ratio
        po = sweep.get(Organization.PROXY_ONLY, frac).hit_ratio
        assert po - 0.001 <= plb <= po + 0.05

    # The paper's effect size: at the smallest cache the BAPS hit ratio
    # is ~11% higher than PLB in relative terms ("up to 10.94% higher").
    f = sweep.fractions[0]
    baps = sweep.get(Organization.BROWSERS_AWARE_PROXY, f).hit_ratio
    plb = sweep.get(Organization.PROXY_AND_LOCAL_BROWSER, f).hit_ratio
    assert (baps - plb) / plb > 0.05
