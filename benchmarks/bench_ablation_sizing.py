"""Ablation — sensitivity to the minimum-browser-cache divisor.

DESIGN.md §3 documents our reading of the paper's garbled minimum
browser cache formula as S_proxy / n (aggregate browser capacity equals
the proxy cache).  This benchmark sweeps the divisor d in
S_proxy / (d · n) and shows how the BAPS gain decays as browsers
shrink — the evidence behind that reading.
"""

from repro.core import Organization, SimulationConfig, simulate
from repro.core.config import minimum_browser_capacity
from repro.traces.profiles import load_paper_trace
from repro.util.fmt import ascii_table

DIVISORS = (1.0, 2.0, 5.0, 10.0)


def run_sweep(trace_name="NLANR-uc", proxy_frac=0.10):
    trace = load_paper_trace(trace_name)
    proxy_capacity = max(1, int(proxy_frac * trace.infinite_cache_bytes()))
    rows = []
    gains = []
    for d in DIVISORS:
        browser_capacity = minimum_browser_capacity(proxy_capacity, trace.n_clients, divisor=d)
        config = SimulationConfig(
            proxy_capacity=proxy_capacity, browser_capacity=browser_capacity
        )
        plb = simulate(trace, Organization.PROXY_AND_LOCAL_BROWSER, config)
        baps = simulate(trace, Organization.BROWSERS_AWARE_PROXY, config)
        gain = baps.hit_ratio - plb.hit_ratio
        gains.append(gain)
        rows.append(
            [
                f"S_p/({d:g}n)",
                f"{browser_capacity / 1e3:.0f} KB",
                f"{plb.hit_ratio * 100:.2f}%",
                f"{baps.hit_ratio * 100:.2f}%",
                f"+{gain * 100:.2f}",
                f"{baps.breakdown().remote_browser * 100:.2f}%",
            ]
        )
    table = ascii_table(
        ["browser sizing", "per-browser", "HR(PLB)", "HR(BAPS)", "gain (pts)", "remote share"],
        rows,
        title=f"Ablation: minimum browser-cache divisor ({trace_name}, 10% cache)",
    )
    return table, gains


def test_ablation_sizing(once, emit):
    table, gains = once(run_sweep)
    emit("ablation_sizing", table)
    # The BAPS gain shrinks monotonically as browser caches shrink —
    # aggregate browser capacity is the resource BAPS harvests.
    assert gains == sorted(gains, reverse=True)
    assert gains[0] > 2 * gains[-1]
