"""Ablation — replacement policy under BAPS (design-choice callout)."""

from repro.experiments import ablation_replacement


def test_ablation_replacement(once, emit):
    result = once(ablation_replacement.run)
    emit("ablation_replacement", result.render())
    r = result.results
    # LRU (the paper's choice) must beat FIFO on hit ratio.
    assert r["lru"].hit_ratio >= r["fifo"].hit_ratio
    # SIZE trades byte hit ratio for request hit ratio.
    assert r["size"].hit_ratio > r["lru"].hit_ratio
    assert r["size"].byte_hit_ratio < r["lru"].byte_hit_ratio + 0.02
    # GDSF is the strongest request-hit-ratio policy of the era.
    assert r["gdsf"].hit_ratio >= r["lru"].hit_ratio
    # every policy still produces remote-browser hits under BAPS
    for name, res in r.items():
        assert res.by_location_remote_hits() > 0, name
