"""Figure 5 — BAPS vs proxy-and-local-browser on BU-95."""

from repro.experiments import fig4_6


def test_fig5(once, emit):
    result = once(lambda: fig4_6.run(5))
    emit("fig5", result.render())
    assert result.baps_wins_everywhere()
    assert result.mean_hit_gain() > 0.005
