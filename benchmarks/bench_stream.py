"""Streaming replay benchmark: million-client cells, out-of-core.

Replays a large synthetic cell through the streaming path —
:class:`repro.traces.streaming.TraceStream` feeding
:func:`repro.core.stream_engine.simulate_stream` — and records requests
per second plus the process's peak resident set size.  With
``--compare`` the same cell also runs materialised
(:func:`~repro.traces.synthetic.generate_trace` +
:func:`~repro.core.simulator.simulate`) and the report carries the
streamed/materialised peak-RSS ratio plus a result digest proving both
engines produced identical numbers.

Every measurement runs in a fresh subprocess: ``ru_maxrss`` is a
per-process *lifetime* high-water mark, so in-process back-to-back runs
would contaminate each other.

Usage::

    python benchmarks/bench_stream.py                    # 1M clients / 10M requests, streamed
    python benchmarks/bench_stream.py --compare          # + materialised run and RSS ratio
    python benchmarks/bench_stream.py --ci               # small cell, hard RSS ceiling
    python benchmarks/bench_stream.py --check BENCH_stream.json
        # CI gate: identity + streamed RSS under the committed ceiling

The throughput numbers are machine-dependent and informational; the
gate (``--check``) asserts only machine-neutral facts — the two engines
agree bit for bit, and the streamed replay stays under an absolute
RSS ceiling sized ~4x above the expected footprint.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: default big cell: the million-client scale the streaming path exists for.
BIG_REQUESTS = 10_000_000
BIG_CLIENTS = 1_000_000
#: CI smoke cell: small enough for a PR gate, big enough that a
#: materialised-trace regression in the streaming path would show.
CI_REQUESTS = 200_000
CI_CLIENTS = 50_000
#: hard peak-RSS ceiling for the CI cell (bytes).  The streamed replay
#: of the CI cell measures ~150 MB; 600 MB leaves headroom for
#: allocator/interpreter drift while still failing loudly if anything
#: rematerialises the trace or reintroduces per-client objects.
CI_RSS_CEILING = 600 * 1024 * 1024

#: cell sizing: browsers hold a couple of mean-sized documents each, so
#: the *simulated* state (index entries, cached docs — identical in
#: both engines) stays small relative to the engine-side overhead the
#: streaming path exists to eliminate (trace columns, generation
#: temporaries, per-client cache objects).
PROXY_CAPACITY = 1_000_000_000
BROWSER_CAPACITY = 20_000
ORGANIZATION = "browsers-aware-proxy-server"


def _worker(mode: str, n_requests: int, n_clients: int, seed: int) -> None:
    """Runs in a fresh subprocess; prints one JSON line."""
    import dataclasses
    import time

    from repro.core import Organization, SimulationConfig, simulate, simulate_stream
    from repro.traces import SyntheticTraceConfig, TraceStream, generate_trace
    from repro.util.memory import peak_rss_bytes

    tc = SyntheticTraceConfig(n_requests=n_requests, n_clients=n_clients)
    config = SimulationConfig(
        proxy_capacity=PROXY_CAPACITY, browser_capacity=BROWSER_CAPACITY
    )
    org = Organization(ORGANIZATION)
    t0 = time.perf_counter()
    if mode == "genstream":
        # workload generation only: calibrate the stream (includes one
        # full pass of the generative loop), keep it referenced
        workload = TraceStream(tc, seed=seed)
        print(
            json.dumps(
                {
                    "mode": mode,
                    "seconds": time.perf_counter() - t0,
                    "peak_rss_bytes": peak_rss_bytes(),
                    "n_requests": len(workload),
                }
            )
        )
        return
    if mode == "genmat":
        workload = generate_trace(tc, seed=seed)
        print(
            json.dumps(
                {
                    "mode": mode,
                    "seconds": time.perf_counter() - t0,
                    "peak_rss_bytes": peak_rss_bytes(),
                    "n_requests": len(workload),
                }
            )
        )
        return
    if mode == "stream":
        result = simulate_stream(TraceStream(tc, seed=seed), org, config)
    else:
        result = simulate(generate_trace(tc, seed=seed), org, config)
    elapsed = time.perf_counter() - t0
    digest = hashlib.sha256(
        repr(dataclasses.asdict(result)).encode()
    ).hexdigest()
    print(
        json.dumps(
            {
                "mode": mode,
                "seconds": elapsed,
                "requests_per_second": n_requests / elapsed,
                "peak_rss_bytes": peak_rss_bytes(),
                "hit_ratio": result.hit_ratio,
                "byte_hit_ratio": result.byte_hit_ratio,
                "index_peak_footprint_bytes": result.index_peak_footprint_bytes,
                "result_digest": digest,
            }
        )
    )


def run_cell(mode: str, n_requests: int, n_clients: int, seed: int) -> dict:
    proc = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--worker",
            mode,
            "--requests",
            str(n_requests),
            "--clients",
            str(n_clients),
            "--seed",
            str(seed),
        ],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{mode} worker failed (exit {proc.returncode}):\n{proc.stderr[-2000:]}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def run_benchmark(
    n_requests: int, n_clients: int, seed: int, compare: bool
) -> dict:
    report: dict = {
        "cell": {
            "n_requests": n_requests,
            "n_clients": n_clients,
            "seed": seed,
            "organization": ORGANIZATION,
            "proxy_capacity": PROXY_CAPACITY,
            "browser_capacity": BROWSER_CAPACITY,
        },
        "streamed": run_cell("stream", n_requests, n_clients, seed),
    }
    if compare:
        report["materialised"] = run_cell("mat", n_requests, n_clients, seed)
        s, m = report["streamed"], report["materialised"]
        report["comparison"] = {
            "identical_results": s["result_digest"] == m["result_digest"],
            "rss_ratio_materialised_over_streamed": (
                m["peak_rss_bytes"] / s["peak_rss_bytes"]
            ),
        }
        # Workload-generation-only comparison.  The full-replay ratio
        # above is diluted by simulated state identical in both engines
        # (index entries, cached documents, generative loop state);
        # generation-side RSS isolates what streaming actually removes:
        # the five O(n)-request columns and their float temporaries.
        gs = run_cell("genstream", n_requests, n_clients, seed)
        gm = run_cell("genmat", n_requests, n_clients, seed)
        report["generation"] = {
            "streamed": gs,
            "materialised": gm,
            "rss_ratio_materialised_over_streamed": (
                gm["peak_rss_bytes"] / gs["peak_rss_bytes"]
            ),
        }
    return report


def _mb(n: float) -> str:
    return f"{n / (1024 * 1024):,.0f} MiB"


def render(report: dict) -> str:
    cell = report["cell"]
    lines = [
        f"streaming replay — {cell['n_clients']:,} clients, "
        f"{cell['n_requests']:,} requests, {cell['organization']}",
    ]
    for mode in ("streamed", "materialised"):
        row = report.get(mode)
        if row is None:
            continue
        lines.append(
            f"  {mode:<12} {row['requests_per_second']:>10,.0f} req/s  "
            f"peak RSS {_mb(row['peak_rss_bytes']):>12}  "
            f"({row['seconds']:.1f}s, hit {row['hit_ratio']:.3f})"
        )
    comp = report.get("comparison")
    if comp is not None:
        same = "identical" if comp["identical_results"] else "DIVERGED"
        lines.append(
            f"  materialised/streamed peak-RSS ratio "
            f"{comp['rss_ratio_materialised_over_streamed']:.2f}x, results {same}"
        )
    gen = report.get("generation")
    if gen is not None:
        lines.append(
            f"  generation only: streamed {_mb(gen['streamed']['peak_rss_bytes'])} "
            f"vs materialised {_mb(gen['materialised']['peak_rss_bytes'])} "
            f"({gen['rss_ratio_materialised_over_streamed']:.2f}x)"
        )
    return "\n".join(lines)


def check(baseline_path: Path, seed: int) -> int:
    """The CI gate: replay the committed CI cell, assert engine
    identity and the committed RSS ceiling."""
    baseline = json.loads(baseline_path.read_text())
    ci = baseline["ci"]
    cell = ci["cell"]
    ceiling = ci["rss_ceiling_bytes"]
    report = run_benchmark(
        cell["n_requests"], cell["n_clients"], cell["seed"], compare=True
    )
    print(render(report))
    failures = []
    if not report["comparison"]["identical_results"]:
        failures.append("streamed and materialised engines diverged")
    rss = report["streamed"]["peak_rss_bytes"]
    print(f"streamed peak RSS {_mb(rss)}, committed ceiling {_mb(ceiling)}")
    if rss > ceiling:
        failures.append(
            f"streamed peak RSS {_mb(rss)} exceeds the ceiling {_mb(ceiling)}"
        )
    for failure in failures:
        print(f"STREAMING REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        print("OK: engines identical, streamed RSS under the committed ceiling")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=BIG_REQUESTS)
    parser.add_argument("--clients", type=int, default=BIG_CLIENTS)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--compare",
        action="store_true",
        help="also run the materialised engine; report the RSS ratio",
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help=f"CI cell ({CI_REQUESTS:,} requests / {CI_CLIENTS:,} clients) "
        "with compare and a hard RSS ceiling",
    )
    parser.add_argument("--json", metavar="PATH", help="write the JSON report")
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="run the baseline's CI cell; exit 1 on divergence or RSS breach",
    )
    parser.add_argument(
        "--pin",
        metavar="PATH",
        help="run the big cell and the CI cell (both with compare) and "
        "write the combined committed baseline",
    )
    parser.add_argument(
        "--worker",
        choices=("stream", "mat", "genstream", "genmat"),
        help=argparse.SUPPRESS,
    )
    args = parser.parse_args(argv)

    if args.worker:
        _worker(args.worker, args.requests, args.clients, args.seed)
        return 0
    if args.check:
        return check(Path(args.check), args.seed)
    if args.pin:
        big = run_benchmark(args.requests, args.clients, args.seed, compare=True)
        print(render(big))
        ci = run_benchmark(CI_REQUESTS, CI_CLIENTS, args.seed, compare=True)
        print(render(ci))
        baseline = {
            "big": big,
            "ci": {
                "cell": ci["cell"],
                "rss_ceiling_bytes": CI_RSS_CEILING,
                "report": ci,
            },
        }
        ok = (
            big["comparison"]["identical_results"]
            and ci["comparison"]["identical_results"]
            and ci["streamed"]["peak_rss_bytes"] <= CI_RSS_CEILING
        )
        if not ok:
            print("refusing to pin: divergence or CI RSS over the ceiling",
                  file=sys.stderr)
            return 1
        Path(args.pin).write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"pinned {args.pin}")
        return 0

    if args.ci:
        report = run_benchmark(CI_REQUESTS, CI_CLIENTS, args.seed, compare=True)
        report["rss_ceiling_bytes"] = CI_RSS_CEILING
        print(render(report))
        rss = report["streamed"]["peak_rss_bytes"]
        ok = report["comparison"]["identical_results"] and rss <= CI_RSS_CEILING
        print(
            f"streamed peak RSS {_mb(rss)}, ceiling {_mb(CI_RSS_CEILING)}: "
            + ("OK" if ok else "FAIL")
        )
        if args.json:
            Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        return 0 if ok else 1

    report = run_benchmark(args.requests, args.clients, args.seed, args.compare)
    print(render(report))
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
