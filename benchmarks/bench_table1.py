"""Table 1 — characteristics of the five calibrated traces."""

from repro.experiments import table1


def test_table1(once, emit):
    result = once(table1.run)
    emit("table1", result.render())
    # Every trace must land within two points of its Table 1 target.
    for row in result.rows:
        thr, tbhr = result.targets[row.name]
        assert abs(row.max_hit_ratio - thr) < 0.02, row.name
        assert abs(row.max_byte_hit_ratio - tbhr) < 0.02, row.name
    # CA*netII is the 3-client limit case.
    canet = next(r for r in result.rows if r.name == "CAnetII")
    assert canet.n_clients == 3
