"""§4.2 — memory byte hit ratios and hit latency.

The paper compares BAPS at 5% of the infinite cache size against
proxy-and-local-browser at 10% — two configurations with nearly equal
*byte hit ratios* — and shows BAPS serves a larger share of those
bytes from **memory**, cutting total hit latency: "the memory byte hit
ratios of the two schemes are quite different under the same condition
… would reduce [a large share] of the total hit latency."

Two variants are reported:

* **conservative** — memory tier = 1/10 of every cache, the paper's
  stated assumption ("which is not in favor of the browsers-aware-
  proxy-server"),
* **memory-resident browsers** — browser caches fully in memory (the
  §1 "browser cache in memory" technique the paper motivates: a memory
  drive holds the whole browser cache, periodically saved to disk),
  proxy memory still 1/10.  This is where the paper's inversion —
  BAPS's smaller configuration beating PLB's larger one on memory byte
  hit ratio — shows robustly in our workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SimulationConfig
from repro.core.metrics import SimulationResult
from repro.core.policies import Organization
from repro.core.simulator import simulate
from repro.traces.profiles import load_paper_trace
from repro.util.fmt import ascii_table

__all__ = ["MemoryHitVariant", "MemoryHitResult", "run"]


@dataclass
class MemoryHitVariant:
    """One pairing of BAPS@small vs PLB@large under a memory model."""

    label: str
    baps: SimulationResult
    plb: SimulationResult
    baps_frac: float
    plb_frac: float

    @property
    def latency_reduction(self) -> float:
        """Fractional reduction of total hit latency, BAPS vs PLB."""
        plb_lat = self.plb.total_hit_latency()
        if plb_lat == 0:
            return 0.0
        return 1.0 - self.baps.total_hit_latency() / plb_lat

    @property
    def memory_ratio_advantage(self) -> float:
        """BAPS memory byte hit ratio minus PLB's (points)."""
        return self.baps.memory_byte_hit_ratio - self.plb.memory_byte_hit_ratio

    @property
    def normalized_latency_reduction(self) -> float:
        """Latency-per-hit-byte reduction — fair when the two byte hit
        ratios are close but not identical."""
        if not (self.baps.hit_bytes and self.plb.hit_bytes):
            return 0.0
        baps_rate = self.baps.total_hit_latency() / self.baps.hit_bytes
        plb_rate = self.plb.total_hit_latency() / self.plb.hit_bytes
        return 1.0 - baps_rate / plb_rate if plb_rate else 0.0


@dataclass
class MemoryHitResult:
    trace_name: str
    variants: list[MemoryHitVariant]

    def variant(self, label: str) -> MemoryHitVariant:
        for v in self.variants:
            if v.label == label:
                return v
        raise KeyError(label)

    def render(self) -> str:
        blocks = []
        for v in self.variants:
            headers = [
                "scheme",
                "cache size",
                "byte hit ratio",
                "memory byte hit ratio",
                "hit latency (s)",
            ]
            rows = [
                [
                    "browsers-aware-proxy-server",
                    f"{v.baps_frac * 100:g}%",
                    f"{v.baps.byte_hit_ratio * 100:.2f}%",
                    f"{v.baps.memory_byte_hit_ratio * 100:.2f}%",
                    f"{v.baps.total_hit_latency():.1f}",
                ],
                [
                    "proxy-and-local-browser",
                    f"{v.plb_frac * 100:g}%",
                    f"{v.plb.byte_hit_ratio * 100:.2f}%",
                    f"{v.plb.memory_byte_hit_ratio * 100:.2f}%",
                    f"{v.plb.total_hit_latency():.1f}",
                ],
            ]
            table = ascii_table(
                headers,
                rows,
                title=f"Section 4.2: {self.trace_name} — {v.label}",
            )
            blocks.append(
                table
                + f"\n hit-latency reduction by BAPS: {v.latency_reduction * 100:.1f}%"
                + f" (per hit-byte: {v.normalized_latency_reduction * 100:.1f}%)"
            )
        return "\n\n".join(blocks)


def run(
    trace_name: str = "NLANR-uc",
    baps_frac: float = 0.05,
    plb_frac: float = 0.10,
    memory_fraction: float = 0.10,
) -> MemoryHitResult:
    """Compare BAPS@baps_frac vs PLB@plb_frac under both memory models.

    The default pairing (5% vs 10%) follows the paper's observation
    that those two points have nearly equal byte hit ratios.
    """
    trace = load_paper_trace(trace_name)
    variants = []
    for label, browser_mem in (
        ("conservative (memory = 1/10 everywhere)", None),
        ("memory-resident browser caches", 1.0),
    ):
        baps_config = SimulationConfig.relative(
            trace,
            proxy_frac=baps_frac,
            browser_sizing="minimum",
            memory_fraction=memory_fraction,
            browser_memory_fraction=browser_mem,
        )
        plb_config = SimulationConfig.relative(
            trace,
            proxy_frac=plb_frac,
            browser_sizing="minimum",
            memory_fraction=memory_fraction,
            browser_memory_fraction=browser_mem,
        )
        variants.append(
            MemoryHitVariant(
                label=label,
                baps=simulate(trace, Organization.BROWSERS_AWARE_PROXY, baps_config),
                plb=simulate(trace, Organization.PROXY_AND_LOCAL_BROWSER, plb_config),
                baps_frac=baps_frac,
                plb_frac=plb_frac,
            )
        )
    return MemoryHitResult(trace_name=trace.name, variants=variants)
