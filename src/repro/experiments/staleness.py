"""§5 — index staleness under delayed (periodic) updates.

"The delay threshold of 1% to 10% (which corresponds to an update
frequency of roughly every 5 minutes to an hour in their experiments)
results in a tolerable degradation of the cache hit ratios … the
degradation is between 0.2% to 1.7% for the 10% choice.  Our concerns
should be less serious because the updates are only conducted between
browsers and the proxy without broadcasting."

We sweep the delay threshold and report the BAPS hit-ratio degradation
relative to the exact invalidation-based index, along with the false
hit/false miss counts and the number of batched update messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SimulationConfig
from repro.core.metrics import SimulationResult
from repro.core.policies import Organization
from repro.core.simulator import simulate
from repro.index.staleness import PeriodicUpdatePolicy
from repro.traces.profiles import load_paper_trace
from repro.util.fmt import ascii_table

__all__ = ["StalenessResult", "run", "PAPER_THRESHOLDS"]

PAPER_THRESHOLDS = (0.01, 0.05, 0.10, 0.25)


@dataclass
class StalenessResult:
    trace_name: str
    exact: SimulationResult
    stale: dict[float, SimulationResult]

    def degradation(self, threshold: float) -> float:
        """Hit-ratio points lost vs the exact index."""
        return self.exact.hit_ratio - self.stale[threshold].hit_ratio

    def render(self) -> str:
        headers = [
            "delay threshold",
            "hit ratio",
            "degradation (points)",
            "false hits",
            "false misses",
            "flush messages",
        ]
        rows = [
            [
                "exact (invalidation)",
                f"{self.exact.hit_ratio * 100:.2f}%",
                "0.00",
                0,
                0,
                self.exact.overhead.index_update_messages,
            ]
        ]
        for thr, r in self.stale.items():
            rows.append(
                [
                    f"{thr * 100:g}%",
                    f"{r.hit_ratio * 100:.2f}%",
                    f"{self.degradation(thr) * 100:.2f}",
                    r.index_stats.false_hits,
                    r.index_stats.false_misses,
                    r.index_stats.flushes,
                ]
            )
        return ascii_table(
            headers,
            rows,
            title=f"Section 5: {self.trace_name} index staleness (BAPS, 10% cache)",
        )


def run(
    trace_name: str = "NLANR-uc",
    thresholds=PAPER_THRESHOLDS,
    proxy_frac: float = 0.10,
    browser_sizing: str = "average",
) -> StalenessResult:
    trace = load_paper_trace(trace_name)
    base = SimulationConfig.relative(
        trace, proxy_frac=proxy_frac, browser_sizing=browser_sizing
    )
    exact = simulate(trace, Organization.BROWSERS_AWARE_PROXY, base)
    stale = {}
    for thr in thresholds:
        config = base.with_(index_update_policy=PeriodicUpdatePolicy(threshold=thr))
        stale[thr] = simulate(trace, Organization.BROWSERS_AWARE_PROXY, config)
    return StalenessResult(trace_name=trace.name, exact=exact, stale=stale)
