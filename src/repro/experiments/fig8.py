"""Figure 8 — hit/byte-hit ratio increments vs the relative number of
clients (NLANR-bo1, BU-95, BU-98).

The increment of BAPS over proxy-and-local-browser is measured while
the trace is restricted to 25/50/75/100% of its clients; the proxy
cache stays fixed at 10% of the full trace's infinite cache size.
Expected shape: "both hit ratio increment and byte hit ratio increment
of the browsers-aware proxy server proportionally increase as the
number of clients increases."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scaling import PAPER_CLIENT_FRACTIONS, ScalingResult, run_scaling_experiment
from repro.traces.profiles import load_paper_trace

__all__ = ["Fig8Result", "run", "FIG8_TRACES"]

FIG8_TRACES = ("NLANR-bo1", "BU-95", "BU-98")


@dataclass
class Fig8Result:
    results: dict[str, ScalingResult]

    def render(self) -> str:
        return "\n\n".join(self.results[name].table() for name in self.results)

    def all_monotonic(self, metric: str = "hit_ratio", slack: float = 0.01) -> bool:
        return all(r.is_monotonic(metric, slack=slack) for r in self.results.values())


def run(
    trace_names=FIG8_TRACES,
    client_fractions=PAPER_CLIENT_FRACTIONS,
    proxy_frac: float = 0.10,
) -> Fig8Result:
    results = {}
    for name in trace_names:
        trace = load_paper_trace(name)
        results[name] = run_scaling_experiment(
            trace,
            client_fractions=client_fractions,
            proxy_frac=proxy_frac,
        )
    return Fig8Result(results=results)
