"""Run every experiment by name — used by the CLI and integration tests."""

from __future__ import annotations

from typing import Any, Callable

from repro.experiments import (
    ablation_index,
    ablation_replacement,
    availability,
    consistency,
    fig2,
    prefetching,
    hierarchy,
    fig3,
    fig4_6,
    fig7,
    fig8,
    index_space,
    memory_hit,
    overhead,
    security_overhead,
    staleness,
    table1,
)

__all__ = ["ALL_EXPERIMENTS", "run_experiment"]

#: experiment id -> zero-argument runner (paper defaults).
ALL_EXPERIMENTS: dict[str, Callable[[], Any]] = {
    "table1": table1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": lambda: fig4_6.run(4),
    "fig5": lambda: fig4_6.run(5),
    "fig6": lambda: fig4_6.run(6),
    "fig7": fig7.run,
    "fig8": fig8.run,
    "overhead": overhead.run,
    "memory-hit": memory_hit.run,
    "index-space": index_space.run,
    "staleness": staleness.run,
    "security": security_overhead.run,
    "ablation-replacement": ablation_replacement.run,
    "ablation-index": ablation_index.run,
    "hierarchy": hierarchy.run,
    "consistency": consistency.run,
    "prefetch": prefetching.run,
    "availability": availability.run,
}


def run_experiment(name: str):
    """Run one experiment by id; returns its result object."""
    try:
        runner = ALL_EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(ALL_EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None
    return runner()
