"""Run every experiment by name — used by the CLI and integration tests.

Sweep-based experiments accept a ``workers`` argument and execute their
cells through :mod:`repro.core.parallel`; :func:`run_experiment`
forwards it to any runner that takes it and falls back to the serial
path for the rest.  Fault-tolerance options (retries, per-cell timeout,
attempt journal, resume — an :class:`~repro.core.parallel.EngineOptions`)
are forwarded the same way as ``options``.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable

from repro.core.parallel import EngineOptions

from repro.experiments import (
    ablation_index,
    ablation_replacement,
    availability,
    chaos,
    consistency,
    federation,
    fig2,
    prefetching,
    hierarchy,
    fig3,
    fig4_6,
    fig7,
    fig8,
    index_space,
    memory_hit,
    overhead,
    recovery,
    security_overhead,
    staleness,
    stress,
    table1,
)

__all__ = ["ALL_EXPERIMENTS", "run_experiment"]

#: experiment id -> runner with paper defaults; sweep-based runners also
#: accept ``workers``.
ALL_EXPERIMENTS: dict[str, Callable[..., Any]] = {
    "table1": table1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": lambda workers=0, options=None: fig4_6.run(4, workers=workers, options=options),
    "fig5": lambda workers=0, options=None: fig4_6.run(5, workers=workers, options=options),
    "fig6": lambda workers=0, options=None: fig4_6.run(6, workers=workers, options=options),
    "fig7": fig7.run,
    "fig8": fig8.run,
    "overhead": overhead.run,
    "memory-hit": memory_hit.run,
    "index-space": index_space.run,
    "staleness": staleness.run,
    "security": security_overhead.run,
    "ablation-replacement": ablation_replacement.run,
    "ablation-index": ablation_index.run,
    "hierarchy": hierarchy.run,
    "consistency": consistency.run,
    "prefetch": prefetching.run,
    "availability": availability.run,
    "churn": availability.run_churn,
    "recovery": recovery.run,
    "federation": federation.run,
    "chaos": chaos.run,
    "stress": stress.run,
}


def _accepts(runner: Callable[..., Any], keyword: str) -> bool:
    try:
        params = inspect.signature(runner).parameters
    except (TypeError, ValueError):  # builtins without introspectable signatures
        return False
    return keyword in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )


def run_experiment(
    name: str,
    workers: int | None = 0,
    options: EngineOptions | None = None,
    **extra: Any,
):
    """Run one experiment by id; returns its result object.

    ``workers`` is forwarded to sweep-based experiments (0 = serial
    in-process, N = process pool, None = all CPUs); experiments without
    a parallelisable grid ignore it.  ``options`` forwards the engine's
    fault-tolerance settings (retries, cell timeout, journal, resume)
    to every experiment whose runner accepts them.  Any ``extra``
    keyword (say ``max_holder_retries`` or ``corruption_rate`` from the
    CLI's failure-model flags) is forwarded to runners that accept it
    and dropped for the rest — a flag meant for the churn sweep must
    not break ``baps run table1``.
    """
    try:
        runner = ALL_EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(ALL_EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None
    kwargs: dict[str, Any] = {}
    if workers != 0 and _accepts(runner, "workers"):
        kwargs["workers"] = workers
    if options is not None and _accepts(runner, "options"):
        kwargs["options"] = options
    for key, value in extra.items():
        if value is not None and _accepts(runner, key):
            kwargs[key] = value
    return runner(**kwargs)
