"""Extension experiment — prefetching vs peer sharing.

BAPS and prefetching are the two ways to put idle browser-cache
capacity to work: BAPS *shares what browsers already hold* (no extra
WAN traffic), prefetching *speculatively fills them* (extra WAN
traffic, but it can beat the first access, not just repeats).

This experiment runs both on a page-structured workload (pages drag
embedded objects, the regime prefetch predictors exploit) and on the
paper-style NLANR-uc workload (no sequential structure), reporting hit
ratios, prefetch precision, and the WAN bytes each approach costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SimulationConfig
from repro.core.policies import Organization
from repro.core.simulator import simulate
from repro.prefetch import PrefetchConfig, PrefetchStats, simulate_prefetch
from repro.traces.profiles import load_paper_trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace
from repro.util.fmt import ascii_table

__all__ = ["PrefetchExperimentResult", "run", "page_structured_trace"]


def page_structured_trace(n_requests: int = 60_000, seed: int = 77):
    """A workload with hyperlink structure (pages + embedded objects)."""
    return generate_trace(
        SyntheticTraceConfig(
            n_requests=n_requests,
            n_clients=80,
            p_new=0.12,
            p_self=0.2,
            private_doc_frac=0.15,
            embedded_per_page_mean=4.0,
            client_activity_alpha=0.3,
            uniform_doc_frac=0.35,
            recency_bias=0.15,
            name="page-structured",
        ),
        seed=seed,
    )


@dataclass
class WorkloadRow:
    workload: str
    plb_hr: float
    baps_hr: float
    prefetch_hr: float
    prefetch_stats: PrefetchStats
    request_bytes: int


@dataclass
class PrefetchExperimentResult:
    rows: list[WorkloadRow]

    def render(self) -> str:
        headers = [
            "workload",
            "HR(PLB)",
            "HR(BAPS)",
            "HR(PLB+PPM)",
            "prefetch precision",
            "extra WAN traffic",
        ]
        table_rows = []
        for r in self.rows:
            table_rows.append(
                [
                    r.workload,
                    f"{r.plb_hr * 100:.2f}%",
                    f"{r.baps_hr * 100:.2f}%",
                    f"{r.prefetch_hr * 100:.2f}%",
                    f"{r.prefetch_stats.precision * 100:.1f}%",
                    f"+{r.prefetch_stats.wan_bytes / max(r.request_bytes, 1) * 100:.1f}%",
                ]
            )
        return ascii_table(
            headers,
            table_rows,
            title="prefetching (PPM) vs peer sharing (BAPS), 10% cache, average browsers",
        )

    def row(self, workload: str) -> WorkloadRow:
        for r in self.rows:
            if r.workload == workload:
                return r
        raise KeyError(workload)


def _evaluate(trace, threshold: float, fanout: int) -> WorkloadRow:
    base = SimulationConfig.relative(trace, proxy_frac=0.10, browser_sizing="average")
    plb = simulate(trace, Organization.PROXY_AND_LOCAL_BROWSER, base)
    baps = simulate(trace, Organization.BROWSERS_AWARE_PROXY, base)
    prefetch_config = PrefetchConfig(
        proxy_capacity=base.proxy_capacity,
        browser_capacity=base.browser_capacity,
        confidence_threshold=threshold,
        max_prefetches_per_request=fanout,
    )
    pf, stats = simulate_prefetch(trace, prefetch_config)
    return WorkloadRow(
        workload=trace.name,
        plb_hr=plb.hit_ratio,
        baps_hr=baps.hit_ratio,
        prefetch_hr=pf.hit_ratio,
        prefetch_stats=stats,
        request_bytes=trace.total_bytes,
    )


def run(threshold: float = 0.4, fanout: int = 2) -> PrefetchExperimentResult:
    rows = [
        _evaluate(page_structured_trace(), threshold, fanout),
        _evaluate(load_paper_trace("NLANR-uc"), threshold, fanout),
    ]
    return PrefetchExperimentResult(rows=rows)
