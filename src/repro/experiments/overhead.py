"""§5 overhead estimation — remote-browser communication cost.

"The amounts of data transferring time and the bus contention time
spent for communication among browser caches … is very low.  The
largest accumulated communication and network contention portion out of
the total workload service time for all the traces is less than 1.2%.
In addition, the contention time only contributes up to 0.12% of the
total communication time."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SimulationConfig
from repro.core.events import HitLocation
from repro.core.metrics import SimulationResult
from repro.core.policies import Organization
from repro.core.simulator import simulate
from repro.traces.profiles import PAPER_TRACES, load_paper_trace
from repro.util.fmt import ascii_table

__all__ = ["OverheadExperimentResult", "run"]


@dataclass
class OverheadExperimentResult:
    results: dict[str, SimulationResult]

    def render(self) -> str:
        headers = [
            "trace",
            "remote hits",
            "comm time (s)",
            "comm/total",
            "contention/comm",
            "index msgs",
        ]
        rows = []
        for name, r in self.results.items():
            o = r.overhead
            rows.append(
                [
                    name,
                    r.by_location_remote_hits(),
                    f"{o.remote_communication_time:.1f}",
                    f"{o.communication_fraction * 100:.3f}%",
                    f"{o.contention_fraction_of_communication * 100:.3f}%",
                    o.index_update_messages,
                ]
            )
        return ascii_table(
            headers,
            rows,
            title="Section 5: remote-browser communication overhead (BAPS, 10% cache)",
        )

    def max_communication_fraction(self) -> float:
        return max(
            (r.overhead.communication_fraction for r in self.results.values()),
            default=0.0,
        )

    def max_contention_fraction(self) -> float:
        return max(
            (r.overhead.contention_fraction_of_communication for r in self.results.values()),
            default=0.0,
        )


def run(
    trace_names: tuple[str, ...] | None = None,
    proxy_frac: float = 0.10,
    browser_sizing: str = "average",
) -> OverheadExperimentResult:
    names = trace_names or tuple(PAPER_TRACES)
    results = {}
    for name in names:
        trace = load_paper_trace(name)
        config = SimulationConfig.relative(
            trace, proxy_frac=proxy_frac, browser_sizing=browser_sizing
        )
        results[name] = simulate(trace, Organization.BROWSERS_AWARE_PROXY, config)
    return OverheadExperimentResult(results=results)
