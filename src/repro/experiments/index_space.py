"""§5 — browser index space requirement.

Reproduces the paper's arithmetic (100 clients × 8 MB browser caches,
8 KB average documents, 16-byte MD5 URL signatures ⇒ a few MB of proxy
memory; ~2 MB with Bloom compression) and cross-checks it against the
*measured* peak index footprint of an actual BAPS simulation run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SimulationConfig
from repro.core.policies import Organization
from repro.core.simulator import simulate
from repro.index.signatures import IndexSpaceModel
from repro.traces.profiles import load_paper_trace
from repro.util.fmt import ascii_table

__all__ = ["IndexSpaceResult", "run"]


@dataclass
class IndexSpaceResult:
    model: IndexSpaceModel
    measured_trace: str
    measured_peak_entries: int
    measured_peak_bytes: int

    def render(self) -> str:
        rep = self.model.report()
        headers = ["quantity", "value"]
        rows = [
            ["clients", f"{rep['clients']:g}"],
            ["docs per browser", f"{rep['docs_per_browser']:g}"],
            ["total indexed docs", f"{rep['total_docs']:g}"],
            ["exact index size", f"{rep['exact_index_mb']:.2f} MB"],
            ["bloom index size", f"{rep['bloom_index_mb']:.2f} MB"],
            [
                f"measured peak ({self.measured_trace})",
                f"{self.measured_peak_entries} entries = "
                f"{self.measured_peak_bytes / 1e6:.3f} MB",
            ],
        ]
        return ascii_table(headers, rows, title="Section 5: browser index space")


def run(trace_name: str = "NLANR-uc", proxy_frac: float = 0.10) -> IndexSpaceResult:
    trace = load_paper_trace(trace_name)
    config = SimulationConfig.relative(
        trace, proxy_frac=proxy_frac, browser_sizing="average"
    )
    result = simulate(trace, Organization.BROWSERS_AWARE_PROXY, config)
    return IndexSpaceResult(
        model=IndexSpaceModel(),
        measured_trace=trace.name,
        measured_peak_entries=result.index_peak_entries,
        measured_peak_bytes=result.index_peak_footprint_bytes,
    )
