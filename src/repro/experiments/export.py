"""Consolidated evaluation report and crash-safe result exports.

``baps report`` collects the row tables the benchmark harness saved
under ``benchmarks/results/`` into one Markdown document, in the
paper's presentation order — handy for diffing two reproduction runs
or attaching the full evaluation to a writeup.

Exports are **atomic**: content is written to a temporary file in the
destination directory, fsynced, and moved into place with
``os.replace``, so a crash mid-export can never leave a truncated
figure file — at worst the previous version survives intact.  (The same
discipline this PR's proxy applies to its index checkpoints.)
"""

from __future__ import annotations

import contextlib
import csv
import io
import json
import os
import pathlib
import tempfile

__all__ = [
    "collect_report",
    "RESULTS_ORDER",
    "atomic_writer",
    "atomic_write_text",
    "export_json",
    "export_csv",
]

#: presentation order: the paper's artifacts first, extensions after.
RESULTS_ORDER = [
    "table1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "memory_hit",
    "overhead",
    "index_space",
    "staleness",
    "security",
    "ablation_replacement",
    "ablation_index",
    "ablation_sizing",
    "hierarchy",
    "consistency",
    "prefetch",
    "availability",
    "churn",
    "recovery",
]

_TITLES = {
    "table1": "Table 1 — trace characteristics",
    "fig2": "Figure 2 — five caching policies (NLANR-uc)",
    "fig3": "Figure 3 — BAPS hit-location breakdowns",
    "fig4": "Figure 4 — BAPS vs PLB (NLANR-bo1)",
    "fig5": "Figure 5 — BAPS vs PLB (BU-95)",
    "fig6": "Figure 6 — BAPS vs PLB (BU-98)",
    "fig7": "Figure 7 — the limit case (CA*netII)",
    "fig8": "Figure 8 — client scaling increments",
    "memory_hit": "§4.2 — memory byte hit ratios",
    "overhead": "§5 — communication overhead",
    "index_space": "§5 — browser index space",
    "staleness": "§5 — index staleness",
    "security": "§6 — security overhead",
    "ablation_replacement": "Ablation — replacement policy",
    "ablation_index": "Ablation — index maintenance",
    "ablation_sizing": "Ablation — browser-cache sizing divisor",
    "hierarchy": "Extension — BAPS vs cooperative proxies",
    "consistency": "Extension — consistency trade-off",
    "prefetch": "Extension — PPM prefetching vs peer sharing",
    "availability": "Extension — reliability under client churn",
    "churn": "Extension — holder failover under session churn",
    "recovery": "Extension — proxy crash recovery and checkpointing",
}


# -- atomic exports -----------------------------------------------------------


@contextlib.contextmanager
def atomic_writer(path: str | pathlib.Path, encoding: str = "utf-8"):
    """Yield a text handle whose content replaces *path* atomically.

    The handle writes to a temporary file in the same directory (so the
    final ``os.replace`` stays on one filesystem).  On success the temp
    file is fsynced and moved over *path* in a single step; on any
    exception — or a process killed mid-write — the temp file is
    discarded (or orphaned) and *path* keeps its previous content.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with io.open(fd, "w", encoding=encoding) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise


def atomic_write_text(path: str | pathlib.Path, content: str) -> None:
    """Atomically replace *path*'s content with *content*."""
    with atomic_writer(path) as fh:
        fh.write(content)


def export_json(path: str | pathlib.Path, payload) -> None:
    """Atomically export *payload* as indented JSON."""
    with atomic_writer(path) as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def export_csv(path: str | pathlib.Path, headers, rows) -> None:
    """Atomically export a header row plus data rows as CSV."""
    with atomic_writer(path) as fh:
        writer = csv.writer(fh)
        writer.writerow(list(headers))
        writer.writerows(rows)


def collect_report(results_dir: str | pathlib.Path) -> str:
    """Render every saved result table into one Markdown document.

    Missing tables are listed at the end so a partial benchmark run is
    visible rather than silently truncated.
    """
    results = pathlib.Path(results_dir)
    sections: list[str] = [
        "# BAPS reproduction — full evaluation",
        "",
        "Generated from `benchmarks/results/` "
        "(run `pytest benchmarks/ --benchmark-only` to refresh).",
    ]
    missing: list[str] = []
    for name in RESULTS_ORDER:
        path = results / f"{name}.txt"
        if not path.exists():
            missing.append(name)
            continue
        sections.append("")
        sections.append(f"## {_TITLES.get(name, name)}")
        sections.append("")
        sections.append("```")
        sections.append(path.read_text().rstrip())
        sections.append("```")
    # pick up any extra tables a custom bench saved
    known = {f"{n}.txt" for n in RESULTS_ORDER}
    for path in sorted(results.glob("*.txt")) if results.exists() else []:
        if path.name not in known:
            sections.append("")
            sections.append(f"## {path.stem}")
            sections.append("")
            sections.append("```")
            sections.append(path.read_text().rstrip())
            sections.append("```")
    if missing:
        sections.append("")
        sections.append(
            "*Not yet generated: " + ", ".join(missing) + "*"
        )
    return "\n".join(sections) + "\n"
