"""Consolidated evaluation report.

``baps report`` collects the row tables the benchmark harness saved
under ``benchmarks/results/`` into one Markdown document, in the
paper's presentation order — handy for diffing two reproduction runs
or attaching the full evaluation to a writeup.
"""

from __future__ import annotations

import pathlib

__all__ = ["collect_report", "RESULTS_ORDER"]

#: presentation order: the paper's artifacts first, extensions after.
RESULTS_ORDER = [
    "table1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "memory_hit",
    "overhead",
    "index_space",
    "staleness",
    "security",
    "ablation_replacement",
    "ablation_index",
    "ablation_sizing",
    "hierarchy",
    "consistency",
    "prefetch",
    "availability",
    "churn",
]

_TITLES = {
    "table1": "Table 1 — trace characteristics",
    "fig2": "Figure 2 — five caching policies (NLANR-uc)",
    "fig3": "Figure 3 — BAPS hit-location breakdowns",
    "fig4": "Figure 4 — BAPS vs PLB (NLANR-bo1)",
    "fig5": "Figure 5 — BAPS vs PLB (BU-95)",
    "fig6": "Figure 6 — BAPS vs PLB (BU-98)",
    "fig7": "Figure 7 — the limit case (CA*netII)",
    "fig8": "Figure 8 — client scaling increments",
    "memory_hit": "§4.2 — memory byte hit ratios",
    "overhead": "§5 — communication overhead",
    "index_space": "§5 — browser index space",
    "staleness": "§5 — index staleness",
    "security": "§6 — security overhead",
    "ablation_replacement": "Ablation — replacement policy",
    "ablation_index": "Ablation — index maintenance",
    "ablation_sizing": "Ablation — browser-cache sizing divisor",
    "hierarchy": "Extension — BAPS vs cooperative proxies",
    "consistency": "Extension — consistency trade-off",
    "prefetch": "Extension — PPM prefetching vs peer sharing",
    "availability": "Extension — reliability under client churn",
    "churn": "Extension — holder failover under session churn",
}


def collect_report(results_dir: str | pathlib.Path) -> str:
    """Render every saved result table into one Markdown document.

    Missing tables are listed at the end so a partial benchmark run is
    visible rather than silently truncated.
    """
    results = pathlib.Path(results_dir)
    sections: list[str] = [
        "# BAPS reproduction — full evaluation",
        "",
        "Generated from `benchmarks/results/` "
        "(run `pytest benchmarks/ --benchmark-only` to refresh).",
    ]
    missing: list[str] = []
    for name in RESULTS_ORDER:
        path = results / f"{name}.txt"
        if not path.exists():
            missing.append(name)
            continue
        sections.append("")
        sections.append(f"## {_TITLES.get(name, name)}")
        sections.append("")
        sections.append("```")
        sections.append(path.read_text().rstrip())
        sections.append("```")
    # pick up any extra tables a custom bench saved
    known = {f"{n}.txt" for n in RESULTS_ORDER}
    for path in sorted(results.glob("*.txt")) if results.exists() else []:
        if path.name not in known:
            sections.append("")
            sections.append(f"## {path.stem}")
            sections.append("")
            sections.append("```")
            sections.append(path.read_text().rstrip())
            sections.append("```")
    if missing:
        sections.append("")
        sections.append(
            "*Not yet generated: " + ", ".join(missing) + "*"
        )
    return "\n".join(sections) + "\n"
