"""Extension experiment — proxy crash recovery and checkpointing.

The paper's §6 reliability analysis protects data integrity and peer
availability but keeps the proxy — the sole holder of the browser
index — always up.  This sweep makes it crash: *k* evenly spaced cold
restarts over the trace, each destroying the proxy cache and the
in-memory index, crossed with the index checkpoint interval.  Clients
re-announce their cache contents at a bounded rate after every restart,
so even the never-checkpoint column eventually heals; the question is
how much hit ratio the degraded windows cost, and how much of that a
checkpoint schedule buys back.

Two anchors bracket every cell:

* **always-up** — no crashes, no checkpoints: the PR 3 engine;
* **never-checkpoint** (per crash count) — crashes with rebuild from
  re-announcements only: the cold-restart floor.

A checkpointed cell should land strictly between its two anchors —
:meth:`RecoveryResult.has_strict_cell` checks exactly that, and the CI
smoke asserts it.

Crash times are *explicit* (derived from the trace duration), so the
sweep constructs no RNG and is bit-identical however it is scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SimulationConfig
from repro.core.metrics import SimulationResult
from repro.core.policies import Organization
from repro.core.proxy_faults import ProxyFaultModel
from repro.core.simulator import simulate
from repro.index.checkpoint import CheckpointPolicy
from repro.traces.profiles import load_paper_trace
from repro.util.fmt import ascii_table

__all__ = [
    "RecoveryResult",
    "run",
    "DEFAULT_CRASH_COUNTS",
    "DEFAULT_CHECKPOINT_INTERVALS",
    "DEFAULT_REANNOUNCE_RATE",
]

#: crashes injected over the trace (evenly spaced).
DEFAULT_CRASH_COUNTS = (1, 3)

#: checkpoint intervals swept (virtual seconds): 15 minutes and 1 hour.
DEFAULT_CHECKPOINT_INTERVALS = (900.0, 3600.0)

#: post-crash re-announcement rate (clients per virtual second): the
#: paper-profile traces run ~100 clients over 24 h, so a full rebuild
#: from announcements alone spans ~2000 virtual seconds per crash.
DEFAULT_REANNOUNCE_RATE = 0.05


@dataclass
class RecoveryResult:
    """The crash-count x checkpoint-interval grid, plus its anchors."""

    trace_name: str
    reannounce_rate: float
    always_up: SimulationResult
    #: crash count -> crashes without any checkpointing (the floor).
    no_checkpoint: dict[int, SimulationResult]
    crash_counts: tuple[int, ...]
    checkpoint_intervals: tuple[float, ...]
    cells: dict[tuple[int, float], SimulationResult]

    def cell(self, crashes: int, interval: float) -> SimulationResult:
        return self.cells[(crashes, interval)]

    def recovered_fraction(self, crashes: int, interval: float) -> float:
        """How much of the crash-induced hit-ratio loss this checkpoint
        interval buys back (1.0 = back to the always-up ratio)."""
        floor = self.no_checkpoint[crashes].hit_ratio
        lost = self.always_up.hit_ratio - floor
        if lost <= 0:
            return 0.0
        return (self.cells[(crashes, interval)].hit_ratio - floor) / lost

    def has_strict_cell(self) -> bool:
        """True when at least one checkpointed cell lands strictly
        between its never-checkpoint and always-up anchors — the
        acceptance criterion for the recovery model."""
        top = self.always_up.hit_ratio
        for crashes in self.crash_counts:
            floor = self.no_checkpoint[crashes].hit_ratio
            for interval in self.checkpoint_intervals:
                hr = self.cells[(crashes, interval)].hit_ratio
                if floor < hr < top:
                    return True
        return False

    def render(self) -> str:
        headers = ["crashes", "no checkpoint"] + [
            f"HR ck={interval:g}s" for interval in self.checkpoint_intervals
        ] + ["recovered (best)", "lost hits (best)", "ck bytes (best)"]
        best = max(self.checkpoint_intervals, key=lambda i: 1.0 / i)
        rows = []
        for crashes in self.crash_counts:
            floor = self.no_checkpoint[crashes]
            row = [crashes, f"{floor.hit_ratio * 100:.2f}%"]
            for interval in self.checkpoint_intervals:
                row.append(f"{self.cells[(crashes, interval)].hit_ratio * 100:.2f}%")
            best_cell = self.cells[(crashes, best)]
            row.append(f"{self.recovered_fraction(crashes, best) * 100:.0f}%")
            row.append(best_cell.hits_lost_to_recovery)
            row.append(best_cell.checkpoint_bytes_written)
            rows.append(row)
        return ascii_table(
            headers,
            rows,
            title=(
                f"BAPS proxy crash recovery ({self.trace_name}, 10% cache; "
                f"always-up {self.always_up.hit_ratio * 100:.2f}%, "
                f"re-announce {self.reannounce_rate:g}/s)"
            ),
        )


def run(
    trace_name: str = "NLANR-uc",
    crash_counts=DEFAULT_CRASH_COUNTS,
    checkpoint_intervals=DEFAULT_CHECKPOINT_INTERVALS,
    proxy_frac: float = 0.10,
    reannounce_rate: float = DEFAULT_REANNOUNCE_RATE,
) -> RecoveryResult:
    """The recovery sweep: crash count x checkpoint interval.

    Every cell of one row shares the *same explicit crash schedule*
    (``k`` crashes at ``duration * (i+1) / (k+1)``), so differences
    along a row isolate the checkpoint interval, and the never-
    checkpoint anchor is hit by identical crashes.
    """
    trace = load_paper_trace(trace_name)
    duration = float(trace.timestamps.max()) if len(trace) else 0.0
    base = SimulationConfig.relative(
        trace, proxy_frac=proxy_frac, browser_sizing="average"
    )
    always_up = simulate(trace, Organization.BROWSERS_AWARE_PROXY, base)
    no_checkpoint: dict[int, SimulationResult] = {}
    cells: dict[tuple[int, float], SimulationResult] = {}
    for crashes in crash_counts:
        times = tuple(duration * (i + 1) / (crashes + 1) for i in range(crashes))
        crashed = base.with_(
            proxy_faults=ProxyFaultModel(crash_times=times),
            reannounce_rate=reannounce_rate,
        )
        no_checkpoint[crashes] = simulate(
            trace, Organization.BROWSERS_AWARE_PROXY, crashed
        )
        for interval in checkpoint_intervals:
            config = crashed.with_(checkpoint=CheckpointPolicy(interval=interval))
            cells[(crashes, interval)] = simulate(
                trace, Organization.BROWSERS_AWARE_PROXY, config
            )
    return RecoveryResult(
        trace_name=trace.name,
        reannounce_rate=reannounce_rate,
        always_up=always_up,
        no_checkpoint=no_checkpoint,
        crash_counts=tuple(crash_counts),
        checkpoint_intervals=tuple(float(i) for i in checkpoint_intervals),
        cells=cells,
    )
