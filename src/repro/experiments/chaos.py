"""Extension experiment — partition tolerance under composed chaos.

The federation sweep (:mod:`repro.experiments.federation`) assumes the
inter-proxy links never fail.  This sweep cuts them: a two-proxy
federation replays the trace while a :class:`~repro.federation.linkfaults.LinkFaultModel`
opens a partition window in the middle of the day, and the grid asks
how much of the cooperation benefit survives at each partition length ×
digest-exchange period.  Every cell runs through a
:class:`~repro.core.chaos.ChaosPlan` with the
:class:`~repro.core.chaos.InvariantMonitor` armed, so a soak that
corrupts a counter fails at the violating request instead of producing
a quietly wrong table.

Each digest period carries its own pair of anchors sharing the cell's
cache sizing and federation config:

* **no-fault ceiling** — the same federation with the links always up;
  a partitioned run can never serve more remote hits than one that
  never lost an exchange;
* **always-partitioned floor** — one window covering the whole trace,
  so no digest is ever delivered and every inter-proxy probe dies on
  ``wasted_partition_time``; a finite partition can never do worse.

A chaos cell must land strictly between its anchors —
:meth:`ChaosResult.brackets_all` checks exactly that, and the CI chaos
smoke asserts it — with the partition's cost showing up in the four
accountable counters (``partition_windows``, ``digest_exchanges_lost``,
``wasted_partition_time``, ``antientropy_bytes``) rather than silent
hit-ratio drift.

The grid runs through :func:`repro.core.parallel.run_cells`, so
``--workers``, the attempt journal, and resume all apply; partition
windows are explicit (derived from the trace span), so with the default
``chaos_seed=None`` no RNG is constructed anywhere and results are
bit-identical across worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.chaos import ChaosPlan
from repro.core.config import FederationConfig, SimulationConfig
from repro.core.metrics import SimulationResult
from repro.core.parallel import EngineOptions, SweepCell, SweepRun, run_cells
from repro.core.policies import Organization
from repro.federation.linkfaults import LinkFaultModel
from repro.traces.profiles import load_paper_trace
from repro.traces.record import Trace
from repro.util.fmt import ascii_table
from repro.util.rng import derive_seed

__all__ = [
    "ChaosResult",
    "run",
    "DEFAULT_PARTITION_FRACS",
    "DEFAULT_DIGEST_PERIODS",
]

#: partition lengths swept, as fractions of the trace span (each cell
#: opens one window of that length centered mid-trace).
DEFAULT_PARTITION_FRACS = (0.1, 0.3)

#: digest exchange periods swept (virtual seconds).
DEFAULT_DIGEST_PERIODS = (900.0, 3600.0)

#: cooperating proxies — two halves is the canonical split-brain.
DEFAULT_N_PROXIES = 2

#: invariant-monitor cadence (requests between mid-replay checks).
DEFAULT_CHECK_EVERY = 2000


def _centered_window(span: float, length: float) -> tuple[float, float]:
    """One partition window of *length* seconds centered mid-trace."""
    start = max(0.0, (span - length) / 2.0)
    return (start, start + length)


@dataclass
class ChaosResult:
    """The partition-length x digest-period grid, plus its anchors."""

    trace_name: str
    proxy_frac: float
    n_proxies: int
    #: digest period -> federation with the links always up (upper).
    ceiling: dict[float, SimulationResult]
    #: digest period -> one partition covering the whole trace (lower).
    floor: dict[float, SimulationResult]
    #: partition lengths actually swept (virtual seconds).
    partition_lengths: tuple[float, ...]
    digest_periods: tuple[float, ...]
    cells: dict[tuple[float, float], SimulationResult]
    #: the underlying engine run (timing, attempts, failures).
    sweep: SweepRun | None = field(default=None, repr=False)

    def cell(self, length: float, period: float) -> SimulationResult:
        return self.cells[(length, period)]

    def brackets_all(self) -> bool:
        """True when *every* chaos cell lands strictly between the
        always-partitioned floor and the no-fault ceiling at its digest
        period — the acceptance criterion for the partition model."""
        for period in self.digest_periods:
            lo = self.floor[period].hit_ratio
            hi = self.ceiling[period].hit_ratio
            for length in self.partition_lengths:
                hr = self.cells[(length, period)].hit_ratio
                if not (lo < hr < hi):
                    return False
        return True

    def render(self) -> str:
        headers = ["partition", "counter"] + [
            f"T={period:g}s" for period in self.digest_periods
        ]
        rows: list[list] = []
        rows.append(
            ["(none)", "hit ratio"]
            + [f"{self.ceiling[p].hit_ratio * 100:.2f}%" for p in self.digest_periods]
        )
        for length in self.partition_lengths:
            cells = [self.cells[(length, p)] for p in self.digest_periods]
            rows.append(
                [f"{length:g}s", "hit ratio"]
                + [f"{c.hit_ratio * 100:.2f}%" for c in cells]
            )
            rows.append(
                ["", "exchanges lost"] + [c.digest_exchanges_lost for c in cells]
            )
            rows.append(
                ["", "wasted partition s"]
                + [f"{c.wasted_partition_time:.2f}" for c in cells]
            )
            rows.append(
                ["", "anti-entropy KB"]
                + [f"{c.antientropy_bytes / 1e3:.1f}" for c in cells]
            )
        rows.append(
            ["(whole trace)", "hit ratio"]
            + [f"{self.floor[p].hit_ratio * 100:.2f}%" for p in self.digest_periods]
        )
        return ascii_table(
            headers,
            rows,
            title=(
                f"BAPS inter-proxy partition tolerance ({self.trace_name}, "
                f"{self.n_proxies} proxies, {self.proxy_frac * 100:g}% "
                f"cache per proxy; invariant monitor armed)"
            ),
        )


def run(
    trace_name: str = "NLANR-uc",
    partition_lengths=None,
    digest_periods=DEFAULT_DIGEST_PERIODS,
    n_proxies: int = DEFAULT_N_PROXIES,
    proxy_frac: float = 0.10,
    chaos_seed: int | None = None,
    check_invariants_every: int = DEFAULT_CHECK_EVERY,
    workers: int | None = 0,
    options: EngineOptions | None = None,
    trace: Trace | None = None,
) -> ChaosResult:
    """The chaos sweep: partition length x digest period, plus anchors.

    ``partition_lengths`` are window lengths in virtual seconds (one
    window per cell, centered mid-trace); the default scales
    :data:`DEFAULT_PARTITION_FRACS` by the trace span.  ``chaos_seed``
    folds an extra seed into every cell's stochastic sub-streams via
    the plan's ``"chaos"`` namespace — with the default ``None`` and
    explicit windows, no RNG is constructed at all.  ``trace``
    overrides the named paper trace (the tests pass a scaled profile).
    """
    if trace is None:
        trace = load_paper_trace(trace_name)
    span = trace.duration
    if partition_lengths is None:
        partition_lengths = tuple(f * span for f in DEFAULT_PARTITION_FRACS)
    partition_lengths = tuple(float(s) for s in partition_lengths)
    digest_periods = tuple(float(p) for p in digest_periods)
    org = Organization.BROWSERS_AWARE_PROXY
    base = SimulationConfig.relative(
        trace, proxy_frac=proxy_frac, browser_sizing="minimum"
    )

    def plan(model: LinkFaultModel | None) -> ChaosPlan:
        return ChaosPlan(
            link_faults=model,
            seed=chaos_seed,
            check_invariants_every=check_invariants_every,
        )

    # The engine's standard cell-identity seed; configs differ per cell,
    # so journal keys stay unique through the config digest.
    seed = derive_seed(0, trace.name, org.value, repr(proxy_frac))
    labels: list[tuple] = []
    configs: list[SimulationConfig] = []
    for period in digest_periods:
        fed = FederationConfig(n_proxies=n_proxies, digest_period=period)
        labels.append(("ceiling", period))
        configs.append(base.with_(federation=fed, chaos=plan(None)))
        labels.append(("floor", period))
        configs.append(
            base.with_(
                federation=fed,
                chaos=plan(
                    LinkFaultModel(partition_windows=((0.0, span + 1.0),))
                ),
            )
        )
        for length in partition_lengths:
            labels.append(("cell", length, period))
            configs.append(
                base.with_(
                    federation=fed,
                    chaos=plan(
                        LinkFaultModel(
                            partition_windows=(_centered_window(span, length),)
                        )
                    ),
                )
            )
    cells = [
        SweepCell(
            index=i,
            trace_name=trace.name,
            organization=org,
            fraction=proxy_frac,
            config=config,
            seed=seed,
        )
        for i, config in enumerate(configs)
    ]

    sweep = run_cells(cells, {trace.name: trace}, workers=workers, options=options)
    if sweep.failures:
        raise RuntimeError(
            "chaos sweep cells failed:\n"
            + "\n".join(str(f) for f in sweep.failures)
        )

    ceiling: dict[float, SimulationResult] = {}
    floor: dict[float, SimulationResult] = {}
    grid: dict[tuple[float, float], SimulationResult] = {}
    for label, cell in zip(labels, cells):
        result = sweep.results[cell.index]
        if label[0] == "ceiling":
            ceiling[label[1]] = result
        elif label[0] == "floor":
            floor[label[1]] = result
        else:
            grid[(label[1], label[2])] = result
    return ChaosResult(
        trace_name=trace.name,
        proxy_frac=proxy_frac,
        n_proxies=n_proxies,
        ceiling=ceiling,
        floor=floor,
        partition_lengths=partition_lengths,
        digest_periods=digest_periods,
        cells=grid,
        sweep=sweep,
    )
