"""Figure 7 — the limit of the browsers-aware proxy server (CA*netII).

With only 3 clients, the accumulated browser cache capacity is tiny
compared to the proxy cache, so the browser locality available for
sharing is low: "The increases of both average hit ratio and byte hit
ratio of this trace by the browsers-aware-proxy-cache are below 1%,
compared with the proxy-and-local-browser scheme."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policies import Organization
from repro.core.sweep import PAPER_SIZE_FRACTIONS, SweepResult, run_policy_sweep
from repro.traces.profiles import load_paper_trace
from repro.util.fmt import ascii_table

__all__ = ["Fig7Result", "run"]

_PAIR = (Organization.PROXY_AND_LOCAL_BROWSER, Organization.BROWSERS_AWARE_PROXY)


@dataclass
class Fig7Result:
    sweep: SweepResult

    def mean_hit_gain(self) -> float:
        gains = [
            self.sweep.get(Organization.BROWSERS_AWARE_PROXY, f).hit_ratio
            - self.sweep.get(Organization.PROXY_AND_LOCAL_BROWSER, f).hit_ratio
            for f in self.sweep.fractions
        ]
        return sum(gains) / len(gains)

    def mean_byte_gain(self) -> float:
        gains = [
            self.sweep.get(Organization.BROWSERS_AWARE_PROXY, f).byte_hit_ratio
            - self.sweep.get(Organization.PROXY_AND_LOCAL_BROWSER, f).byte_hit_ratio
            for f in self.sweep.fractions
        ]
        return sum(gains) / len(gains)

    def render(self) -> str:
        headers = ["relative cache size", "HR(PLB)", "HR(BAPS)", "BHR(PLB)", "BHR(BAPS)"]
        rows = []
        for f in self.sweep.fractions:
            plb = self.sweep.get(Organization.PROXY_AND_LOCAL_BROWSER, f)
            baps = self.sweep.get(Organization.BROWSERS_AWARE_PROXY, f)
            rows.append(
                [
                    f"{f * 100:g}%",
                    f"{plb.hit_ratio * 100:.2f}%",
                    f"{baps.hit_ratio * 100:.2f}%",
                    f"{plb.byte_hit_ratio * 100:.2f}%",
                    f"{baps.byte_hit_ratio * 100:.2f}%",
                ]
            )
        table = ascii_table(
            headers, rows, title=f"Figure 7: {self.sweep.trace_name} (3 clients — BAPS limit case)"
        )
        return (
            table
            + f"\n mean hit-ratio gain: {self.mean_hit_gain() * 100:.3f} points"
            + f"\n mean byte-hit-ratio gain: {self.mean_byte_gain() * 100:.3f} points"
            + "\n (paper: both increases below 1%)"
        )


def run(
    fractions=PAPER_SIZE_FRACTIONS, workers: int | None = 0, options=None
) -> Fig7Result:
    trace = load_paper_trace("CAnetII")
    sweep = run_policy_sweep(
        trace,
        organizations=_PAIR,
        fractions=fractions,
        browser_sizing="average",
        workers=workers,
        options=options,
    )
    return Fig7Result(sweep=sweep)
