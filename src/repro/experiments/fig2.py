"""Figure 2 — hit ratios and byte hit ratios of the five caching
policies (NLANR-uc trace, minimum browser cache size).

The proxy cache is scaled over {0.5, 5, 10, 20}% of the infinite cache
size; each browser cache is the minimum S_proxy / (10 n).  Expected
shape: browsers-aware-proxy-server is the highest curve on both
metrics; local-browser-cache-only is the lowest; proxy-and-local-
browser only slightly outperforms proxy-cache-only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.parallel import EngineOptions
from repro.core.policies import Organization
from repro.core.sweep import PAPER_SIZE_FRACTIONS, SweepResult, run_policy_sweep
from repro.traces.profiles import load_paper_trace

__all__ = ["Fig2Result", "run"]


@dataclass
class Fig2Result:
    sweep: SweepResult

    def render(self) -> str:
        return (
            self.sweep.table("hit_ratio", title=f"Figure 2 (left): {self.sweep.trace_name} hit ratios")
            + "\n\n"
            + self.sweep.table(
                "byte_hit_ratio",
                title=f"Figure 2 (right): {self.sweep.trace_name} byte hit ratios",
            )
        )

    def baps_dominates(self) -> bool:
        """The paper's headline: BAPS has the highest hit and byte hit
        ratios at every cache size."""
        baps = Organization.BROWSERS_AWARE_PROXY
        for metric in ("hit_ratio", "byte_hit_ratio"):
            for frac in self.sweep.fractions:
                top = getattr(self.sweep.get(baps, frac), metric)
                for org in self.sweep.organizations:
                    if org is baps:
                        continue
                    if getattr(self.sweep.get(org, frac), metric) > top + 1e-12:
                        return False
        return True


def run(
    trace_name: str = "NLANR-uc",
    fractions=PAPER_SIZE_FRACTIONS,
    workers: int | None = 0,
    options: EngineOptions | None = None,
    mrc: bool = False,
    sample_rate: float = 1.0,
    sample_seed: int = 0,
) -> Fig2Result:
    """Run all five organizations at every relative cache size.

    ``mrc=True`` derives the whole grid from one trace pass
    (:mod:`repro.analysis.mrc`); ``sample_rate`` < 1 runs that pass on
    a deterministic spatial sample.
    """
    trace = load_paper_trace(trace_name)
    sweep = run_policy_sweep(
        trace,
        organizations=tuple(Organization),
        fractions=fractions,
        browser_sizing="minimum",
        workers=workers,
        options=options,
        mrc=mrc,
        sample_rate=sample_rate,
        sample_seed=sample_seed,
    )
    return Fig2Result(sweep=sweep)
