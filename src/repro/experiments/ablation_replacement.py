"""Ablation — replacement policy under BAPS.

The paper fixes LRU everywhere ("The cache replacement algorithm used
in our simulator is LRU").  This ablation quantifies that design
choice: BAPS is re-run with FIFO, LFU, SIZE, and GDSF replacement in
both browser and proxy caches.  Expected: LRU/GDSF lead on hit ratio,
SIZE trades byte hit ratio for request hit ratio, FIFO trails LRU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache import POLICIES
from repro.core.config import SimulationConfig
from repro.core.metrics import SimulationResult
from repro.core.policies import Organization
from repro.core.simulator import simulate
from repro.traces.profiles import load_paper_trace
from repro.util.fmt import ascii_table

__all__ = ["ReplacementAblationResult", "run"]


@dataclass
class ReplacementAblationResult:
    trace_name: str
    results: dict[str, SimulationResult]

    def render(self) -> str:
        headers = ["policy", "hit ratio", "byte hit ratio", "remote share"]
        rows = []
        for policy, r in sorted(
            self.results.items(), key=lambda kv: -kv[1].hit_ratio
        ):
            rows.append(
                [
                    policy,
                    f"{r.hit_ratio * 100:.2f}%",
                    f"{r.byte_hit_ratio * 100:.2f}%",
                    f"{r.breakdown().remote_browser * 100:.2f}%",
                ]
            )
        return ascii_table(
            headers,
            rows,
            title=f"Ablation: replacement policy under BAPS ({self.trace_name}, 10% cache)",
        )


def run(
    trace_name: str = "NLANR-uc",
    proxy_frac: float = 0.10,
    policies: tuple[str, ...] | None = None,
) -> ReplacementAblationResult:
    trace = load_paper_trace(trace_name)
    results = {}
    for policy in policies or tuple(sorted(POLICIES)):
        config = SimulationConfig.relative(
            trace,
            proxy_frac=proxy_frac,
            browser_sizing="average",
            proxy_policy=policy,
            browser_policy=policy,
        )
        results[policy] = simulate(trace, Organization.BROWSERS_AWARE_PROXY, config)
    return ReplacementAblationResult(trace_name=trace.name, results=results)
