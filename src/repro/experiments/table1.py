"""Table 1 — characteristics of the selected web traces.

Columns: trace, #requests, total GB, infinite cache GB, #clients, max
hit ratio, max byte hit ratio.  The max ratios are produced by an
infinite-cache replay (every non-compulsory access hits).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.traces.profiles import PAPER_TRACES, load_paper_trace
from repro.traces.stats import TraceStats, compute_stats
from repro.util.fmt import ascii_table

__all__ = ["Table1Result", "run"]


@dataclass
class Table1Result:
    rows: list[TraceStats]
    targets: dict[str, tuple[float, float]]

    def render(self) -> str:
        table = ascii_table(
            TraceStats.headers(),
            [r.as_row() for r in self.rows],
            title="Table 1: Selected Web Traces (synthetic, calibrated)",
        )
        lines = [table, "", "Calibration targets (paper Table 1):"]
        for r in self.rows:
            thr, tbhr = self.targets[r.name]
            lines.append(
                f"  {r.name:10s} max HR {r.max_hit_ratio * 100:6.2f}% "
                f"(target {thr * 100:5.2f}%)   max BHR {r.max_byte_hit_ratio * 100:6.2f}% "
                f"(target {tbhr * 100:5.2f}%)"
            )
        return "\n".join(lines)


def run(trace_names: tuple[str, ...] | None = None) -> Table1Result:
    """Compute Table 1 for the calibrated paper traces."""
    names = trace_names or tuple(PAPER_TRACES)
    rows = []
    targets = {}
    for name in names:
        profile = PAPER_TRACES[name]
        rows.append(compute_stats(load_paper_trace(name)))
        targets[name] = (
            profile.target_max_hit_ratio,
            profile.target_max_byte_hit_ratio,
        )
    return Table1Result(rows=rows, targets=targets)
