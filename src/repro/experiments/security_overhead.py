"""§6 — reliability/security overhead ("the associated overheads are
trivial").

Two views:

* **Analytic** — a BAPS run with the §6 crypto pricing attached: every
  remote-browser hit pays MD5 digesting, DES encryption legs, and RSA
  session-key/watermark operations.  The result is the crypto CPU time
  as a fraction of the communication time it protects and of total
  service time.
* **Live** — an actual end-to-end secure transfer through this
  library's own MD5/DES/RSA implementations, timed, with tamper
  detection demonstrated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.config import SimulationConfig
from repro.core.metrics import SimulationResult
from repro.core.policies import Organization
from repro.core.simulator import simulate
from repro.security.anonymity import PeerEndpoint
from repro.security.protocols import SecureTransferProtocol, SecurityOverheadModel
from repro.traces.profiles import load_paper_trace
from repro.util.fmt import ascii_table

__all__ = ["SecurityOverheadResult", "run"]


@dataclass
class SecurityOverheadResult:
    trace_name: str
    result: SimulationResult
    live_transfer_seconds: float
    live_doc_bytes: int

    @property
    def crypto_fraction_of_communication(self) -> float:
        return self.result.overhead.security_fraction_of_communication

    @property
    def crypto_fraction_of_total(self) -> float:
        total = self.result.overhead.total_service_time
        return self.result.overhead.security_time / total if total else 0.0

    def render(self) -> str:
        o = self.result.overhead
        headers = ["quantity", "value"]
        rows = [
            ["trace", self.trace_name],
            ["remote-hit crypto time", f"{o.security_time:.2f} s"],
            ["crypto / communication", f"{self.crypto_fraction_of_communication * 100:.2f}%"],
            ["crypto / total service time", f"{self.crypto_fraction_of_total * 100:.4f}%"],
            [
                "live secure transfer (pure Python)",
                f"{self.live_doc_bytes} B in {self.live_transfer_seconds * 1e3:.1f} ms",
            ],
        ]
        return ascii_table(headers, rows, title="Section 6: security overhead (BAPS)")


def run(
    trace_name: str = "NLANR-uc",
    proxy_frac: float = 0.10,
    overhead_model: SecurityOverheadModel | None = None,
) -> SecurityOverheadResult:
    trace = load_paper_trace(trace_name)
    config = SimulationConfig.relative(
        trace,
        proxy_frac=proxy_frac,
        browser_sizing="average",
        security=overhead_model or SecurityOverheadModel(),
    )
    result = simulate(trace, Organization.BROWSERS_AWARE_PROXY, config)

    # Live end-to-end transfer through the real implementations.
    protocol = SecureTransferProtocol(seed=2002)
    holder = PeerEndpoint.create("holder", seed=1)
    requester = PeerEndpoint.create("requester", seed=2)
    document = b"x" * 8192
    protocol.publish(holder, 1, document)
    t0 = time.perf_counter()
    got, record = protocol.transfer(requester, holder, 1)
    elapsed = time.perf_counter() - t0
    assert got == document and record.verified

    return SecurityOverheadResult(
        trace_name=trace.name,
        result=result,
        live_transfer_seconds=elapsed,
        live_doc_bytes=len(document),
    )
