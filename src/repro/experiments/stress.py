"""Extension experiment — adversarial peers vs. the quarantine defense.

The paper's §6 integrity analysis prices the *verification* of remote
transfers but never asks what a hostile peer population does to the
cooperative hit ratio.  This sweep asks exactly that: a fraction of
clients become persistent polluters (every transfer they serve fails
the watermark/MD5 check), crossed with the reputation defense's
``quarantine_threshold`` — how many integrity failures a holder is
allowed before the index stops offering it as a remote-hit candidate.

Three anchors bracket every cell:

* **no-adversary** — the plain engine: the ceiling;
* **no-defense** (per polluter fraction) — the attack with
  ``quarantine_threshold=0``: the floor;
* **oracle blacklist** (per polluter fraction) — the same attack with
  ``static_blacklist`` naming exactly the polluters from request one:
  the best any reactive defense can do, since blacklisting cannot
  restore the serving capacity the polluter cohort withdrew.

A quarantined cell should land between its no-defense floor and the
oracle — :meth:`StressResult.betweenness_holds` checks every cell and
:meth:`StressResult.has_strict_cell` the strict version, which the CI
smoke asserts.  :meth:`StressResult.recovered_fraction` measures
defense quality against the *recoverable* loss (the floor-to-oracle
gap).

Every cell of one polluter-fraction row shares one availability seed
(derived from ``(trace, "stress", fraction)``), so the same clients
are polluters in the floor, the oracle, and every threshold column —
differences along a row isolate the defense.  With ``flash_crowd``
the whole grid replays a surge trace (the hottest document's
popularity multiplied 8x over the middle third of the trace), attacks
and anchors alike.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversarial import AdversarialConfig, PeerPopulation
from repro.core.config import SimulationConfig
from repro.core.metrics import SimulationResult
from repro.core.policies import Organization
from repro.core.simulator import simulate
from repro.traces.profiles import load_paper_trace
from repro.traces.synthetic import FlashCrowdSpec, inject_flash_crowd
from repro.util.fmt import ascii_table
from repro.util.rng import derive_seed

__all__ = [
    "StressResult",
    "run",
    "DEFAULT_POLLUTER_FRACTIONS",
    "DEFAULT_QUARANTINE_THRESHOLDS",
    "FLASH_CROWD_MULTIPLIER",
]

#: polluter fractions swept (the paper-scale populations run ~100
#: clients, so 0.1 plants ~10 persistent polluters).
DEFAULT_POLLUTER_FRACTIONS = (0.1, 0.2)

#: quarantine thresholds swept: ban on first strike, and a lenient
#: three-strikes variant.
DEFAULT_QUARANTINE_THRESHOLDS = (1, 3)

#: in-window popularity multiplier for the ``flash_crowd`` variant.
FLASH_CROWD_MULTIPLIER = 8.0


@dataclass
class StressResult:
    """The polluter-fraction x quarantine-threshold grid + anchors."""

    trace_name: str
    flash_crowd: bool
    no_adversary: SimulationResult
    #: polluter fraction -> the undefended attack (the floor).
    no_defense: dict[float, SimulationResult]
    #: polluter fraction -> the oracle static blacklist (the best
    #: defense can do).
    oracle: dict[float, SimulationResult]
    polluter_fractions: tuple[float, ...]
    quarantine_thresholds: tuple[int, ...]
    cells: dict[tuple[float, int], SimulationResult]

    def cell(self, fraction: float, threshold: int) -> SimulationResult:
        return self.cells[(fraction, threshold)]

    def recovered_fraction(self, fraction: float, threshold: int) -> float:
        """How much of the *recoverable* hit-ratio loss this threshold
        buys back (1.0 = as good as the oracle blacklist).  The
        recoverable loss is the floor-to-oracle gap: not even an oracle
        recovers the serving capacity the polluter cohort withdrew."""
        floor = self.no_defense[fraction].hit_ratio
        recoverable = self.oracle[fraction].hit_ratio - floor
        if recoverable <= 0:
            return 0.0
        return (self.cells[(fraction, threshold)].hit_ratio - floor) / recoverable

    def best_recovered_fraction(self, fraction: float) -> float:
        """The best threshold's :meth:`recovered_fraction` for a row."""
        return max(
            self.recovered_fraction(fraction, threshold)
            for threshold in self.quarantine_thresholds
        )

    def betweenness_holds(self) -> bool:
        """True when every row is bracketed: no-defense floor <= each
        quarantined cell <= oracle blacklist <= no-adversary ceiling."""
        top = self.no_adversary.hit_ratio
        for fraction in self.polluter_fractions:
            floor = self.no_defense[fraction].hit_ratio
            oracle = self.oracle[fraction].hit_ratio
            if not floor <= oracle <= top:
                return False
            for threshold in self.quarantine_thresholds:
                hr = self.cells[(fraction, threshold)].hit_ratio
                if not floor <= hr <= oracle:
                    return False
        return True

    def has_strict_cell(self) -> bool:
        """True when at least one quarantined cell lands *strictly*
        between its no-defense floor and the no-adversary ceiling —
        the defense demonstrably did something, and the attack
        demonstrably cost something."""
        top = self.no_adversary.hit_ratio
        for fraction in self.polluter_fractions:
            floor = self.no_defense[fraction].hit_ratio
            for threshold in self.quarantine_thresholds:
                hr = self.cells[(fraction, threshold)].hit_ratio
                if floor < hr < top:
                    return True
        return False

    def render(self) -> str:
        headers = (
            ["polluters", "no defense"]
            + [f"HR q={threshold}" for threshold in self.quarantine_thresholds]
            + ["oracle", "recovered (best)", "corrupt (best)", "quarantined (best)"]
        )
        best_threshold = min(self.quarantine_thresholds)
        rows = []
        for fraction in self.polluter_fractions:
            floor = self.no_defense[fraction]
            row = [f"{fraction:g}", f"{floor.hit_ratio * 100:.2f}%"]
            for threshold in self.quarantine_thresholds:
                hr = self.cells[(fraction, threshold)].hit_ratio
                row.append(f"{hr * 100:.2f}%")
            best_cell = self.cells[(fraction, best_threshold)]
            row.append(f"{self.oracle[fraction].hit_ratio * 100:.2f}%")
            row.append(f"{self.best_recovered_fraction(fraction) * 100:.0f}%")
            row.append(best_cell.corrupt_deliveries)
            row.append(best_cell.quarantined_peers)
            rows.append(row)
        surge = " + flash crowd" if self.flash_crowd else ""
        return ascii_table(
            headers,
            rows,
            title=(
                f"BAPS adversarial stress ({self.trace_name}{surge}, 10% cache; "
                f"no adversary {self.no_adversary.hit_ratio * 100:.2f}%)"
            ),
        )


def run(
    trace_name: str = "NLANR-uc",
    polluter_fractions=DEFAULT_POLLUTER_FRACTIONS,
    quarantine_thresholds=DEFAULT_QUARANTINE_THRESHOLDS,
    proxy_frac: float = 0.10,
    flash_crowd: bool = False,
) -> StressResult:
    """The stress sweep: polluter fraction x quarantine threshold.

    Each polluter-fraction row derives one availability seed from
    ``(trace, "stress", fraction)``, shared by the floor, the oracle,
    and every threshold cell — the polluter cohort and its corruption
    draws are identical along the row, so the columns isolate the
    defense.  The oracle anchor rebuilds the simulator's
    :class:`~repro.adversarial.PeerPopulation` (same seed derivation)
    and pins ``static_blacklist`` to exactly the polluters.
    """
    polluter_fractions = tuple(float(f) for f in polluter_fractions)
    quarantine_thresholds = tuple(int(t) for t in quarantine_thresholds)
    for threshold in quarantine_thresholds:
        if threshold < 1:
            raise ValueError(
                f"quarantine thresholds (--quarantine-threshold) must be "
                f">= 1 (0 is the no-defense anchor), got {threshold!r}"
            )
    trace = load_paper_trace(trace_name)
    if flash_crowd:
        duration = float(trace.timestamps.max()) if len(trace) else 0.0
        trace = inject_flash_crowd(
            trace,
            FlashCrowdSpec(
                start=duration / 3,
                end=2 * duration / 3,
                multiplier=FLASH_CROWD_MULTIPLIER,
            ),
        )
    base = SimulationConfig.relative(
        trace, proxy_frac=proxy_frac, browser_sizing="average"
    )
    no_adversary = simulate(trace, Organization.BROWSERS_AWARE_PROXY, base)
    no_defense: dict[float, SimulationResult] = {}
    oracle: dict[float, SimulationResult] = {}
    cells: dict[tuple[float, int], SimulationResult] = {}
    for fraction in polluter_fractions:
        seed = derive_seed(0, trace.name, "stress", repr(float(fraction)))
        adversarial = AdversarialConfig(polluter_fraction=fraction)
        attacked = base.with_(adversarial=adversarial, availability_seed=seed)
        no_defense[fraction] = simulate(
            trace, Organization.BROWSERS_AWARE_PROXY, attacked
        )
        population = PeerPopulation.for_simulation(
            adversarial, trace.n_clients, seed
        )
        oracle[fraction] = simulate(
            trace,
            Organization.BROWSERS_AWARE_PROXY,
            attacked.with_(static_blacklist=tuple(sorted(population.polluters))),
        )
        for threshold in quarantine_thresholds:
            config = attacked.with_(quarantine_threshold=threshold)
            cells[(fraction, threshold)] = simulate(
                trace, Organization.BROWSERS_AWARE_PROXY, config
            )
    return StressResult(
        trace_name=trace.name,
        flash_crowd=flash_crowd,
        no_adversary=no_adversary,
        no_defense=no_defense,
        oracle=oracle,
        polluter_fractions=polluter_fractions,
        quarantine_thresholds=quarantine_thresholds,
        cells=cells,
    )
