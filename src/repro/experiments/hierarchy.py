"""Extension experiment — BAPS vs cooperative proxy caching.

The conventional alternative to browser-cache sharing is proxy-level
cooperation (the escalation path the paper's introduction describes and
its related work studies).  This experiment holds the *total proxy
storage* fixed and compares:

* one proxy + private browsers (proxy-and-local-browser),
* one browsers-aware proxy (BAPS),
* four sibling leaf proxies with ICP queries (storage split 4 ways),
* a two-level leaf/parent hierarchy (storage split half/half),
* four sibling leaves with browser caches in front.

Expected shape: splitting a fixed budget across cooperating proxies
recovers some but not all of the single-proxy hit ratio (every leaf
duplicates hot documents), while BAPS *adds* browser capacity that was
already paid for — so BAPS tops the table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SimulationConfig
from repro.core.events import HitLocation
from repro.core.metrics import SimulationResult
from repro.core.policies import Organization
from repro.core.simulator import simulate
from repro.hierarchy import HierarchyConfig, simulate_hierarchy
from repro.traces.profiles import load_paper_trace
from repro.util.fmt import ascii_table

__all__ = ["HierarchyComparisonResult", "run"]


@dataclass
class HierarchyComparisonResult:
    trace_name: str
    total_proxy_capacity: int
    results: dict[str, SimulationResult]

    def render(self) -> str:
        headers = ["scheme", "hit ratio", "byte hit ratio", "peer hits", "origin misses"]
        rows = []
        for label, r in self.results.items():
            peer = (
                r.by_location[HitLocation.REMOTE_BROWSER].hits
                + r.by_location[HitLocation.SIBLING_PROXY].hits
                + r.by_location[HitLocation.PARENT_PROXY].hits
            )
            rows.append(
                [
                    label,
                    f"{r.hit_ratio * 100:.2f}%",
                    f"{r.byte_hit_ratio * 100:.2f}%",
                    peer,
                    r.by_location[HitLocation.ORIGIN].misses,
                ]
            )
        return ascii_table(
            headers,
            rows,
            title=(
                f"BAPS vs cooperative proxies ({self.trace_name}, "
                f"{self.total_proxy_capacity / 1e6:.0f} MB total proxy storage)"
            ),
        )

    def baps_tops_table(self) -> bool:
        baps = self.results["browsers-aware-proxy (BAPS)"]
        return all(
            baps.hit_ratio >= r.hit_ratio - 1e-12 for r in self.results.values()
        )


def run(
    trace_name: str = "NLANR-uc",
    proxy_frac: float = 0.10,
    n_leaves: int = 4,
) -> HierarchyComparisonResult:
    trace = load_paper_trace(trace_name)
    core = SimulationConfig.relative(trace, proxy_frac=proxy_frac, browser_sizing="minimum")
    total = core.proxy_capacity
    browser = core.browser_capacity

    results: dict[str, SimulationResult] = {}
    results["single proxy + private browsers (PLB)"] = simulate(
        trace, Organization.PROXY_AND_LOCAL_BROWSER, core
    )
    results["browsers-aware-proxy (BAPS)"] = simulate(
        trace, Organization.BROWSERS_AWARE_PROXY, core
    )
    results[f"{n_leaves} sibling leaves (ICP)"] = simulate_hierarchy(
        trace,
        HierarchyConfig(
            n_leaves=n_leaves,
            leaf_capacity=total // n_leaves,
            siblings=True,
            browser_capacity=browser,
        ),
    )
    results["leaf + parent (two-level)"] = simulate_hierarchy(
        trace,
        HierarchyConfig(
            n_leaves=1,
            leaf_capacity=total // 2,
            parent_capacity=total - total // 2,
            browser_capacity=browser,
        ),
    )
    results[f"{n_leaves} siblings, no cooperation"] = simulate_hierarchy(
        trace,
        HierarchyConfig(
            n_leaves=n_leaves,
            leaf_capacity=total // n_leaves,
            siblings=False,
            browser_capacity=browser,
        ),
    )
    return HierarchyComparisonResult(
        trace_name=trace.name, total_proxy_capacity=total, results=results
    )
