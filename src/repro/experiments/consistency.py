"""Extension experiment — the cost of real cache consistency.

The paper assumes perfect, free coherence (a hit on a changed document
silently counts as a miss).  This experiment replays BAPS under the
expiration-based policies real proxies used and quantifies the
trade-off the paper abstracts away: stale deliveries vs validation
traffic.

Expected shape: *always-validate* delivers zero stale bytes but pays a
WAN round trip on every re-access; long fixed TTLs eliminate the
validations but leak stale documents; the adaptive (Alex-protocol) TTL
sits between, which is why Squid shipped it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consistency import (
    AdaptiveTTLPolicy,
    AlwaysValidatePolicy,
    ConsistencyPolicy,
    FixedTTLPolicy,
)
from repro.core.config import SimulationConfig
from repro.core.metrics import SimulationResult
from repro.core.policies import Organization
from repro.core.simulator import simulate
from repro.traces.profiles import load_paper_trace
from repro.util.fmt import ascii_table

__all__ = ["ConsistencyExperimentResult", "run", "DEFAULT_POLICIES"]


def DEFAULT_POLICIES() -> dict[str, ConsistencyPolicy | None]:
    return {
        "perfect (paper's rule)": None,
        "always-validate": AlwaysValidatePolicy(),
        "fixed TTL 1h": FixedTTLPolicy(3_600.0),
        "fixed TTL 1d": FixedTTLPolicy(86_400.0),
        "adaptive (Alex, 0.2)": AdaptiveTTLPolicy(factor=0.2),
    }


@dataclass
class ConsistencyExperimentResult:
    trace_name: str
    results: dict[str, SimulationResult]

    def render(self) -> str:
        headers = [
            "policy",
            "hit ratio",
            "stale deliveries",
            "validations",
            "validation hit%",
            "validation time (s)",
        ]
        rows = []
        for label, r in self.results.items():
            cs = r.consistency_stats
            rows.append(
                [
                    label,
                    f"{r.hit_ratio * 100:.2f}%",
                    cs.stale_deliveries,
                    cs.validations,
                    f"{cs.validation_hit_ratio * 100:.1f}%",
                    f"{r.overhead.validation_time:.1f}",
                ]
            )
        return ascii_table(
            headers,
            rows,
            title=f"consistency trade-off ({self.trace_name}, BAPS, 10% cache)",
        )

    def get(self, label: str) -> SimulationResult:
        return self.results[label]


def run(
    trace_name: str = "NLANR-uc",
    proxy_frac: float = 0.10,
    policies: dict[str, ConsistencyPolicy | None] | None = None,
) -> ConsistencyExperimentResult:
    trace = load_paper_trace(trace_name)
    base = SimulationConfig.relative(
        trace, proxy_frac=proxy_frac, browser_sizing="average"
    )
    results = {}
    for label, policy in (policies or DEFAULT_POLICIES()).items():
        config = base if policy is None else base.with_(consistency=policy)
        results[label] = simulate(trace, Organization.BROWSERS_AWARE_PROXY, config)
    return ConsistencyExperimentResult(trace_name=trace.name, results=results)
