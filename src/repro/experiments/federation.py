"""Extension experiment — cooperative multi-proxy federation.

The paper evaluates BAPS behind a single proxy.  This sweep shards the
client population over N cooperating proxies that exchange
Summary-Cache-style bloom digests (:mod:`repro.federation`) and asks
what inter-proxy cooperation buys at each digest-exchange period:
proxies × digest period, every cell bracketed by two anchors sharing
the per-proxy cache size:

* **single-proxy** (lower) — the plain paper engine, no federation;
* **fresh-digest oracle** (upper, per proxy count) — federation with
  ``digest_period == 0``: peers' claims are evaluated against live
  state on every request, so no real exchange period can serve more.

A federated cell should land strictly between its anchors —
:meth:`FederationResult.brackets_all` checks exactly that, the
federation e2e test and the CI smoke assert it — with digest staleness
showing up as accountable ``digest_false_hits`` / ``digest_missed_hits``
rather than silent hit-ratio drift.

The grid runs through :func:`repro.core.parallel.run_cells`, so
``--workers``, the attempt journal, and resume all apply; every cell's
seed follows the engine's standard identity rule, and the federation
configs differ per cell, so journal keys stay unique via the config
digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import FederationConfig, SimulationConfig
from repro.core.metrics import SimulationResult
from repro.core.parallel import EngineOptions, SweepCell, SweepRun, run_cells
from repro.core.policies import Organization
from repro.traces.profiles import load_paper_trace
from repro.traces.record import Trace
from repro.util.fmt import ascii_table
from repro.util.rng import derive_seed

__all__ = [
    "FederationResult",
    "run",
    "DEFAULT_PROXY_COUNTS",
    "DEFAULT_DIGEST_PERIODS",
]

#: cooperating proxies swept.
DEFAULT_PROXY_COUNTS = (2, 4)

#: digest exchange periods swept (virtual seconds): 15 minutes and
#: 1 hour over the paper profiles' 24-hour days.
DEFAULT_DIGEST_PERIODS = (900.0, 3600.0)


@dataclass
class FederationResult:
    """The proxies x digest-period grid, plus its bracketing anchors."""

    trace_name: str
    proxy_frac: float
    #: the plain single-proxy engine at the same per-proxy cache size.
    single_proxy: SimulationResult
    #: proxy count -> fresh-digest (period 0) oracle.
    fresh: dict[int, SimulationResult]
    proxy_counts: tuple[int, ...]
    digest_periods: tuple[float, ...]
    cells: dict[tuple[int, float], SimulationResult]
    #: the underlying engine run (timing, attempts, failures).
    sweep: SweepRun | None = field(default=None, repr=False)

    def cell(self, proxies: int, period: float) -> SimulationResult:
        return self.cells[(proxies, period)]

    def brackets_all(self) -> bool:
        """True when *every* federated cell lands strictly between the
        single-proxy floor and its fresh-digest ceiling — the
        acceptance criterion for the federation model."""
        floor = self.single_proxy.hit_ratio
        for proxies in self.proxy_counts:
            top = self.fresh[proxies].hit_ratio
            for period in self.digest_periods:
                hr = self.cells[(proxies, period)].hit_ratio
                if not (floor < hr < top):
                    return False
        return True

    def render(self) -> str:
        headers = ["proxies", "fresh digest"] + [
            f"HR T={period:g}s" for period in self.digest_periods
        ] + ["ipx hits (best)", "false hits (best)", "digest MB (best)"]
        best = min(self.digest_periods)
        rows = []
        for proxies in self.proxy_counts:
            row = [proxies, f"{self.fresh[proxies].hit_ratio * 100:.2f}%"]
            for period in self.digest_periods:
                row.append(f"{self.cells[(proxies, period)].hit_ratio * 100:.2f}%")
            best_cell = self.cells[(proxies, best)]
            row.append(best_cell.interproxy_hits)
            row.append(best_cell.digest_false_hits)
            row.append(f"{best_cell.digest_bytes_exchanged / 1e6:.2f}")
            rows.append(row)
        return ascii_table(
            headers,
            rows,
            title=(
                f"BAPS proxy federation ({self.trace_name}, "
                f"{self.proxy_frac * 100:g}% cache per proxy; "
                f"single proxy {self.single_proxy.hit_ratio * 100:.2f}%)"
            ),
        )


def run(
    trace_name: str = "NLANR-uc",
    proxy_counts=DEFAULT_PROXY_COUNTS,
    digest_periods=DEFAULT_DIGEST_PERIODS,
    proxy_frac: float = 0.10,
    interproxy_bandwidth: float | None = None,
    workers: int | None = 0,
    options: EngineOptions | None = None,
    trace: Trace | None = None,
) -> FederationResult:
    """The federation sweep: proxies x digest period, plus anchors.

    Every cell replays the same trace with the same per-proxy cache
    sizing (``SimulationConfig.relative`` at *proxy_frac*); only the
    federation knobs vary, so differences isolate cooperation and
    digest staleness.  ``trace`` overrides the named paper trace (the
    tests pass a scaled profile).  ``interproxy_bandwidth`` (bits/s)
    overrides the modeled inter-proxy link.
    """
    if trace is None:
        trace = load_paper_trace(trace_name)
    proxy_counts = tuple(int(n) for n in proxy_counts)
    digest_periods = tuple(float(p) for p in digest_periods)
    org = Organization.BROWSERS_AWARE_PROXY
    base = SimulationConfig.relative(
        trace, proxy_frac=proxy_frac, browser_sizing="minimum"
    )

    def fed_config(n: int, period: float) -> FederationConfig:
        kwargs = {"n_proxies": n, "digest_period": period}
        if interproxy_bandwidth is not None:
            kwargs["interproxy_bandwidth_bps"] = interproxy_bandwidth
        return FederationConfig(**kwargs)

    # The engine's standard cell-identity seed; the configs differ per
    # cell, so journal keys stay unique through the config digest.
    seed = derive_seed(0, trace.name, org.value, repr(proxy_frac))
    labels: list[tuple] = [("single",)]
    configs: list[SimulationConfig] = [base]
    for n in proxy_counts:
        labels.append(("fresh", n))
        configs.append(base.with_(federation=fed_config(n, 0.0)))
        for period in digest_periods:
            labels.append(("cell", n, period))
            configs.append(base.with_(federation=fed_config(n, period)))
    cells = [
        SweepCell(
            index=i,
            trace_name=trace.name,
            organization=org,
            fraction=proxy_frac,
            config=config,
            seed=seed,
        )
        for i, config in enumerate(configs)
    ]

    sweep = run_cells(cells, {trace.name: trace}, workers=workers, options=options)
    if sweep.failures:
        raise RuntimeError(
            "federation sweep cells failed:\n"
            + "\n".join(str(f) for f in sweep.failures)
        )

    single_proxy: SimulationResult | None = None
    fresh: dict[int, SimulationResult] = {}
    grid: dict[tuple[int, float], SimulationResult] = {}
    for label, cell in zip(labels, cells):
        result = sweep.results[cell.index]
        if label[0] == "single":
            single_proxy = result
        elif label[0] == "fresh":
            fresh[label[1]] = result
        else:
            grid[(label[1], label[2])] = result
    assert single_proxy is not None
    return FederationResult(
        trace_name=trace.name,
        proxy_frac=proxy_frac,
        single_proxy=single_proxy,
        fresh=fresh,
        proxy_counts=proxy_counts,
        digest_periods=digest_periods,
        cells=grid,
        sweep=sweep,
    )
