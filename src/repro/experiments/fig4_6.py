"""Figures 4, 5, 6 — BAPS vs proxy-and-local-browser with *average*
browser cache sizing (NLANR-bo1, BU-95, BU-98 respectively).

Proxy cache at {0.5, 5, 10, 20}% of the infinite proxy cache size;
each browser cache at the same fraction of the average infinite
browser cache size.  Expected shape: "browsers-aware-proxy-server
consistently and significantly increases both hit ratios and byte hit
ratios on all the traces."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policies import Organization
from repro.core.sweep import PAPER_SIZE_FRACTIONS, SweepResult, run_policy_sweep
from repro.traces.profiles import load_paper_trace
from repro.util.fmt import ascii_table

__all__ = ["PairResult", "run", "FIGURE_TRACES"]

#: figure number -> trace
FIGURE_TRACES = {4: "NLANR-bo1", 5: "BU-95", 6: "BU-98"}

_PAIR = (Organization.PROXY_AND_LOCAL_BROWSER, Organization.BROWSERS_AWARE_PROXY)


@dataclass
class PairResult:
    figure: int
    sweep: SweepResult

    def render(self) -> str:
        headers = [
            "relative cache size",
            "HR(PLB)",
            "HR(BAPS)",
            "delta",
            "BHR(PLB)",
            "BHR(BAPS)",
            "delta",
        ]
        rows = []
        for f in self.sweep.fractions:
            plb = self.sweep.get(Organization.PROXY_AND_LOCAL_BROWSER, f)
            baps = self.sweep.get(Organization.BROWSERS_AWARE_PROXY, f)
            rows.append(
                [
                    f"{f * 100:g}%",
                    f"{plb.hit_ratio * 100:.2f}%",
                    f"{baps.hit_ratio * 100:.2f}%",
                    f"+{(baps.hit_ratio - plb.hit_ratio) * 100:.2f}",
                    f"{plb.byte_hit_ratio * 100:.2f}%",
                    f"{baps.byte_hit_ratio * 100:.2f}%",
                    f"+{(baps.byte_hit_ratio - plb.byte_hit_ratio) * 100:.2f}",
                ]
            )
        return ascii_table(
            headers,
            rows,
            title=(
                f"Figure {self.figure}: {self.sweep.trace_name}, "
                "BAPS vs proxy-and-local-browser (average browser cache)"
            ),
        )

    def baps_wins_everywhere(self) -> bool:
        for f in self.sweep.fractions:
            plb = self.sweep.get(Organization.PROXY_AND_LOCAL_BROWSER, f)
            baps = self.sweep.get(Organization.BROWSERS_AWARE_PROXY, f)
            if baps.hit_ratio < plb.hit_ratio or baps.byte_hit_ratio < plb.byte_hit_ratio:
                return False
        return True

    def mean_hit_gain(self) -> float:
        """Average hit-ratio gain (in points) over the size axis."""
        gains = [
            self.sweep.get(Organization.BROWSERS_AWARE_PROXY, f).hit_ratio
            - self.sweep.get(Organization.PROXY_AND_LOCAL_BROWSER, f).hit_ratio
            for f in self.sweep.fractions
        ]
        return sum(gains) / len(gains)


def run(
    figure: int = 4,
    fractions=PAPER_SIZE_FRACTIONS,
    workers: int | None = 0,
    options=None,
) -> PairResult:
    """Run one of Figures 4/5/6 by figure number."""
    if figure not in FIGURE_TRACES:
        raise ValueError(f"figure must be one of {sorted(FIGURE_TRACES)}, got {figure}")
    trace = load_paper_trace(FIGURE_TRACES[figure])
    sweep = run_policy_sweep(
        trace,
        organizations=_PAIR,
        fractions=fractions,
        browser_sizing="average",
        workers=workers,
        options=options,
    )
    return PairResult(figure=figure, sweep=sweep)
