"""Figure 3 — breakdowns of BAPS hit ratios and byte hit ratios
(NLANR-uc trace, minimum browser cache size).

Each relative cache size gets a stacked bar of three hit locations:
local browser, proxy, and remote browsers.  The paper's point: "the hit
ratio and byte hit ratio in remote browser caches should not be
neglected even when the browser cache size is very small."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import HitBreakdown
from repro.core.policies import Organization
from repro.core.sweep import PAPER_SIZE_FRACTIONS, run_size_sweep
from repro.traces.profiles import load_paper_trace
from repro.util.fmt import ascii_table

__all__ = ["Fig3Result", "run"]


@dataclass
class Fig3Result:
    trace_name: str
    fractions: tuple[float, ...]
    hit_breakdowns: dict[float, HitBreakdown]
    byte_breakdowns: dict[float, HitBreakdown]

    def render(self) -> str:
        def table(breakdowns: dict[float, HitBreakdown], what: str) -> str:
            headers = ["relative cache size", "local-browser", "proxy", "remote-browsers", "total"]
            rows = []
            for f in self.fractions:
                bd = breakdowns[f]
                rows.append(
                    [
                        f"{f * 100:g}%",
                        f"{bd.local_browser * 100:.2f}%",
                        f"{bd.proxy * 100:.2f}%",
                        f"{bd.remote_browser * 100:.2f}%",
                        f"{bd.total * 100:.2f}%",
                    ]
                )
            return ascii_table(
                headers, rows, title=f"Figure 3: {self.trace_name} {what} breakdown (BAPS)"
            )

        return table(self.hit_breakdowns, "hit ratio") + "\n\n" + table(
            self.byte_breakdowns, "byte hit ratio"
        )

    def remote_share_at(self, fraction: float) -> float:
        return self.hit_breakdowns[fraction].remote_browser


def run(
    trace_name: str = "NLANR-uc",
    fractions=PAPER_SIZE_FRACTIONS,
    workers: int | None = 0,
    options=None,
    mrc: bool = False,
    sample_rate: float = 1.0,
    sample_seed: int = 0,
) -> Fig3Result:
    trace = load_paper_trace(trace_name)
    sweep = run_size_sweep(
        trace,
        Organization.BROWSERS_AWARE_PROXY,
        fractions=fractions,
        browser_sizing="minimum",
        workers=workers,
        options=options,
        mrc=mrc,
        sample_rate=sample_rate,
        sample_seed=sample_seed,
    )
    hit_b = {}
    byte_b = {}
    for f in sweep.fractions:
        result = sweep.get(Organization.BROWSERS_AWARE_PROXY, f)
        hit_b[f] = result.breakdown()
        byte_b[f] = result.byte_breakdown()
    return Fig3Result(
        trace_name=trace.name,
        fractions=tuple(fractions),
        hit_breakdowns=hit_b,
        byte_breakdowns=byte_b,
    )
