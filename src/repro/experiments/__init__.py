"""One module per table/figure of the paper's evaluation.

Every experiment exposes ``run(...)`` returning a result object with a
``render()`` method that prints the same rows/series the paper reports.
The benchmark harness under ``benchmarks/`` and the ``baps`` CLI both
drive these functions; see DESIGN.md §5 for the experiment index.
"""

from repro.experiments import (
    table1,
    fig2,
    fig3,
    fig4_6,
    fig7,
    fig8,
    overhead,
    memory_hit,
    index_space,
    staleness,
    security_overhead,
    ablation_replacement,
    ablation_index,
    hierarchy,
    consistency,
    prefetching,
    availability,
    recovery,
    stress,
    chaos,
)
from repro.experiments.runner import ALL_EXPERIMENTS, run_experiment

__all__ = [
    "table1",
    "fig2",
    "fig3",
    "fig4_6",
    "fig7",
    "fig8",
    "overhead",
    "memory_hit",
    "index_space",
    "staleness",
    "security_overhead",
    "ablation_replacement",
    "ablation_index",
    "hierarchy",
    "consistency",
    "prefetching",
    "availability",
    "recovery",
    "stress",
    "chaos",
    "ALL_EXPERIMENTS",
    "run_experiment",
]
