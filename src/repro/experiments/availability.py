"""Extension experiment — BAPS under client churn.

The paper's LAN clients are always on; a peer-to-peer sharing layer in
the wild faces churn.  This sweep lowers the probability that the
chosen holder is online when asked to serve a remote hit and measures
how much of the BAPS gain over proxy-and-local-browser survives.

Expected shape: the gain degrades *gracefully and linearly* with
availability — an offline holder costs one wasted round trip and falls
back to the origin, so BAPS never drops below the conventional
organization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SimulationConfig
from repro.core.metrics import SimulationResult
from repro.core.policies import Organization
from repro.core.simulator import simulate
from repro.traces.profiles import load_paper_trace
from repro.util.fmt import ascii_table

__all__ = ["AvailabilityResult", "run", "DEFAULT_AVAILABILITIES"]

DEFAULT_AVAILABILITIES = (1.0, 0.9, 0.7, 0.5, 0.25)


@dataclass
class AvailabilityResult:
    trace_name: str
    plb: SimulationResult
    by_availability: dict[float, SimulationResult]

    def gain(self, availability: float) -> float:
        """BAPS hit-ratio gain over PLB (points) at this availability."""
        return self.by_availability[availability].hit_ratio - self.plb.hit_ratio

    def render(self) -> str:
        headers = [
            "holder availability",
            "hit ratio",
            "gain over PLB (pts)",
            "remote hits",
            "offline holders",
        ]
        rows = []
        for a, r in self.by_availability.items():
            rows.append(
                [
                    f"{a * 100:g}%",
                    f"{r.hit_ratio * 100:.2f}%",
                    f"+{self.gain(a) * 100:.2f}",
                    r.by_location_remote_hits(),
                    r.holder_unavailable,
                ]
            )
        return ascii_table(
            headers,
            rows,
            title=(
                f"BAPS under client churn ({self.trace_name}, 10% cache; "
                f"PLB baseline {self.plb.hit_ratio * 100:.2f}%)"
            ),
        )


def run(
    trace_name: str = "NLANR-uc",
    availabilities=DEFAULT_AVAILABILITIES,
    proxy_frac: float = 0.10,
) -> AvailabilityResult:
    trace = load_paper_trace(trace_name)
    base = SimulationConfig.relative(
        trace, proxy_frac=proxy_frac, browser_sizing="average"
    )
    plb = simulate(trace, Organization.PROXY_AND_LOCAL_BROWSER, base)
    results = {}
    for a in availabilities:
        config = base.with_(holder_availability=a)
        results[a] = simulate(trace, Organization.BROWSERS_AWARE_PROXY, config)
    return AvailabilityResult(trace_name=trace.name, plb=plb, by_availability=results)
