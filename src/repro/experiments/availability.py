"""Extension experiment — BAPS under client churn.

The paper's LAN clients are always on; a peer-to-peer sharing layer in
the wild faces churn.  Two sweeps measure how much of the BAPS gain
over proxy-and-local-browser survives:

* :func:`run` — the original per-probe Bernoulli model: each remote
  probe independently finds the holder offline with probability
  ``1 - availability``.  The gain degrades gracefully and linearly —
  an offline holder costs one wasted round trip and falls back to the
  origin, so BAPS never drops below the conventional organization.

* :func:`run_churn` — the resilience sweep: clients follow a
  *session-based* on/off process (:class:`~repro.core.churn.ChurnModel`)
  at a fixed stationary availability, crossed with the engine's holder
  failover budget (``max_holder_retries``).  Shorter sessions mean the
  index more often points at a holder that just went offline; a larger
  retry budget lets the request fail over to another replica instead of
  escalating to the origin.  The headline question: how many retries
  buy back the always-on hit ratio?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.churn import ChurnModel
from repro.core.config import SimulationConfig
from repro.core.metrics import SimulationResult
from repro.core.policies import Organization
from repro.core.simulator import simulate
from repro.traces.profiles import load_paper_trace
from repro.util.fmt import ascii_table
from repro.util.rng import derive_seed

__all__ = [
    "AvailabilityResult",
    "ChurnResilienceResult",
    "run",
    "run_churn",
    "DEFAULT_AVAILABILITIES",
    "DEFAULT_SESSION_LENGTHS",
    "DEFAULT_RETRY_BUDGETS",
]

DEFAULT_AVAILABILITIES = (1.0, 0.9, 0.7, 0.5, 0.25)

#: mean on-session lengths (seconds) for the resilience sweep: two-hour
#: office sessions down to two-minute flash visits.
DEFAULT_SESSION_LENGTHS = (7200.0, 1800.0, 600.0, 120.0)

#: holder failover budgets crossed with the session lengths.
DEFAULT_RETRY_BUDGETS = (0, 1, 2, 4)


@dataclass
class AvailabilityResult:
    trace_name: str
    plb: SimulationResult
    by_availability: dict[float, SimulationResult]

    def gain(self, availability: float) -> float:
        """BAPS hit-ratio gain over PLB (points) at this availability."""
        return self.by_availability[availability].hit_ratio - self.plb.hit_ratio

    def render(self) -> str:
        headers = [
            "holder availability",
            "hit ratio",
            "gain over PLB (pts)",
            "remote hits",
            "offline holders",
        ]
        rows = []
        for a, r in self.by_availability.items():
            rows.append(
                [
                    f"{a * 100:g}%",
                    f"{r.hit_ratio * 100:.2f}%",
                    f"+{self.gain(a) * 100:.2f}",
                    r.by_location_remote_hits(),
                    r.holder_unavailable,
                ]
            )
        return ascii_table(
            headers,
            rows,
            title=(
                f"BAPS under client churn ({self.trace_name}, 10% cache; "
                f"PLB baseline {self.plb.hit_ratio * 100:.2f}%)"
            ),
        )


def run(
    trace_name: str = "NLANR-uc",
    availabilities=DEFAULT_AVAILABILITIES,
    proxy_frac: float = 0.10,
    max_holder_retries: int = 0,
    corruption_rate: float = 0.0,
) -> AvailabilityResult:
    trace = load_paper_trace(trace_name)
    base = SimulationConfig.relative(
        trace, proxy_frac=proxy_frac, browser_sizing="average"
    )
    plb = simulate(trace, Organization.PROXY_AND_LOCAL_BROWSER, base)
    results = {}
    for a in availabilities:
        config = base.with_(
            holder_availability=a,
            max_holder_retries=max_holder_retries,
            corruption_rate=corruption_rate,
        )
        results[a] = simulate(trace, Organization.BROWSERS_AWARE_PROXY, config)
    return AvailabilityResult(trace_name=trace.name, plb=plb, by_availability=results)


@dataclass
class ChurnResilienceResult:
    """The session-length x retry-budget grid, plus its two anchors."""

    trace_name: str
    availability: float
    plb: SimulationResult
    always_on: SimulationResult
    session_lengths: tuple[float, ...]
    retry_budgets: tuple[int, ...]
    cells: dict[tuple[float, int], SimulationResult]

    def cell(self, mean_on: float, retries: int) -> SimulationResult:
        return self.cells[(mean_on, retries)]

    def recovered_fraction(self, mean_on: float, retries: int) -> float:
        """How much of the churn-induced hit-ratio loss the retry budget
        buys back, relative to the zero-retry cell (1.0 = back to the
        always-on ratio)."""
        floor = self.cells[(mean_on, 0)].hit_ratio
        lost = self.always_on.hit_ratio - floor
        if lost <= 0:
            return 0.0
        return (self.cells[(mean_on, retries)].hit_ratio - floor) / lost

    def render(self) -> str:
        headers = ["mean session"] + [
            f"HR r={r}" for r in self.retry_budgets
        ] + ["rescued hits (max r)", "offline probes (max r)"]
        rows = []
        r_max = self.retry_budgets[-1]
        for mean_on in self.session_lengths:
            row = [f"{mean_on:g}s"]
            for r in self.retry_budgets:
                row.append(f"{self.cells[(mean_on, r)].hit_ratio * 100:.2f}%")
            row.append(self.cells[(mean_on, r_max)].failover_rescued_hits)
            row.append(self.cells[(mean_on, r_max)].holder_unavailable)
            rows.append(row)
        return ascii_table(
            headers,
            rows,
            title=(
                f"BAPS failover under session churn ({self.trace_name}, "
                f"{self.availability * 100:g}% stationary availability; "
                f"always-on {self.always_on.hit_ratio * 100:.2f}%, "
                f"PLB {self.plb.hit_ratio * 100:.2f}%)"
            ),
        )


def run_churn(
    trace_name: str = "NLANR-uc",
    session_lengths=DEFAULT_SESSION_LENGTHS,
    retry_budgets=DEFAULT_RETRY_BUDGETS,
    proxy_frac: float = 0.10,
    availability: float = 0.75,
    distribution: str = "exponential",
    corruption_rate: float = 0.0,
) -> ChurnResilienceResult:
    """The resilience sweep: session length x holder retry budget.

    Every session length keeps the *same* stationary availability (the
    off-session mean scales with the on-session mean), so columns
    isolate the failover budget and rows isolate churn *granularity* at
    constant long-run uptime.  All retry budgets for one session length
    share one ``availability_seed``, hence identical on/off schedules:
    any hit-ratio difference down a column is the failover policy, not
    luck.
    """
    if not (0.0 < availability < 1.0):
        raise ValueError(
            f"availability must be in (0, 1) for a churn sweep, got {availability}"
        )
    trace = load_paper_trace(trace_name)
    base = SimulationConfig.relative(
        trace, proxy_frac=proxy_frac, browser_sizing="average"
    )
    plb = simulate(trace, Organization.PROXY_AND_LOCAL_BROWSER, base)
    always_on = simulate(trace, Organization.BROWSERS_AWARE_PROXY, base)
    cells: dict[tuple[float, int], SimulationResult] = {}
    for mean_on in session_lengths:
        mean_off = mean_on * (1.0 - availability) / availability
        churn = ChurnModel(
            mean_on_seconds=mean_on,
            mean_off_seconds=mean_off,
            distribution=distribution,
        )
        seed = derive_seed(0, trace.name, "churn-sweep", repr(float(mean_on)))
        for retries in retry_budgets:
            config = base.with_(
                churn=churn,
                max_holder_retries=retries,
                corruption_rate=corruption_rate,
                availability_seed=seed,
            )
            cells[(mean_on, retries)] = simulate(
                trace, Organization.BROWSERS_AWARE_PROXY, config
            )
    return ChurnResilienceResult(
        trace_name=trace.name,
        availability=availability,
        plb=plb,
        always_on=always_on,
        session_lengths=tuple(session_lengths),
        retry_budgets=tuple(retry_budgets),
        cells=cells,
    )
