"""Ablation — index maintenance discipline.

Compares the three index representations the paper discusses:

* exact invalidation-based index (always fresh, one message per
  insert/evict),
* periodic batched updates at a 10% delay threshold (fewer messages,
  some staleness),
* Bloom-filter summaries (Summary-Cache style): rebuilt from the true
  browser contents at the end of a BAPS run, then evaluated for
  footprint and false-positive rate against a sample of lookups.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SimulationConfig
from repro.core.metrics import SimulationResult
from repro.core.policies import Organization
from repro.core.simulator import Simulator
from repro.index.bloom import BloomIndex
from repro.index.staleness import PeriodicUpdatePolicy
from repro.traces.profiles import load_paper_trace
from repro.util.fmt import ascii_table
from repro.util.rng import make_rng

__all__ = ["IndexAblationResult", "run"]


@dataclass
class IndexAblationResult:
    trace_name: str
    exact: SimulationResult
    periodic: SimulationResult
    exact_footprint_bytes: int
    bloom_footprint_bytes: int
    bloom_false_positive_rate: float

    def render(self) -> str:
        headers = ["variant", "hit ratio", "update messages", "footprint", "notes"]
        rows = [
            [
                "invalidation (exact)",
                f"{self.exact.hit_ratio * 100:.2f}%",
                self.exact.overhead.index_update_messages,
                f"{self.exact_footprint_bytes / 1e6:.3f} MB",
                "peak, 28 B/entry",
            ],
            [
                "periodic (10% threshold)",
                f"{self.periodic.hit_ratio * 100:.2f}%",
                self.periodic.overhead.index_update_messages,
                "-",
                f"{self.periodic.index_stats.false_hits} false hits",
            ],
            [
                "bloom summaries",
                "-",
                "-",
                f"{self.bloom_footprint_bytes / 1e6:.3f} MB",
                f"FP rate {self.bloom_false_positive_rate * 100:.3f}%",
            ],
        ]
        return ascii_table(
            headers,
            rows,
            title=f"Ablation: index maintenance ({self.trace_name}, BAPS, 10% cache)",
        )


def run(
    trace_name: str = "NLANR-uc",
    proxy_frac: float = 0.10,
    bits_per_doc: float = 16.0,
    n_probe: int = 20_000,
    seed: int = 7,
) -> IndexAblationResult:
    trace = load_paper_trace(trace_name)
    base = SimulationConfig.relative(
        trace, proxy_frac=proxy_frac, browser_sizing="average"
    )

    exact_sim = Simulator(trace, Organization.BROWSERS_AWARE_PROXY, base)
    exact = exact_sim.run()

    periodic = Simulator(
        trace,
        Organization.BROWSERS_AWARE_PROXY,
        base.with_(index_update_policy=PeriodicUpdatePolicy(threshold=0.10)),
    ).run()

    # Bloom summaries rebuilt from the final true browser contents.
    browsers = exact_sim.browsers
    per_client = max(1, max((len(c) for c in browsers), default=1))
    bloom = BloomIndex(len(browsers), per_client, bits_per_doc=bits_per_doc)
    cached: set[tuple[int, int]] = set()
    for cid, cache in enumerate(browsers):
        docs = list(cache)
        bloom.rebuild(cid, docs)
        cached.update((cid, d) for d in docs)

    # False-positive probe: random (client, doc) pairs that are *not*
    # cached must mostly be rejected by the summaries.
    rng = make_rng(seed)
    n_docs = trace.n_docs
    probes = 0
    false_pos = 0
    clients = rng.integers(0, len(browsers), size=n_probe)
    docs = rng.integers(0, n_docs, size=n_probe)
    for cid, doc in zip(clients.tolist(), docs.tolist()):
        if (cid, doc) in cached:
            continue
        probes += 1
        if doc in bloom._filters[cid]:
            false_pos += 1
    fp_rate = false_pos / probes if probes else 0.0

    return IndexAblationResult(
        trace_name=trace.name,
        exact=exact,
        periodic=periodic,
        exact_footprint_bytes=exact.index_peak_footprint_bytes,
        bloom_footprint_bytes=bloom.footprint_bytes(),
        bloom_false_positive_rate=fp_rate,
    )
