"""Memory/disk access-time model (paper §4.2).

"We conservatively assume that one memory access of one cache block of
16 Bytes spends 2 µs (the memory access time is lower than this in many
advanced workstations), and one disk access of one page of 4 KBytes is
10 ms."

Serving a cached document costs one block/page access per block/page of
its body; the §4.2 experiment converts memory-vs-disk byte hit ratios
into total hit-latency differences with exactly this arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.util.validation import check_non_negative, check_positive

__all__ = ["MemoryDiskModel", "AccessKind"]


class AccessKind(Enum):
    """Which medium served the bytes."""

    MEMORY = "memory"
    DISK = "disk"


@dataclass(frozen=True)
class MemoryDiskModel:
    """Block-granular storage access costs."""

    memory_block_bytes: int = 16
    memory_block_time: float = 2e-6
    disk_page_bytes: int = 4096
    disk_page_time: float = 10e-3

    def __post_init__(self) -> None:
        check_positive("memory_block_bytes", self.memory_block_bytes)
        check_positive("disk_page_bytes", self.disk_page_bytes)
        check_non_negative("memory_block_time", self.memory_block_time)
        check_non_negative("disk_page_time", self.disk_page_time)

    def memory_time(self, n_bytes: int) -> float:
        """Time to read *n_bytes* from the memory cache tier."""
        check_non_negative("n_bytes", n_bytes)
        blocks = -(-n_bytes // self.memory_block_bytes)  # ceil div
        return blocks * self.memory_block_time

    def disk_time(self, n_bytes: int) -> float:
        """Time to read *n_bytes* from the disk cache tier."""
        check_non_negative("n_bytes", n_bytes)
        pages = -(-n_bytes // self.disk_page_bytes)
        return pages * self.disk_page_time

    def access_time(self, n_bytes: int, kind: AccessKind) -> float:
        if kind is AccessKind.MEMORY:
            return self.memory_time(n_bytes)
        return self.disk_time(n_bytes)

    def hit_latency(self, memory_bytes: int, disk_bytes: int) -> float:
        """Total latency for a byte mix served from both tiers."""
        return self.memory_time(memory_bytes) + self.disk_time(disk_bytes)
