"""LAN/WAN topology and the total-service-time model (paper §5).

The paper reports remote-browser communication overhead "out of the
total workload service time", so the simulator must price *every*
request class, not just remote hits:

* local browser hit — memory or disk access on the client machine,
* proxy hit — memory or disk access at the proxy plus the LAN hop,
* remote browser hit — storage access at the holder plus a shared-bus
  LAN transfer (the overhead being measured),
* miss — a WAN fetch from the origin server.

WAN defaults (0.5 s connect, 1 Mbps effective throughput) model a
2000-era origin fetch; they are configurable and only scale the
denominator of the overhead fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.ethernet import EthernetModel, SharedBus
from repro.network.latency import AccessKind, MemoryDiskModel
from repro.util.units import BITS_PER_BYTE
from repro.util.validation import check_non_negative, check_positive

__all__ = ["WANModel", "LANTopology", "ServiceTimeModel"]


@dataclass(frozen=True)
class WANModel:
    """Origin-server fetch timing."""

    connection_setup: float = 0.5
    bandwidth_bps: float = 1e6

    def __post_init__(self) -> None:
        check_non_negative("connection_setup", self.connection_setup)
        check_positive("bandwidth_bps", self.bandwidth_bps)

    def fetch_time(self, n_bytes: int) -> float:
        check_non_negative("n_bytes", n_bytes)
        return self.connection_setup + n_bytes * BITS_PER_BYTE / self.bandwidth_bps


@dataclass
class LANTopology:
    """A cluster of clients and one proxy on a shared LAN segment."""

    n_clients: int
    lan: EthernetModel = field(default_factory=EthernetModel)
    wan: WANModel = field(default_factory=WANModel)
    storage: MemoryDiskModel = field(default_factory=MemoryDiskModel)

    def __post_init__(self) -> None:
        check_positive("n_clients", self.n_clients)
        self.bus = SharedBus(self.lan)

    def remote_browser_transfer(self, arrival: float, n_bytes: int):
        """A remote-browser hit moves the document across the shared
        bus; returns the :class:`~repro.network.ethernet.BusTransfer`."""
        return self.bus.submit(arrival, n_bytes)

    def reset(self) -> None:
        self.bus.reset()


@dataclass(frozen=True)
class ServiceTimeModel:
    """Per-request service-time pricing for the overhead estimate."""

    lan: EthernetModel = field(default_factory=EthernetModel)
    wan: WANModel = field(default_factory=WANModel)
    storage: MemoryDiskModel = field(default_factory=MemoryDiskModel)

    def local_hit(self, n_bytes: int, kind: AccessKind = AccessKind.DISK) -> float:
        """Served from the client's own browser cache."""
        return self.storage.access_time(n_bytes, kind)

    def proxy_hit(self, n_bytes: int, kind: AccessKind = AccessKind.DISK) -> float:
        """Served from the proxy cache: storage access + LAN hop to the
        client."""
        return self.storage.access_time(n_bytes, kind) + self.lan.transfer_time(n_bytes)

    def remote_browser_hit(
        self,
        n_bytes: int,
        kind: AccessKind = AccessKind.DISK,
        contention: float = 0.0,
    ) -> float:
        """Served from another client's browser cache: storage access at
        the holder, LAN transfer, plus any bus contention wait."""
        check_non_negative("contention", contention)
        return (
            self.storage.access_time(n_bytes, kind)
            + self.lan.transfer_time(n_bytes)
            + contention
        )

    def origin_miss(self, n_bytes: int) -> float:
        """Fetched from the origin over the WAN (plus the LAN hop from
        the proxy to the client, which is dwarfed by the WAN time)."""
        return self.wan.fetch_time(n_bytes) + self.lan.transfer_time(n_bytes)
