"""Network and storage-latency models (paper §4.2 and §5).

* :mod:`repro.network.ethernet` — the 10 Mbps shared LAN over which
  remote-browser hits travel, with 0.1 s connection setup and FCFS bus
  contention accounting,
* :mod:`repro.network.latency` — the memory/disk access-time model
  (16-byte memory blocks at 2 µs, 4 KB disk pages at 10 ms),
* :mod:`repro.network.topology` — a LAN of clients plus proxy with a
  WAN link to origin servers; prices the service time of every request
  class so the §5 "overhead as a fraction of total service time"
  estimate can be reproduced.
"""

from repro.network.ethernet import EthernetModel, SharedBus, BusStats
from repro.network.latency import MemoryDiskModel, AccessKind
from repro.network.topology import LANTopology, WANModel, ServiceTimeModel

__all__ = [
    "EthernetModel",
    "SharedBus",
    "BusStats",
    "MemoryDiskModel",
    "AccessKind",
    "LANTopology",
    "WANModel",
    "ServiceTimeModel",
]
