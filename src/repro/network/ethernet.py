"""Shared-Ethernet transfer and contention model (paper §5).

"The simulator estimates the data transferring time based on the number
of remote browser hits and their data sizes on a 10 Mbps Ethernet.
Setting 0.1 second as the network connection time …"

Remote-browser transfers share one bus; overlapping transfers queue
FCFS, and the queueing delay is the *contention time* the paper reports
("the contention time only contributes up to 0.12% of the total
communication time").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import BITS_PER_BYTE
from repro.util.validation import check_non_negative, check_positive

__all__ = ["EthernetModel", "SharedBus", "BusStats", "BusTransfer"]


@dataclass(frozen=True)
class EthernetModel:
    """Point-to-point timing for one LAN transfer."""

    bandwidth_bps: float = 10e6
    connection_setup: float = 0.1

    def __post_init__(self) -> None:
        check_positive("bandwidth_bps", self.bandwidth_bps)
        check_non_negative("connection_setup", self.connection_setup)

    def serialization_time(self, n_bytes: int) -> float:
        """Wire time for *n_bytes*, excluding setup."""
        check_non_negative("n_bytes", n_bytes)
        return n_bytes * BITS_PER_BYTE / self.bandwidth_bps

    def transfer_time(self, n_bytes: int) -> float:
        """Setup plus wire time for one transfer."""
        return self.connection_setup + self.serialization_time(n_bytes)


@dataclass(frozen=True)
class BusTransfer:
    """Timing of one completed transfer on the shared bus."""

    arrival: float
    start: float
    finish: float
    n_bytes: int

    @property
    def wait(self) -> float:
        """Time spent queued behind earlier transfers (contention)."""
        return self.start - self.arrival

    @property
    def service(self) -> float:
        return self.finish - self.start


@dataclass
class BusStats:
    """Aggregate bus accounting."""

    n_transfers: int = 0
    total_bytes: int = 0
    total_service_time: float = 0.0
    total_contention_time: float = 0.0

    @property
    def total_communication_time(self) -> float:
        return self.total_service_time + self.total_contention_time

    @property
    def contention_fraction(self) -> float:
        """Contention time as a fraction of total communication time."""
        total = self.total_communication_time
        return self.total_contention_time / total if total else 0.0


class SharedBus:
    """FCFS shared medium.

    Transfers must be submitted in non-decreasing arrival order (the
    simulator replays the trace chronologically).  A transfer arriving
    while the bus is busy waits until the bus frees.
    """

    def __init__(self, model: EthernetModel | None = None) -> None:
        self.model = model or EthernetModel()
        self._busy_until = 0.0
        self._last_arrival = float("-inf")
        self.stats = BusStats()

    def submit(self, arrival: float, n_bytes: int) -> BusTransfer:
        """Schedule one transfer; returns its timing."""
        if arrival < self._last_arrival:
            raise ValueError(
                f"transfers must arrive in order: {arrival} < {self._last_arrival}"
            )
        self._last_arrival = arrival
        start = max(arrival, self._busy_until)
        service = self.model.transfer_time(n_bytes)
        finish = start + service
        self._busy_until = finish
        t = BusTransfer(arrival=arrival, start=start, finish=finish, n_bytes=n_bytes)
        self.stats.n_transfers += 1
        self.stats.total_bytes += n_bytes
        self.stats.total_service_time += service
        self.stats.total_contention_time += t.wait
        return t

    def reset(self) -> None:
        self._busy_until = 0.0
        self._last_arrival = float("-inf")
        self.stats = BusStats()
