"""``baps`` command-line interface.

Examples::

    baps list                               # list experiments
    baps run table1                         # one experiment
    baps run fig2 fig3                      # several
    baps run all                            # the full evaluation
    baps run fig2 --workers 4 --timing      # parallel sweep + timing report
    baps run fig2 --retries 2 --cell-timeout 300 --journal fig2.jsonl
    baps run fig2 --resume fig2.jsonl       # skip already-completed cells
    baps traces                             # trace characteristics only
    baps simulate --trace NLANR-uc --organization browsers-aware-proxy-server
    baps simulate --log access.log --format squid --proxy-frac 0.05
    baps profile --trace NLANR-uc -o all    # per-phase replay timings
    baps parse access.log --format squid    # trace statistics for a log
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.config import SimulationConfig
from repro.core.policies import Organization
from repro.core.simulator import simulate
from repro.experiments.runner import ALL_EXPERIMENTS, run_experiment
from repro.traces.bu import parse_bu_log
from repro.traces.canet import parse_canet_log
from repro.traces.profiles import PAPER_TRACES, load_paper_trace
from repro.traces.squid import parse_squid_log
from repro.traces.stats import TraceStats, compute_stats
from repro.util.fmt import ascii_table

__all__ = ["main"]

_PARSERS = {"squid": parse_squid_log, "bu": parse_bu_log, "canet": parse_canet_log}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="baps",
        description=(
            "Browsers-Aware Proxy Server — reproduction of Xiao, Zhang & Xu "
            "(IPDPS 2002). Runs the paper's tables and figures and custom "
            "simulations."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run experiments by id (or 'all')")
    run_p.add_argument("experiments", nargs="+", help="experiment ids or 'all'")
    run_p.add_argument(
        "--workers",
        "-j",
        type=int,
        default=0,
        metavar="N",
        help=(
            "fan sweep cells out over N worker processes (0 = serial "
            "in-process, -1 = all CPUs); results are bit-identical "
            "regardless of N"
        ),
    )
    run_p.add_argument(
        "--timing",
        action="store_true",
        help="print the sweep timing report (cells/sec, speedup vs serial)",
    )
    run_p.add_argument(
        "--profile",
        action="store_true",
        help=(
            "collect per-phase replay timers into the timing report "
            "(implies --timing; serial runs only — ignored with --workers)"
        ),
    )
    run_p.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "extra attempts per sweep cell after a crash or timeout "
            "(capped exponential backoff between attempts; results are "
            "attempt-independent)"
        ),
    )
    run_p.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock budget; an overrunning cell is retried or quarantined",
    )
    run_p.add_argument(
        "--journal",
        metavar="PATH",
        help=(
            "append a JSONL run journal (one record per attempt plus "
            "completed-cell results) usable later with --resume"
        ),
    )
    run_p.add_argument(
        "--resume",
        metavar="PATH",
        help=(
            "restore cells already completed in a prior run's journal "
            "instead of re-simulating them (bit-identical results)"
        ),
    )
    run_p.add_argument(
        "--max-holder-retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "holder failover budget forwarded to experiments that model "
            "churn (e.g. 'availability'): extra replicas probed before a "
            "failed remote hit escalates to the origin"
        ),
    )
    run_p.add_argument(
        "--corruption-rate",
        type=float,
        default=None,
        metavar="P",
        help=(
            "probability a remote transfer fails the integrity check, "
            "forwarded to experiments that accept it"
        ),
    )
    run_p.add_argument(
        "--proxies",
        default=None,
        metavar="N[,N...]",
        help=(
            "cooperating proxy counts for the federation sweep "
            "(e.g. '2,4'); forwarded to experiments that accept it"
        ),
    )
    run_p.add_argument(
        "--digest-period",
        default=None,
        metavar="T[,T...]",
        help=(
            "inter-proxy digest exchange periods in virtual seconds for "
            "the federation sweep (e.g. '900,3600'; 0 = fresh-digest "
            "oracle)"
        ),
    )
    run_p.add_argument(
        "--interproxy-bandwidth",
        type=float,
        default=None,
        metavar="BPS",
        help="modeled inter-proxy link bandwidth in bits/s (federation sweep)",
    )
    run_p.add_argument(
        "--partition-length",
        default=None,
        metavar="S[,S...]",
        help=(
            "inter-proxy partition window lengths in virtual seconds for "
            "the chaos sweep (one mid-trace window per length; default "
            "scales with the trace span)"
        ),
    )
    run_p.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="N",
        help=(
            "extra seed folded into every chaos cell's stochastic "
            "sub-streams (chaos sweep; explicit windows stay RNG-free)"
        ),
    )
    run_p.add_argument(
        "--polluter-fraction",
        default=None,
        metavar="F[,F...]",
        help=(
            "polluter client fractions for the stress sweep "
            "(e.g. '0.1,0.2')"
        ),
    )
    run_p.add_argument(
        "--quarantine-threshold",
        default=None,
        metavar="N[,N...]",
        help=(
            "integrity-failure counts before a holder is quarantined, "
            "for the stress sweep (e.g. '1,3')"
        ),
    )
    run_p.add_argument(
        "--flash-crowd",
        action="store_true",
        help=(
            "replay the stress sweep on a flash-crowd surge trace "
            "(hottest document's popularity multiplied over the middle "
            "third of the trace)"
        ),
    )
    run_p.add_argument(
        "--mrc",
        action="store_true",
        help=(
            "derive sweep grids from a one-pass miss-ratio-curve "
            "analysis instead of one replay per cell (fig2/fig3; exact "
            "for pure-LRU organizations, documented approximation "
            "elsewhere; incompatible with the fault-tolerance flags)"
        ),
    )
    run_p.add_argument(
        "--sample-rate",
        type=float,
        default=None,
        metavar="R",
        help=(
            "run the --mrc pass on a deterministic spatial sample "
            "keeping fraction R of documents (0 < R <= 1), with reuse "
            "distances rescaled by 1/R"
        ),
    )
    run_p.add_argument(
        "--sample-seed",
        type=int,
        default=None,
        metavar="N",
        help="seed for the --sample-rate document hash (default 0)",
    )

    sub.add_parser("traces", help="print trace characteristics (Table 1)")

    sim = sub.add_parser("simulate", help="run one custom simulation")
    src = sim.add_mutually_exclusive_group()
    src.add_argument(
        "--trace",
        default="NLANR-uc",
        help=f"paper trace name ({', '.join(sorted(PAPER_TRACES))})",
    )
    src.add_argument("--log", help="path to a real access log instead")
    sim.add_argument(
        "--format",
        choices=sorted(_PARSERS),
        default="squid",
        help="log format for --log",
    )
    sim.add_argument(
        "--organization",
        "-o",
        default="browsers-aware-proxy-server",
        help="one of: " + ", ".join(o.value for o in Organization),
    )
    sim.add_argument("--proxy-frac", type=float, default=0.10,
                     help="proxy cache as a fraction of the infinite cache size")
    sim.add_argument("--browser-sizing", choices=("minimum", "average"),
                     default="minimum")
    sim.add_argument("--policy", default="lru",
                     help="replacement policy (lru, fifo, lfu, size, gdsf)")
    sim.add_argument("--index-kind", choices=("exact", "bloom"), default="exact")
    sim.add_argument(
        "--churn",
        action="store_true",
        help=(
            "model session-based client churn: holders alternate between "
            "on and off sessions instead of being always reachable"
        ),
    )
    sim.add_argument(
        "--churn-on",
        type=float,
        default=1800.0,
        metavar="SECONDS",
        help="mean online-session length for --churn (default: 1800)",
    )
    sim.add_argument(
        "--churn-off",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="mean offline-session length for --churn (default: 600)",
    )
    sim.add_argument(
        "--churn-distribution",
        choices=("exponential", "pareto"),
        default="exponential",
        help="session-length distribution for --churn",
    )
    sim.add_argument(
        "--max-holder-retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "failover budget: extra index replicas probed after the chosen "
            "holder fails (offline, stale, or corrupt) before falling back "
            "to the origin"
        ),
    )
    sim.add_argument(
        "--corruption-rate",
        type=float,
        default=0.0,
        metavar="P",
        help=(
            "probability a remote-browser transfer arrives corrupted and is "
            "rejected by the integrity check (retransmitted from the next "
            "holder or the origin)"
        ),
    )
    crash = sim.add_mutually_exclusive_group()
    crash.add_argument(
        "--proxy-crash-rate",
        type=float,
        default=None,
        metavar="RATE",
        help=(
            "proxy crashes per virtual second (exponential inter-crash "
            "gaps): each crash empties the proxy cache and destroys the "
            "in-memory browser index"
        ),
    )
    crash.add_argument(
        "--proxy-crash-at",
        metavar="T1,T2,...",
        help=(
            "explicit comma-separated proxy crash times (virtual seconds); "
            "deterministic alternative to --proxy-crash-rate"
        ),
    )
    sim.add_argument(
        "--checkpoint-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "snapshot the browser index every SECONDS of virtual time "
            "(periodic full + incremental checkpoints); after a crash the "
            "index restores from the last consistent snapshot"
        ),
    )
    sim.add_argument(
        "--proxies",
        type=int,
        default=None,
        metavar="N",
        help=(
            "shard the clients over N cooperating proxies exchanging "
            "bloom digests (federation model); required by the "
            "partition flags below"
        ),
    )
    sim.add_argument(
        "--digest-period",
        type=float,
        default=900.0,
        metavar="SECONDS",
        help=(
            "inter-proxy digest exchange period for --proxies "
            "(0 = fresh-digest oracle; default: 900)"
        ),
    )
    sim.add_argument(
        "--partition-at",
        metavar="T1,T2,...",
        help=(
            "open an inter-proxy partition at each listed virtual time "
            "(the federation splits into two halves; heals after "
            "--partition-length seconds)"
        ),
    )
    sim.add_argument(
        "--partition-length",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="length of each --partition-at window (default: 600)",
    )
    sim.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="N",
        help=(
            "compose the failure flags through a seeded chaos plan: "
            "folds N into every stochastic sub-stream's seed"
        ),
    )
    sim.add_argument(
        "--check-invariants",
        type=int,
        default=0,
        metavar="N",
        help=(
            "assert the engine's conservation laws every N requests "
            "mid-replay (0 = off); a violated invariant aborts at the "
            "violating request"
        ),
    )
    sim.add_argument(
        "--reannounce-rate",
        type=float,
        default=1.0,
        metavar="RATE",
        help=(
            "clients per virtual second that re-announce their browser-cache "
            "contents after a proxy restart (default: 1.0)"
        ),
    )

    prof = sub.add_parser(
        "profile",
        help="time the replay hot path per phase (opt-in instrumentation)",
    )
    prof_src = prof.add_mutually_exclusive_group()
    prof_src.add_argument(
        "--trace",
        default="NLANR-uc",
        help=f"paper trace name ({', '.join(sorted(PAPER_TRACES))})",
    )
    prof_src.add_argument("--log", help="path to a real access log instead")
    prof.add_argument(
        "--format",
        choices=sorted(_PARSERS),
        default="squid",
        help="log format for --log",
    )
    prof.add_argument(
        "--organization",
        "-o",
        default="browsers-aware-proxy-server",
        help="one of: " + ", ".join(o.value for o in Organization) + ", or 'all'",
    )
    prof.add_argument("--proxy-frac", type=float, default=0.10,
                      help="proxy cache as a fraction of the infinite cache size")
    prof.add_argument("--browser-sizing", choices=("minimum", "average"),
                      default="minimum")
    prof.add_argument("--policy", default="lru",
                      help="replacement policy (lru, fifo, lfu, size, gdsf)")
    prof.add_argument("--index-kind", choices=("exact", "bloom"), default="exact")
    prof.add_argument("--repeat", type=int, default=1, metavar="N",
                      help="replay N times, accumulating timers (default: 1)")
    prof.add_argument("--json", action="store_true",
                      help="emit a machine-readable JSON summary instead")

    parse_p = sub.add_parser("parse", help="print statistics for an access log")
    parse_p.add_argument("log", help="path to the log file")
    parse_p.add_argument("--format", choices=sorted(_PARSERS), default="squid")

    an = sub.add_parser(
        "analyze", help="workload analysis (Zipf, locality, sizes, skew)"
    )
    an_src = an.add_mutually_exclusive_group()
    an_src.add_argument("--trace", default="NLANR-uc")
    an_src.add_argument("--log", help="path to a real access log instead")
    an.add_argument("--format", choices=sorted(_PARSERS), default="squid")

    rep = sub.add_parser(
        "report", help="collect benchmarks/results/ into one Markdown report"
    )
    rep.add_argument(
        "--results-dir",
        default="benchmarks/results",
        help="directory of saved result tables",
    )
    rep.add_argument("--output", help="write to a file instead of stdout")
    return parser


def _load_trace(args) -> "object":
    if args.log:
        return _PARSERS[args.format](args.log, name=args.log)
    return load_paper_trace(args.trace)


def _cmd_simulate(args) -> int:
    trace = _load_trace(args)
    if len(trace) == 0:
        print("trace is empty after filtering", file=sys.stderr)
        return 1
    organization = Organization.from_name(args.organization)
    failure_kwargs = {}
    if args.churn:
        from repro.core.churn import ChurnModel

        failure_kwargs["churn"] = ChurnModel(
            mean_on_seconds=args.churn_on,
            mean_off_seconds=args.churn_off,
            distribution=args.churn_distribution,
        )
    if args.proxy_crash_rate is not None or args.proxy_crash_at is not None:
        from repro.core.proxy_faults import ProxyFaultModel

        crash_times = None
        if args.proxy_crash_at is not None:
            try:
                crash_times = tuple(
                    float(t) for t in args.proxy_crash_at.split(",") if t.strip()
                )
            except ValueError:
                print(
                    "--proxy-crash-at must be comma-separated numbers",
                    file=sys.stderr,
                )
                return 2
        failure_kwargs["proxy_faults"] = ProxyFaultModel(
            crash_rate=args.proxy_crash_rate or 0.0,
            crash_times=crash_times,
        )
        failure_kwargs["reannounce_rate"] = args.reannounce_rate
    if args.checkpoint_interval is not None:
        from repro.index.checkpoint import CheckpointPolicy

        failure_kwargs["checkpoint"] = CheckpointPolicy(
            interval=args.checkpoint_interval
        )
    link_faults = None
    if args.partition_at is not None:
        if args.proxies is None or args.proxies < 2:
            print(
                "--partition-at needs a federation to split: set --proxies "
                "to 2 or more",
                file=sys.stderr,
            )
            return 2
        from repro.federation.linkfaults import LinkFaultModel
        from repro.util.validation import check_partition_windows

        try:
            starts = tuple(
                float(t) for t in args.partition_at.split(",") if t.strip()
            )
            windows = tuple(
                (t, t + args.partition_length) for t in sorted(starts)
            )
            check_partition_windows(windows, span=trace.duration)
            link_faults = LinkFaultModel(partition_windows=windows)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.proxies is not None:
        from repro.core.config import FederationConfig

        failure_kwargs["federation"] = FederationConfig(
            n_proxies=args.proxies,
            digest_period=args.digest_period,
            link_faults=link_faults,
        )
    if args.chaos_seed is not None or args.check_invariants:
        from repro.core.chaos import ChaosPlan

        failure_kwargs["chaos"] = ChaosPlan(
            seed=args.chaos_seed,
            check_invariants_every=args.check_invariants,
        )
    config = SimulationConfig.relative(
        trace,
        proxy_frac=args.proxy_frac,
        browser_sizing=args.browser_sizing,
        proxy_policy=args.policy,
        browser_policy=args.policy,
        index_kind=args.index_kind,
        max_holder_retries=args.max_holder_retries,
        corruption_rate=args.corruption_rate,
        **failure_kwargs,
    )
    t0 = time.perf_counter()
    result = simulate(trace, organization, config)
    elapsed = time.perf_counter() - t0
    bd = result.breakdown()
    rows = [
        ["trace", trace.name],
        ["requests", f"{result.n_requests:,}"],
        ["organization", result.organization],
        ["proxy cache", f"{config.proxy_capacity / 1e6:.1f} MB"],
        ["browser cache (each)", f"{config.browser_capacity / 1e3:.0f} KB"],
        ["hit ratio", f"{result.hit_ratio:.2%}"],
        ["byte hit ratio", f"{result.byte_hit_ratio:.2%}"],
        ["local-browser share", f"{bd.local_browser:.2%}"],
        ["proxy share", f"{bd.proxy:.2%}"],
        ["remote-browser share", f"{bd.remote_browser:.2%}"],
        ["communication overhead", f"{result.overhead.communication_fraction:.3%}"],
        ["simulated in", f"{elapsed:.2f}s"],
    ]
    if result.holder_unavailable:
        rows.insert(-1, ["offline-holder probes", f"{result.holder_unavailable:,}"])
    if result.failover_attempts:
        rows.insert(-1, ["failover probes", f"{result.failover_attempts:,}"])
        rows.insert(-1, ["failover-rescued hits", f"{result.failover_rescued_hits:,}"])
    if result.integrity_failures:
        rows.insert(-1, ["integrity retries", f"{result.integrity_failures:,}"])
    if result.proxy_crashes:
        rows.insert(-1, ["proxy crashes", f"{result.proxy_crashes:,}"])
        rows.insert(-1, ["recovery time", f"{result.recovery_time:,.0f}s"])
        rows.insert(-1, ["degraded-window requests",
                         f"{result.degraded_window_requests:,}"])
        rows.insert(-1, ["hits lost to recovery",
                         f"{result.hits_lost_to_recovery:,}"])
    if result.checkpoint_bytes_written:
        rows.insert(-1, ["checkpoint bytes written",
                         f"{result.checkpoint_bytes_written:,}"])
    if result.interproxy_hits:
        rows.insert(-1, ["inter-proxy hits", f"{result.interproxy_hits:,}"])
    if result.partition_windows:
        rows.insert(-1, ["partition windows", f"{result.partition_windows:,}"])
        rows.insert(-1, ["digest exchanges lost",
                         f"{result.digest_exchanges_lost:,}"])
        rows.insert(-1, ["wasted partition time",
                         f"{result.wasted_partition_time:,.2f}s"])
        rows.insert(-1, ["anti-entropy bytes", f"{result.antientropy_bytes:,}"])
    print(ascii_table(["quantity", "value"], rows, title="simulation result"))
    return 0


def _cmd_profile(args) -> int:
    import json

    from repro.util.profiling import ReplayProfile

    trace = _load_trace(args)
    if len(trace) == 0:
        print("trace is empty after filtering", file=sys.stderr)
        return 1
    if args.repeat < 1:
        print("--repeat must be >= 1", file=sys.stderr)
        return 2
    if args.organization == "all":
        organizations = list(Organization)
    else:
        organizations = [Organization.from_name(args.organization)]
    config = SimulationConfig.relative(
        trace,
        proxy_frac=args.proxy_frac,
        browser_sizing=args.browser_sizing,
        proxy_policy=args.policy,
        browser_policy=args.policy,
        index_kind=args.index_kind,
    )
    summaries = {}
    for organization in organizations:
        profile = ReplayProfile()
        for _ in range(args.repeat):
            simulate(trace, organization, config, profile=profile)
        if args.json:
            summaries[organization.value] = profile.as_dict()
        else:
            print(f"{organization.value} — {trace.name}")
            print(profile.render())
    if args.json:
        print(json.dumps({"trace": trace.name, "organizations": summaries}, indent=2))
    return 0


def _cmd_parse(args) -> int:
    from repro.traces import ParseReport

    report = ParseReport()
    trace = _PARSERS[args.format](args.log, name=args.log, report=report)
    stats = compute_stats(trace)
    print(ascii_table(TraceStats.headers(), [stats.as_row()], title="trace statistics"))
    if not report.ok:
        print(report.summary(), file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for name in sorted(ALL_EXPERIMENTS):
            print(name)
        return 0

    if args.command == "traces":
        print(run_experiment("table1").render())
        return 0

    if args.command == "simulate":
        return _cmd_simulate(args)

    if args.command == "profile":
        return _cmd_profile(args)

    if args.command == "parse":
        return _cmd_parse(args)

    if args.command == "analyze":
        from repro.analysis import analyze_trace

        trace = _load_trace(args)
        if len(trace) == 0:
            print("trace is empty after filtering", file=sys.stderr)
            return 1
        print(analyze_trace(trace).render())
        return 0

    if args.command == "report":
        from repro.experiments.export import atomic_write_text, collect_report

        text = collect_report(args.results_dir)
        if args.output:
            atomic_write_text(args.output, text)
            print(f"wrote {args.output}")
        else:
            print(text)
        return 0

    names = args.experiments
    if names == ["all"]:
        names = sorted(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(sorted(ALL_EXPERIMENTS))}", file=sys.stderr)
        return 2

    workers = None if args.workers < 0 else args.workers
    if args.profile:
        args.timing = True
    if args.sample_rate is not None and not args.mrc:
        print("--sample-rate requires --mrc (it samples the one-pass "
              "analysis, not the replay engine)", file=sys.stderr)
        return 2
    if args.mrc and any((args.retries, args.cell_timeout, args.journal,
                         args.resume, args.profile)):
        print("--mrc computes the whole grid in one in-process pass; the "
              "per-cell fault-tolerance flags (--retries, --cell-timeout, "
              "--journal, --resume, --profile) do not apply", file=sys.stderr)
        return 2
    options = None
    if any((args.retries, args.cell_timeout, args.journal, args.resume,
            args.profile)):
        from repro.core.parallel import EngineOptions

        options = EngineOptions(
            retries=args.retries,
            cell_timeout=args.cell_timeout,
            journal=args.journal,
            resume=args.resume,
            profile=args.profile,
        )
    def _csv(raw: str | None, cast):
        if raw is None:
            return None
        return tuple(cast(part) for part in raw.split(",") if part.strip())

    for name in names:
        t0 = time.perf_counter()
        result = run_experiment(
            name,
            workers=workers,
            options=options,
            max_holder_retries=args.max_holder_retries,
            corruption_rate=args.corruption_rate,
            proxy_counts=_csv(args.proxies, int),
            digest_periods=_csv(args.digest_period, float),
            interproxy_bandwidth=args.interproxy_bandwidth,
            polluter_fractions=_csv(args.polluter_fraction, float),
            quarantine_thresholds=_csv(args.quarantine_threshold, int),
            flash_crowd=args.flash_crowd or None,
            partition_lengths=_csv(args.partition_length, float),
            chaos_seed=args.chaos_seed,
            mrc=args.mrc or None,
            sample_rate=args.sample_rate,
            sample_seed=args.sample_seed,
        )
        elapsed = time.perf_counter() - t0
        print(f"== {name} ({elapsed:.1f}s) " + "=" * max(0, 60 - len(name)))
        print(result.render())
        if args.timing:
            sweep = getattr(result, "sweep", None)
            if sweep is not None and getattr(sweep, "timing", None) is not None:
                print()
                print(sweep.timing.render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
