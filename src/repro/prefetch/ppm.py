"""Order-k PPM (Prediction by Partial Matching) next-request predictor.

A context trie stores, for every recent access context of length 1..k,
the observed successor counts.  Predicting after context
``(a, b)`` blends the order-2 node (successors of "a then b") with the
order-1 node (successors of "b"), preferring higher orders — the
structure used by every PPM web-prefetching study of the era.

The trie is trained online, one access at a time, per client stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_fraction, check_positive

__all__ = ["PPMPredictor", "Prediction"]


@dataclass(frozen=True)
class Prediction:
    """One predicted next document."""

    doc: int
    confidence: float
    order: int


class _Node:
    __slots__ = ("successors", "total")

    def __init__(self) -> None:
        self.successors: dict[int, int] = {}
        self.total = 0

    def observe(self, doc: int) -> None:
        self.successors[doc] = self.successors.get(doc, 0) + 1
        self.total += 1


class PPMPredictor:
    """Per-client order-k PPM model over document ids."""

    def __init__(self, order: int = 2, max_contexts: int = 200_000) -> None:
        check_positive("order", order)
        check_positive("max_contexts", max_contexts)
        self.order = int(order)
        self.max_contexts = int(max_contexts)
        #: context tuple (length 1..k) -> successor counts
        self._contexts: dict[tuple[int, ...], _Node] = {}
        #: per-client recent access window (length <= k)
        self._history: dict[int, list[int]] = {}
        self.n_observations = 0

    def observe(self, client: int, doc: int) -> None:
        """Feed one access of *client* to *doc* into the model."""
        history = self._history.setdefault(client, [])
        for length in range(1, min(self.order, len(history)) + 1):
            context = tuple(history[-length:])
            node = self._contexts.get(context)
            if node is None:
                if len(self._contexts) >= self.max_contexts:
                    continue  # bounded memory: stop growing, keep counting
                node = self._contexts[context] = _Node()
            node.observe(doc)
        history.append(doc)
        if len(history) > self.order:
            del history[: len(history) - self.order]
        self.n_observations += 1

    def predict(
        self,
        client: int,
        threshold: float = 0.25,
        max_predictions: int = 2,
    ) -> list[Prediction]:
        """Predict the next documents for *client*.

        Returns up to *max_predictions* documents whose conditional
        probability exceeds *threshold*, preferring the longest
        matching context (higher-order predictions shadow lower-order
        ones for the same document).
        """
        check_fraction("threshold", threshold)
        history = self._history.get(client)
        if not history:
            return []
        picked: dict[int, Prediction] = {}
        for length in range(min(self.order, len(history)), 0, -1):
            context = tuple(history[-length:])
            node = self._contexts.get(context)
            if node is None or node.total == 0:
                continue
            for doc, count in node.successors.items():
                confidence = count / node.total
                if confidence >= threshold and doc not in picked:
                    picked[doc] = Prediction(doc=doc, confidence=confidence, order=length)
        ranked = sorted(picked.values(), key=lambda p: (-p.order, -p.confidence))
        return ranked[:max_predictions]

    @property
    def n_contexts(self) -> int:
        return len(self._contexts)

    def footprint_entries(self) -> int:
        """Total successor entries across contexts (a memory proxy)."""
        return sum(len(n.successors) for n in self._contexts.values())
