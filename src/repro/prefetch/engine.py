"""Prefetching simulator: proxy-and-local-browser plus PPM pushes.

After every served request the proxy consults the PPM model and pushes
confident predictions into the requesting client's browser cache (if
not already cached there).  A prefetch that the proxy itself holds
costs only a LAN transfer; otherwise it costs a WAN fetch — the
bandwidth gamble at the heart of prefetching.

Accounting distinguishes *useful* prefetches (the client's next
accesses hit them) from *wasted* ones (evicted or never referenced),
and reports the extra WAN bytes prefetching moved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache import make_cache
from repro.core.events import HitLocation
from repro.core.metrics import SimulationResult
from repro.network.ethernet import EthernetModel
from repro.network.latency import MemoryDiskModel
from repro.network.topology import WANModel
from repro.prefetch.ppm import PPMPredictor
from repro.traces.record import Trace
from repro.util.validation import check_fraction, check_non_negative, check_positive

__all__ = ["PrefetchConfig", "PrefetchStats", "PrefetchSimulator", "simulate_prefetch"]


@dataclass(frozen=True)
class PrefetchConfig:
    """Prefetching on top of proxy-and-local-browser."""

    proxy_capacity: int
    browser_capacity: int
    order: int = 2
    confidence_threshold: float = 0.3
    max_prefetches_per_request: int = 2
    policy: str = "lru"
    lan: EthernetModel = field(default_factory=EthernetModel)
    wan: WANModel = field(default_factory=WANModel)
    storage: MemoryDiskModel = field(default_factory=MemoryDiskModel)

    def __post_init__(self) -> None:
        check_non_negative("proxy_capacity", self.proxy_capacity)
        check_non_negative("browser_capacity", self.browser_capacity)
        check_positive("order", self.order)
        check_fraction("confidence_threshold", self.confidence_threshold)
        check_non_negative("max_prefetches_per_request", self.max_prefetches_per_request)


@dataclass
class PrefetchStats:
    """What the prefetcher did and whether it paid off."""

    issued: int = 0
    issued_bytes: int = 0
    #: prefetched objects later served from the browser cache.
    useful: int = 0
    useful_bytes: int = 0
    #: prefetches fetched over the WAN (not already at the proxy).
    wan_fetches: int = 0
    wan_bytes: int = 0
    #: predictions skipped because the object was already cached.
    redundant: int = 0

    @property
    def precision(self) -> float:
        """Fraction of issued prefetches that were eventually used."""
        return self.useful / self.issued if self.issued else 0.0


class PrefetchSimulator:
    """Proxy-and-local-browser with PPM prefetch pushes."""

    def __init__(self, trace: Trace, config: PrefetchConfig) -> None:
        self.trace = trace
        self.config = config
        n_clients = int(trace.clients.max()) + 1 if len(trace) else 1
        self.browsers = [
            make_cache(config.policy, config.browser_capacity) for _ in range(n_clients)
        ]
        self.proxy = make_cache(config.policy, config.proxy_capacity)
        self.predictor = PPMPredictor(order=config.order)
        self.stats = PrefetchStats()
        #: (client, doc) pairs sitting in a browser due to a prefetch
        #: and not yet accessed.
        self._pending: set[tuple[int, int]] = set()
        #: last known (size, version) per doc, for prefetchable bodies.
        self._known: dict[int, tuple[int, int]] = {}
        self.result = SimulationResult(
            trace_name=trace.name, organization="plb+ppm-prefetch"
        )

    # -- replay --------------------------------------------------------------

    def run(self) -> SimulationResult:
        config = self.config
        result = self.result
        overhead = result.overhead
        browsers = self.browsers
        proxy = self.proxy
        predictor = self.predictor
        stats = self.stats
        lan = config.lan
        wan = config.wan
        disk_time = config.storage.disk_time
        threshold = config.confidence_threshold
        fanout = config.max_prefetches_per_request

        for t, c, d, s, v in self.trace.iter_rows():
            browser = browsers[c]
            entry = browser.get(d)
            if entry is not None and entry.version == v:
                if (c, d) in self._pending:
                    self._pending.discard((c, d))
                    stats.useful += 1
                    stats.useful_bytes += s
                result.record(HitLocation.LOCAL_BROWSER, s)
                overhead.local_hit_time += disk_time(s)
            else:
                entry = proxy.get(d)
                if entry is not None and entry.version == v:
                    result.record(HitLocation.PROXY, s)
                    overhead.proxy_hit_time += disk_time(s) + lan.transfer_time(s)
                    browser.put(d, s, v)
                else:
                    result.record(HitLocation.ORIGIN, s)
                    overhead.origin_miss_time += wan.fetch_time(s) + lan.transfer_time(s)
                    proxy.put(d, s, v)
                    browser.put(d, s, v)
                self._pending.discard((c, d))

            self._known[d] = (s, v)
            predictor.observe(c, d)

            # push predictions into the client's browser
            if fanout == 0:
                continue
            for pred in predictor.predict(c, threshold=threshold, max_predictions=fanout):
                pd = pred.doc
                known = self._known.get(pd)
                if known is None:
                    continue
                ps, pv = known
                held = browser.peek(pd)
                if held is not None and held.version == pv:
                    stats.redundant += 1
                    continue
                stats.issued += 1
                stats.issued_bytes += ps
                at_proxy = proxy.peek(pd)
                if at_proxy is not None and at_proxy.version == pv:
                    overhead.remote_transfer_time += lan.transfer_time(ps)
                else:
                    stats.wan_fetches += 1
                    stats.wan_bytes += ps
                    overhead.origin_miss_time += wan.fetch_time(ps)
                    proxy.put(pd, ps, pv)
                evicted_self = browser.put(pd, ps, pv)
                if pd in browser:
                    self._pending.add((c, pd))
                for gone in evicted_self:
                    self._pending.discard((c, gone))

        return result



def simulate_prefetch(trace: Trace, config: PrefetchConfig) -> tuple[SimulationResult, PrefetchStats]:
    """One-shot prefetching simulation; returns (result, prefetch stats)."""
    sim = PrefetchSimulator(trace, config)
    result = sim.run()
    return result, sim.stats
