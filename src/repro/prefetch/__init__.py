"""Web prefetching substrate (PPM prediction).

The browsers-aware proxy's authors followed this paper with
popularity-based PPM prefetching (Xiao/Zhang group, ICPP 2002): a proxy
that *predicts* upcoming requests from per-client access context and
pushes documents into browser caches ahead of time.  This package
implements the classic order-k PPM (Prediction by Partial Matching)
predictor and a prefetching simulator, so prefetching — the other way
to use idle browser cache capacity — can be compared against BAPS's
peer sharing.
"""

from repro.prefetch.ppm import PPMPredictor, Prediction
from repro.prefetch.engine import (
    PrefetchConfig,
    PrefetchStats,
    PrefetchSimulator,
    simulate_prefetch,
)

__all__ = [
    "PPMPredictor",
    "Prediction",
    "PrefetchConfig",
    "PrefetchStats",
    "PrefetchSimulator",
    "simulate_prefetch",
]
