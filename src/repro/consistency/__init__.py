"""Cache consistency (coherence) policies.

The paper side-steps consistency by counting any hit on a size-changed
document as a miss — implicitly assuming perfect, free coherence.  Real
1990s/2000s proxies used *expiration-based* consistency: a copy is
served without question while its TTL holds, and revalidated against
the origin (an If-Modified-Since request costing a WAN round trip)
once it expires.  The cost of that realism is twofold: *stale
deliveries* (a fresh-by-TTL copy that has actually changed) and
*validation traffic*.

This package provides the classic policies and the accounting; the
engine applies them to browser and proxy hits when
``SimulationConfig.consistency`` is set (``None`` keeps the paper's
perfect-coherence behaviour).
"""

from repro.consistency.policies import (
    ConsistencyPolicy,
    FixedTTLPolicy,
    AdaptiveTTLPolicy,
    AlwaysValidatePolicy,
    ConsistencyStats,
)

__all__ = [
    "ConsistencyPolicy",
    "FixedTTLPolicy",
    "AdaptiveTTLPolicy",
    "AlwaysValidatePolicy",
    "ConsistencyStats",
]
