"""Expiration-based consistency policies.

A policy answers one question: given that a copy was fetched (or last
validated) at time *t* and the document was last modified at *m*, until
when may the copy be served without revalidation?

* :class:`FixedTTLPolicy` — a constant freshness lifetime.
* :class:`AdaptiveTTLPolicy` — the Alex protocol / Squid "LM-factor"
  heuristic: documents that haven't changed for a long time are
  unlikely to change soon, so the lifetime is a fraction of the
  document's age at fetch time, clamped to [min_ttl, max_ttl].
* :class:`AlwaysValidatePolicy` — lifetime zero; every hit revalidates
  (strong consistency at maximal validation traffic).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.util.validation import check_fraction, check_non_negative

__all__ = [
    "ConsistencyPolicy",
    "FixedTTLPolicy",
    "AdaptiveTTLPolicy",
    "AlwaysValidatePolicy",
    "ConsistencyStats",
]


class ConsistencyPolicy(ABC):
    """Decides freshness lifetimes for cached copies."""

    @abstractmethod
    def expires_at(self, now: float, last_modified: float) -> float:
        """Absolute time until which a copy fetched/validated at *now*
        (document last modified at *last_modified*) is fresh."""

    def name(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class FixedTTLPolicy(ConsistencyPolicy):
    """Fresh for a constant *ttl* seconds after fetch/validation."""

    ttl: float = 3600.0

    def __post_init__(self) -> None:
        check_non_negative("ttl", self.ttl)

    def expires_at(self, now: float, last_modified: float) -> float:
        return now + self.ttl

    def name(self) -> str:
        return f"fixed-ttl({self.ttl:g}s)"


@dataclass(frozen=True)
class AdaptiveTTLPolicy(ConsistencyPolicy):
    """Alex-protocol adaptive TTL: lifetime = factor × document age."""

    factor: float = 0.2
    min_ttl: float = 60.0
    max_ttl: float = 86_400.0

    def __post_init__(self) -> None:
        check_fraction("factor", self.factor)
        check_non_negative("min_ttl", self.min_ttl)
        if self.max_ttl < self.min_ttl:
            raise ValueError(
                f"max_ttl ({self.max_ttl}) must be >= min_ttl ({self.min_ttl})"
            )

    def expires_at(self, now: float, last_modified: float) -> float:
        age = max(0.0, now - last_modified)
        lifetime = min(self.max_ttl, max(self.min_ttl, self.factor * age))
        return now + lifetime

    def name(self) -> str:
        return f"adaptive-ttl({self.factor:g})"


@dataclass(frozen=True)
class AlwaysValidatePolicy(ConsistencyPolicy):
    """Every hit revalidates with the origin (strong consistency)."""

    def expires_at(self, now: float, last_modified: float) -> float:
        return now  # already expired

    def name(self) -> str:
        return "always-validate"


@dataclass
class ConsistencyStats:
    """What expiration-based coherence costs and leaks."""

    #: hits served while fresh-by-policy but actually outdated.
    stale_deliveries: int = 0
    stale_bytes: int = 0
    #: If-Modified-Since round trips to the origin.
    validations: int = 0
    #: validations that confirmed the copy (slow hits).
    validated_hits: int = 0
    #: validations that found the copy outdated (turned into misses).
    validation_misses: int = 0

    @property
    def validation_hit_ratio(self) -> float:
        return self.validated_hits / self.validations if self.validations else 0.0
