"""Peak-memory observability without external dependencies.

Million-client streaming replays are memory-bound, not time-bound, so
the sweep harness reports the high-water mark of resident set size
alongside wall-clock timing.  Linux exposes this two ways:

* ``resource.getrusage(RUSAGE_SELF).ru_maxrss`` — kibibytes on Linux
  (bytes on macOS, hence the platform scale factor), and
* ``/proc/self/status`` ``VmHWM`` — used as a cross-check/fallback.

Both report a per-process lifetime maximum: it never decreases, so a
cell's *own* peak can only be bounded from above in a reused worker.
The harness therefore records the max across processes, which is the
quantity a capacity planner needs ("how big a box replays this
sweep"), and optionally supplements it with :mod:`tracemalloc` deltas
for allocator-level attribution.
"""

from __future__ import annotations

import sys

__all__ = ["peak_rss_bytes", "tracemalloc_peak_bytes"]

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None

#: ru_maxrss unit: kibibytes on Linux, bytes on macOS/BSD.
_RU_MAXRSS_SCALE = 1 if sys.platform == "darwin" else 1024


def _proc_vm_hwm_bytes() -> int:
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return 0


def peak_rss_bytes() -> int:
    """This process's lifetime peak resident set size, in bytes.

    Returns 0 when the platform exposes neither ``getrusage`` nor
    ``/proc/self/status`` (the harness then simply omits the figure).
    """
    peak = 0
    if resource is not None:
        try:
            peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _RU_MAXRSS_SCALE
        except (OSError, ValueError):  # pragma: no cover
            peak = 0
    if peak <= 0:
        peak = _proc_vm_hwm_bytes()
    return peak


def tracemalloc_peak_bytes() -> int | None:
    """Peak *traced* Python allocation since tracing started, or None
    when :mod:`tracemalloc` is not running.

    Unlike RSS this excludes the interpreter baseline and any memory
    not routed through the Python allocator, so it under-reports —
    but it attributes growth to Python objects, which is what the
    streaming-engine memory budget is written in.
    """
    import tracemalloc

    if not tracemalloc.is_tracing():
        return None
    return tracemalloc.get_traced_memory()[1]
