"""Unit constants and human-readable formatting.

The paper mixes decimal storage units (an "8 MB browser cache") with
binary block sizes (16-byte cache blocks, 4 KB disk pages).  We follow
the convention that trace/storage sizes are decimal (``MB = 1e6``) while
block-level constants are binary (``KIB = 1024``), and expose both.
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "KIB",
    "MIB",
    "GIB",
    "BITS_PER_BYTE",
    "format_bytes",
    "format_duration",
    "parse_size",
]

KB = 10**3
MB = 10**6
GB = 10**9

KIB = 2**10
MIB = 2**20
GIB = 2**30

BITS_PER_BYTE = 8

_DECIMAL_SUFFIXES = [("GB", GB), ("MB", MB), ("KB", KB), ("B", 1)]

_PARSE_SUFFIXES = {
    "b": 1,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "kib": KIB,
    "mib": MIB,
    "gib": GIB,
    "k": KB,
    "m": MB,
    "g": GB,
}


def format_bytes(n: float) -> str:
    """Render a byte count with an appropriate decimal suffix."""
    if n < 0:
        return "-" + format_bytes(-n)
    for suffix, scale in _DECIMAL_SUFFIXES:
        if n >= scale or scale == 1:
            value = n / scale
            if value == int(value):
                return f"{int(value)}{suffix}"
            return f"{value:.2f}{suffix}"
    return f"{n}B"  # pragma: no cover - unreachable


def format_duration(seconds: float) -> str:
    """Render a duration in the largest convenient unit."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60:
        return f"{seconds:.2f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}min"
    return f"{seconds / 3600:.2f}h"


def parse_size(text: str | int | float) -> int:
    """Parse a size such as ``"8MB"``, ``"1.5 GiB"``, or a raw number.

    Returns an integer byte count.  Raises :class:`ValueError` on
    malformed input.
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ValueError(f"size must be non-negative, got {text}")
        return int(text)
    s = text.strip().lower().replace(" ", "")
    idx = len(s)
    while idx > 0 and not (s[idx - 1].isdigit() or s[idx - 1] == "."):
        idx -= 1
    number, suffix = s[:idx], s[idx:]
    if not number:
        raise ValueError(f"cannot parse size {text!r}")
    scale = 1 if suffix == "" else _PARSE_SUFFIXES.get(suffix)
    if scale is None:
        raise ValueError(f"unknown size suffix {suffix!r} in {text!r}")
    value = float(number) * scale
    if value < 0:
        raise ValueError(f"size must be non-negative, got {text!r}")
    return int(value)
