"""Argument validation helpers shared across the library.

These raise early with a message naming the offending parameter, which
keeps the simulator configuration errors readable instead of surfacing
as deep numpy broadcasting failures.
"""

from __future__ import annotations

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_probability",
    "check_checkpoint_interval",
    "check_crash_rate",
    "check_crash_schedule",
    "check_reannounce_rate",
    "check_polluter_fraction",
    "check_quarantine",
    "check_partition_windows",
    "check_partition_schedule",
]


def check_positive(name: str, value: float) -> float:
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """A fraction in the closed interval [0, 1]."""
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Alias of :func:`check_fraction`, used where the value is a probability."""
    return check_fraction(name, value)


# -- proxy crash-recovery knobs ---------------------------------------------
#
# These name the ``baps`` CLI flag alongside the parameter, because the
# recovery knobs are most often set from the command line and "interval
# must be > 0" is useless when the user typed three different flags.


def check_checkpoint_interval(value: float) -> float:
    if not value > 0:
        raise ValueError(
            f"checkpoint interval (--checkpoint-interval) must be > 0 "
            f"seconds of virtual time, got {value!r}"
        )
    return value


def check_crash_rate(value: float) -> float:
    if value < 0:
        raise ValueError(
            f"proxy crash rate (--proxy-crash-rate) must be >= 0 crashes "
            f"per virtual second, got {value!r}"
        )
    return value


def check_crash_schedule(
    crash_rate: float, crash_times: tuple[float, ...] | None
) -> None:
    """A fault model draws crash times from a rate *or* takes an explicit
    list — silently combining the two would make the schedule ambiguous."""
    if crash_times is not None and crash_rate > 0:
        raise ValueError(
            "give either an explicit crash schedule (--proxy-crash-at) or a "
            "crash rate (--proxy-crash-rate), not both"
        )
    if crash_times is None and crash_rate == 0:
        raise ValueError(
            "a proxy fault model needs a crash source: set a crash rate "
            "(--proxy-crash-rate) or explicit crash times (--proxy-crash-at)"
        )
    if crash_times is not None:
        if not crash_times:
            raise ValueError(
                "explicit crash schedule (--proxy-crash-at) must name at "
                "least one crash time"
            )
        if any(t < 0 for t in crash_times):
            raise ValueError(
                f"crash times (--proxy-crash-at) must be >= 0, got {crash_times!r}"
            )


def check_reannounce_rate(value: float) -> float:
    if not value > 0:
        raise ValueError(
            f"re-announcement rate (--reannounce-rate) must be > 0 clients "
            f"per virtual second, got {value!r}"
        )
    return value


# -- adversarial-peer / quarantine knobs -------------------------------------


def check_polluter_fraction(value: float) -> float:
    if not (0.0 <= value <= 1.0):
        raise ValueError(
            f"polluter fraction (--polluter-fraction) must be in [0, 1], "
            f"got {value!r}"
        )
    return value


def check_partition_windows(
    windows: tuple[tuple[float, float], ...] | None,
    span: float | None = None,
) -> None:
    """Explicit inter-proxy partition windows must be well-formed:
    each ``(start, end)`` with ``0 <= start < end``, sorted, and
    non-overlapping; with *span* given, every window must begin inside
    the trace (a window entirely past the last request can never fire).
    """
    if windows is None:
        return
    if not windows:
        raise ValueError(
            "explicit partition windows (--partition-at + "
            "--partition-length) must name at least one window"
        )
    prev_end = None
    for start, end in windows:
        if start < 0:
            raise ValueError(
                f"partition window starts (--partition-at) must be >= 0, "
                f"got {start!r}"
            )
        if not end > start:
            raise ValueError(
                f"partition window length (--partition-length) must be > 0 "
                f"seconds of virtual time, got window ({start!r}, {end!r})"
            )
        if prev_end is not None and start < prev_end:
            raise ValueError(
                f"partition windows (--partition-at) must be ordered and "
                f"non-overlapping; window starting at {start!r} begins "
                f"before the previous window ends at {prev_end!r}"
            )
        prev_end = end
    if span is not None and span > 0 and windows[0][0] >= span:
        # Windows are sorted, so the first starting past the span means
        # they all do and no partition can ever fire.
        raise ValueError(
            f"every partition window (--partition-at) starts at or after "
            f"the trace span ({span!r}s); no partition can fire"
        )


def check_partition_schedule(
    rate: float,
    windows: tuple[tuple[float, float], ...] | None,
) -> None:
    """A link fault model takes explicit windows *or* draws them from a
    rate — silently combining the two would make the schedule ambiguous."""
    if rate < 0:
        raise ValueError(
            f"partition rate must be >= 0 partitions per virtual second, "
            f"got {rate!r}"
        )
    if windows is not None and rate > 0:
        raise ValueError(
            "give either explicit partition windows (--partition-at + "
            "--partition-length) or a partition rate (gaps drawn from the "
            "seeded stream, --chaos-seed), not both"
        )
    if windows is None and rate == 0:
        raise ValueError(
            "a link fault model needs a partition source: explicit windows "
            "(--partition-at + --partition-length) or a partition rate "
            "(seeded via --chaos-seed)"
        )


def check_quarantine(threshold: int, decay: float | None) -> None:
    """The quarantine threshold counts integrity failures (0 = defense
    off); a decay window only makes sense with the defense armed."""
    if threshold < 0 or threshold != int(threshold):
        raise ValueError(
            f"quarantine threshold (--quarantine-threshold) must be a "
            f"non-negative integer number of integrity failures, got "
            f"{threshold!r}"
        )
    if decay is not None:
        if threshold <= 0:
            raise ValueError(
                "quarantine_decay needs the defense armed: set a quarantine "
                "threshold (--quarantine-threshold) > 0"
            )
        if not decay > 0:
            raise ValueError(
                f"quarantine_decay must be > 0 seconds of virtual time, "
                f"got {decay!r}"
            )
