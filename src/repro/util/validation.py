"""Argument validation helpers shared across the library.

These raise early with a message naming the offending parameter, which
keeps the simulator configuration errors readable instead of surfacing
as deep numpy broadcasting failures.
"""

from __future__ import annotations

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_probability",
]


def check_positive(name: str, value: float) -> float:
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """A fraction in the closed interval [0, 1]."""
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Alias of :func:`check_fraction`, used where the value is a probability."""
    return check_fraction(name, value)
