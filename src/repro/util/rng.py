"""Deterministic random number generation helpers.

Every stochastic component in the library accepts either a seed or a
:class:`numpy.random.Generator`.  Centralising the conversion here keeps
experiments reproducible: the same seed always produces the same trace,
the same simulation outcome, and the same benchmark rows.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "derive_seed"]


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Accepts ``None`` (fresh OS entropy), an integer seed, or an existing
    generator (returned unchanged so callers can thread one generator
    through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Split *seed* into *n* independent child generators.

    Uses :class:`numpy.random.SeedSequence` spawning so children are
    statistically independent regardless of how many are requested.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
        children = seq.spawn(n)
    else:
        children = np.random.SeedSequence(seed).spawn(n)
    return [np.random.default_rng(c) for c in children]


def derive_seed(*components: object) -> int:
    """Derive a stable 63-bit seed from arbitrary hashable components.

    The derivation is a content hash (SHA-256 over the ``repr`` of the
    components), so it is identical across processes, platforms, and
    Python invocations — unlike ``hash()``, which is randomised per
    interpreter.  Parallel sweep cells use this to seed their stochastic
    draws from ``(base_seed, trace, organization, fraction)`` alone,
    making results independent of worker count and completion order.
    """
    payload = "\x1f".join(repr(c) for c in components).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") >> 1
