"""Plain-text table rendering used by experiments and the CLI.

The benchmark harness prints the same rows/series as the paper's tables
and figures; this module provides a single consistent renderer so every
experiment output looks the same.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["ascii_table", "percent"]


def percent(value: float, digits: int = 2) -> str:
    """Format a fraction in [0, 1] (or a ratio) as a percentage string."""
    return f"{value * 100:.{digits}f}%"


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render *rows* under *headers* as an aligned ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append("|" + "|".join(f" {h:<{w}} " for h, w in zip(headers, widths)) + "|")
    lines.append(sep)
    for row in str_rows:
        lines.append("|" + "|".join(f" {c:<{w}} " for c, w in zip(row, widths)) + "|")
    lines.append(sep)
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
