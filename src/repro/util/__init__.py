"""Small shared utilities: RNG handling, unit constants, formatting."""

from repro.util.rng import make_rng, spawn_rngs
from repro.util.units import (
    KB,
    MB,
    GB,
    KIB,
    MIB,
    GIB,
    BITS_PER_BYTE,
    format_bytes,
    format_duration,
    parse_size,
)
from repro.util.fmt import ascii_table, percent
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_fraction,
    check_probability,
)

__all__ = [
    "make_rng",
    "spawn_rngs",
    "KB",
    "MB",
    "GB",
    "KIB",
    "MIB",
    "GIB",
    "BITS_PER_BYTE",
    "format_bytes",
    "format_duration",
    "parse_size",
    "ascii_table",
    "percent",
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_probability",
]
