"""Opt-in per-phase replay instrumentation.

A :class:`ReplayProfile` is handed to :class:`repro.core.simulator.
Simulator` (or :func:`~repro.core.simulator.simulate`) to switch the
engine onto its instrumented loops, which wrap each request-path phase
in ``time.perf_counter`` timers:

====================  ====================================================
phase                 what it covers
====================  ====================================================
``recovery``          checkpoint/crash event processing before a request
``browser_probe``     local browser-cache lookup (and hit accounting)
``proxy_probe``       proxy-cache lookup (and hit accounting)
``index_lookup``      the browser-index query inside remote delivery
``remote_delivery``   the whole remote-hit path: lookup, holder probes,
                      failover, transfer pricing (includes
                      ``index_lookup`` — it is a sub-phase, not disjoint)
``origin_fetch``      the origin miss path: WAN pricing and re-population
====================  ====================================================

Profiling is deliberately **not** a :class:`~repro.core.config.
SimulationConfig` field: the journal keys cells by a digest of the
config's ``repr``, so a config knob would silently invalidate every
saved journal.  The instrumented loops produce bit-identical
:class:`~repro.core.metrics.SimulationResult`\\ s (covered by the
differential suite in ``tests/test_differential.py``); only wall-clock
observation is added.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ReplayProfile", "PHASES"]

#: canonical phase order for reports and ``SweepTiming.phase_seconds``.
PHASES = (
    "recovery",
    "browser_probe",
    "proxy_probe",
    "index_lookup",
    "remote_delivery",
    "origin_fetch",
)


@dataclass
class ReplayProfile:
    """Accumulated per-phase wall-clock time for one or more replays."""

    phase_seconds: dict[str, float] = field(default_factory=dict)
    phase_counts: dict[str, int] = field(default_factory=dict)
    #: total requests replayed under this profile.
    n_requests: int = 0
    #: total wall-clock seconds of the profiled replays.
    wall_seconds: float = 0.0

    def add(self, phase: str, seconds: float) -> None:
        """Charge *seconds* of wall-clock time to *phase*."""
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds
        self.phase_counts[phase] = self.phase_counts.get(phase, 0) + 1

    def merge(self, other: "ReplayProfile") -> None:
        """Fold another profile's totals into this one."""
        for phase, seconds in other.phase_seconds.items():
            self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds
        for phase, count in other.phase_counts.items():
            self.phase_counts[phase] = self.phase_counts.get(phase, 0) + count
        self.n_requests += other.n_requests
        self.wall_seconds += other.wall_seconds

    @property
    def total_phase_seconds(self) -> float:
        """Sum of all *disjoint* phases (``index_lookup`` is nested
        inside ``remote_delivery`` and therefore excluded)."""
        return sum(
            seconds
            for phase, seconds in self.phase_seconds.items()
            if phase != "index_lookup"
        )

    @property
    def requests_per_second(self) -> float:
        return self.n_requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def as_pairs(self) -> tuple[tuple[str, float], ...]:
        """(phase, seconds) pairs in canonical order, then any extras
        alphabetically — a stable, immutable view for ``SweepTiming``."""
        known = [
            (phase, self.phase_seconds[phase])
            for phase in PHASES
            if phase in self.phase_seconds
        ]
        extra = sorted(
            (phase, seconds)
            for phase, seconds in self.phase_seconds.items()
            if phase not in PHASES
        )
        return tuple(known + extra)

    def as_dict(self) -> dict:
        """JSON-friendly summary (used by ``baps profile`` and tests)."""
        return {
            "n_requests": self.n_requests,
            "wall_seconds": self.wall_seconds,
            "requests_per_second": self.requests_per_second,
            "phase_seconds": dict(self.as_pairs()),
            "phase_counts": {
                phase: self.phase_counts[phase]
                for phase, _ in self.as_pairs()
            },
        }

    def render(self) -> str:
        """ASCII table of per-phase timings, heaviest first."""
        from repro.util.fmt import ascii_table

        total = self.total_phase_seconds
        rows = []
        for phase, seconds in sorted(
            self.as_pairs(), key=lambda kv: kv[1], reverse=True
        ):
            share = seconds / total if total > 0 else 0.0
            note = " (within remote_delivery)" if phase == "index_lookup" else ""
            rows.append(
                [
                    phase + note,
                    f"{seconds:.4f}s",
                    f"{share:.1%}",
                    f"{self.phase_counts.get(phase, 0):,}",
                ]
            )
        rows.append(["total (disjoint phases)", f"{total:.4f}s", "100.0%", ""])
        if self.wall_seconds > 0:
            rows.append(
                [
                    "replay wall clock",
                    f"{self.wall_seconds:.4f}s",
                    "",
                    f"{self.requests_per_second:,.0f} req/s",
                ]
            )
        return ascii_table(
            ["phase", "seconds", "share", "events"], rows, title="replay profile"
        )
