"""Calibrated profiles for the paper's five traces (Table 1).

Each profile pairs a synthetic-generator configuration with the paper's
published characteristics.  Request counts are scaled down (the paper's
traces run to millions of requests; we use 60k–150k) — all experiments
express cache sizes *relative to the infinite cache size*, exactly as
the paper does, so the figures' shapes are scale-invariant.

Where the scanned paper text is unreadable, the targets marked
``approx=True`` are documented estimates (see DESIGN.md §3); the byte
hit ratio column survives in the scan and is matched closely.

Generator parameters were tuned with ``tools/calibrate.py`` so that the
generated traces reproduce the target maximum hit / byte-hit ratios
within about two points.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.traces.record import Trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

__all__ = [
    "TraceProfile",
    "PAPER_TRACES",
    "get_profile",
    "load_paper_trace",
    "small_paper_trace",
]


@dataclass(frozen=True)
class TraceProfile:
    """A paper trace: generator config + published Table 1 targets."""

    name: str
    period: str
    config: SyntheticTraceConfig
    seed: int
    #: Table 1 targets (fractions, not percent).
    target_max_hit_ratio: float
    target_max_byte_hit_ratio: float
    #: True when the target had to be estimated from a garbled scan.
    approx_hit_target: bool = False

    def generate(self) -> Trace:
        """Generate this profile's trace (deterministic)."""
        return generate_trace(self.config, seed=self.seed)

    def scaled(self, n_requests: int, n_clients: int | None = None) -> "TraceProfile":
        """This profile at a different request count (same seed and
        workload knobs) — the basis of the small-profile golden tests,
        which pin scaled-down figure numbers without paying for the
        full 60k–150k-request traces."""
        overrides: dict = {"n_requests": n_requests}
        if n_clients is not None:
            overrides["n_clients"] = n_clients
        return replace(self, config=replace(self.config, **overrides))


# Knobs shared by all five calibrated profiles (see DESIGN.md §3):
# strongly skewed client activity (a few clients dominate the request
# stream, so idle clients' browsers retain documents much longer than
# the churning proxy) and a substantial mid-tail of long-reuse-distance
# revisits — the two ingredients of sharable browser locality.
_COMMON = dict(
    client_activity_alpha=0.3,
    recency_bias=0.15,
    uniform_doc_frac=0.35,
    # Browser revisits are shallow (back button, shared embedded
    # objects): a mean re-reference depth of ~12 requests into the
    # client's own stream.
    self_lookback_mean=12.0,
)


def _profile(
    name: str,
    period: str,
    seed: int,
    target_hr: float,
    target_bhr: float,
    approx: bool,
    **overrides,
) -> TraceProfile:
    config = SyntheticTraceConfig(name=name, **{**_COMMON, **overrides})
    return TraceProfile(
        name=name,
        period=period,
        config=config,
        seed=seed,
        target_max_hit_ratio=target_hr,
        target_max_byte_hit_ratio=target_bhr,
        approx_hit_target=approx,
    )


PAPER_TRACES: dict[str, TraceProfile] = {
    p.name: p
    for p in [
        # NLANR uc proxy, one day (7/14/2000).  Byte hit target 14.85%
        # survives in the scan; the large HR/BHR gap means popular
        # documents are much smaller than one-shot ones.
        _profile(
            "NLANR-uc",
            "1 day (2000-07-14)",
            seed=1001,
            target_hr=0.40,
            target_bhr=0.1485,
            approx=True,
            n_requests=120_000,
            n_clients=100,
            p_new=0.5931,
            p_self=0.16,
            private_doc_frac=0.18,
            p_mutate=0.012,
            size_popularity_beta=1.379,
            size_sigma=1.5,
            mean_doc_size=10_000,
            duration=86_400.0,
        ),
        # NLANR bo1 proxy, one day (2000-08-29); byte hit 28.79%.
        _profile(
            "NLANR-bo1",
            "1 day (2000-08-29)",
            seed=1002,
            target_hr=0.47,
            target_bhr=0.2879,
            approx=True,
            n_requests=100_000,
            n_clients=80,
            p_new=0.5243,
            p_self=0.18,
            private_doc_frac=0.15,
            p_mutate=0.010,
            size_popularity_beta=0.7375,
            size_sigma=1.3,
            mean_doc_size=11_000,
            duration=86_400.0,
        ),
        # Boston University, Jan–Feb 1995; byte hit 31.37%.  The 1995
        # population shows the strongest locality of the five traces.
        _profile(
            "BU-95",
            "2 months (Jan-Feb 1995)",
            seed=1003,
            target_hr=0.55,
            target_bhr=0.3137,
            approx=True,
            n_requests=150_000,
            n_clients=120,
            p_new=0.446,
            p_self=0.22,
            private_doc_frac=0.12,
            p_mutate=0.008,
            size_popularity_beta=0.8781,
            size_sigma=1.2,
            mean_doc_size=9_000,
            duration=60 * 86_400.0,
        ),
        # Boston University, Apr–May 1998; byte hit 35.94%.  Barford et
        # al. report markedly lower hit ratios than 1995 (wider access
        # variation), so the request hit target sits closer to the byte
        # target.
        _profile(
            "BU-98",
            "2 months (Apr-May 1998)",
            seed=1004,
            target_hr=0.44,
            target_bhr=0.3594,
            approx=True,
            n_requests=130_000,
            n_clients=150,
            p_new=0.5548,
            p_self=0.20,
            private_doc_frac=0.16,
            p_mutate=0.010,
            size_popularity_beta=0.3128,
            size_sigma=1.2,
            mean_doc_size=13_000,
            duration=60 * 86_400.0,
        ),
        # CA*netII parent cache, two concatenated days (1999-09-19/20).
        # Only 3 clients — the paper's limit case where aggregate
        # browser capacity is too small for BAPS to help.
        _profile(
            "CAnetII",
            "2 days (1999-09-19/20)",
            seed=1005,
            target_hr=0.50,
            target_bhr=0.2984,
            approx=True,
            n_requests=60_000,
            n_clients=3,
            p_new=0.4955,
            p_self=0.25,
            private_doc_frac=0.10,
            p_mutate=0.010,
            size_popularity_beta=0.8094,
            size_sigma=1.2,
            mean_doc_size=12_000,
            duration=2 * 86_400.0,
        ),
    ]
}

_ALIASES = {
    "nlanr-uc": "NLANR-uc",
    "nlanr-bo1": "NLANR-bo1",
    "bu-95": "BU-95",
    "bu95": "BU-95",
    "bu-98": "BU-98",
    "bu98": "BU-98",
    "canetii": "CAnetII",
    "ca*netii": "CAnetII",
    "canet": "CAnetII",
}


def get_profile(name: str) -> TraceProfile:
    """Look up a paper trace profile by (case-insensitive) name."""
    key = _ALIASES.get(name.lower(), name)
    try:
        return PAPER_TRACES[key]
    except KeyError:
        known = ", ".join(sorted(PAPER_TRACES))
        raise KeyError(f"unknown trace {name!r}; known traces: {known}") from None


_TRACE_CACHE: dict[str, Trace] = {}


def load_paper_trace(name: str, cache: bool = True) -> Trace:
    """Generate (and memoise) one of the paper's five traces."""
    profile = get_profile(name)
    if cache and profile.name in _TRACE_CACHE:
        return _TRACE_CACHE[profile.name]
    trace = profile.generate()
    if cache:
        _TRACE_CACHE[profile.name] = trace
    return trace


#: request count of the scaled-down profiles used by the golden-result
#: regression tests and ``tools/make_goldens.py``.
SMALL_PROFILE_REQUESTS = 6_000


def small_paper_trace(name: str, n_requests: int = SMALL_PROFILE_REQUESTS) -> Trace:
    """A scaled-down paper trace for golden/regression tests.

    Same generator seed and workload knobs as the full profile, just
    fewer requests — deterministic and byte-identical across runs, so
    figure numbers computed from it can be pinned in checked-in JSON.
    """
    return get_profile(name).scaled(n_requests).generate()
