"""Trace characteristics — the columns of the paper's Table 1.

``Max Hit Ratio`` / ``Max Byte Hit Ratio`` are the hit ratios an
*infinite* shared cache would achieve: every request except the first
access to each unique (document, version) pair hits.  Version changes
model the paper's rule that a hit on a document whose size has changed
counts as a miss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.record import Trace
from repro.util.units import GB

__all__ = ["TraceStats", "compute_stats", "first_access_mask"]


@dataclass(frozen=True)
class TraceStats:
    """One row of Table 1."""

    name: str
    n_requests: int
    n_clients: int
    n_docs: int
    total_gb: float
    infinite_cache_gb: float
    max_hit_ratio: float
    max_byte_hit_ratio: float
    mean_doc_size: float
    duration_seconds: float

    def as_row(self) -> list:
        """Row cells in Table 1 column order."""
        return [
            self.name,
            self.n_requests,
            f"{self.total_gb:.3f}",
            f"{self.infinite_cache_gb:.3f}",
            self.n_clients,
            f"{self.max_hit_ratio * 100:.2f}%",
            f"{self.max_byte_hit_ratio * 100:.2f}%",
        ]

    @staticmethod
    def headers() -> list[str]:
        return [
            "Trace",
            "# Requests",
            "Total GB",
            "Infinite Cache (GB)",
            "# Clients",
            "Max Hit Ratio",
            "Max Byte Hit Ratio",
        ]


def first_access_mask(trace: Trace) -> np.ndarray:
    """Boolean mask of requests that are the first access to their
    (doc, version) pair — compulsory misses for any cache."""
    if len(trace) == 0:
        return np.zeros(0, dtype=bool)
    vmax = int(trace.versions.max()) + 1
    key = trace.docs * vmax + trace.versions
    # np.unique returns the index of the first occurrence of each key in
    # the *sorted* order; with return_index it is the first occurrence in
    # the original array.
    _, first_idx = np.unique(key, return_index=True)
    mask = np.zeros(len(trace), dtype=bool)
    mask[first_idx] = True
    return mask


def compute_stats(trace: Trace) -> TraceStats:
    """Compute the Table 1 characteristics for *trace*."""
    n = len(trace)
    if n == 0:
        return TraceStats(trace.name, 0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    compulsory = first_access_mask(trace)
    total_bytes = trace.total_bytes
    compulsory_bytes = int(trace.sizes[compulsory].sum())
    n_compulsory = int(compulsory.sum())
    return TraceStats(
        name=trace.name,
        n_requests=n,
        n_clients=trace.n_clients,
        n_docs=trace.n_docs,
        total_gb=total_bytes / GB,
        infinite_cache_gb=trace.infinite_cache_bytes() / GB,
        max_hit_ratio=1.0 - n_compulsory / n,
        max_byte_hit_ratio=1.0 - compulsory_bytes / total_bytes,
        mean_doc_size=total_bytes / n,
        duration_seconds=trace.duration,
    )
