"""Trace data model.

A :class:`Trace` is a column-oriented container of web requests backed
by NumPy arrays.  The simulator's hot loop iterates requests as plain
Python ints/floats; everything else (statistics, filtering, client
scaling) operates on whole columns vectorised.

Columns
-------
``timestamps``  float64, seconds, non-decreasing
``clients``     int64, dense client ids starting at 0
``docs``        int64, dense document ids starting at 0
``sizes``       int64, response body size in bytes for this request
``versions``    int64, document version; a change in version (or size)
                between the cached copy and the request is a *cache
                miss*, matching the paper's "if a user request hits on
                a document whose size has been changed, we count it as
                a cache miss".

URL strings are kept out of the engine: :attr:`Trace.urls` optionally
maps document ids back to URLs for parsers and the security layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

__all__ = ["Request", "Trace"]


@dataclass(frozen=True, slots=True)
class Request:
    """A single web request (row view of a :class:`Trace`)."""

    timestamp: float
    client: int
    doc: int
    size: int
    version: int

    @property
    def key(self) -> int:
        """The cache key for this request (the document id)."""
        return self.doc


@dataclass
class Trace:
    """Column-oriented web request trace.

    Instances are immutable by convention: filtering helpers return new
    traces sharing the underlying arrays via views where possible.
    """

    timestamps: np.ndarray
    clients: np.ndarray
    docs: np.ndarray
    sizes: np.ndarray
    versions: np.ndarray
    name: str = "trace"
    urls: dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = len(self.timestamps)
        for attr in ("clients", "docs", "sizes", "versions"):
            if len(getattr(self, attr)) != n:
                raise ValueError(
                    f"column {attr!r} has length {len(getattr(self, attr))}, "
                    f"expected {n}"
                )
        self.timestamps = np.asarray(self.timestamps, dtype=np.float64)
        self.clients = np.asarray(self.clients, dtype=np.int64)
        self.docs = np.asarray(self.docs, dtype=np.int64)
        self.sizes = np.asarray(self.sizes, dtype=np.int64)
        self.versions = np.asarray(self.versions, dtype=np.int64)
        if n and np.any(np.diff(self.timestamps) < 0):
            raise ValueError("timestamps must be non-decreasing")
        if n and (self.sizes < 0).any():
            raise ValueError("sizes must be non-negative")

    # -- construction ------------------------------------------------

    @classmethod
    def from_requests(cls, requests: Sequence[Request], name: str = "trace") -> "Trace":
        """Build a trace from an iterable of :class:`Request` rows."""
        reqs = list(requests)
        return cls(
            timestamps=np.array([r.timestamp for r in reqs], dtype=np.float64),
            clients=np.array([r.client for r in reqs], dtype=np.int64),
            docs=np.array([r.doc for r in reqs], dtype=np.int64),
            sizes=np.array([r.size for r in reqs], dtype=np.int64),
            versions=np.array([r.version for r in reqs], dtype=np.int64),
            name=name,
        )

    @classmethod
    def empty(cls, name: str = "empty") -> "Trace":
        z = np.array([], dtype=np.int64)
        return cls(
            timestamps=np.array([], dtype=np.float64),
            clients=z.copy(),
            docs=z.copy(),
            sizes=z.copy(),
            versions=z.copy(),
            name=name,
        )

    # -- basic protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self.timestamps)

    #: rows converted per ``iter_rows`` batch: large enough that the
    #: per-chunk ``tolist()`` overhead vanishes, small enough that the
    #: transient Python-object copies stay a few MB regardless of trace
    #: size (five columns at once used to ~double resident memory at
    #: replay start for multi-million-request traces).
    ITER_CHUNK_ROWS = 65_536

    def __iter__(self) -> Iterator[Request]:
        for row in self.iter_rows():
            yield Request(*row)

    def __getitem__(self, index: int) -> Request:
        i = int(index)
        return Request(
            float(self.timestamps[i]),
            int(self.clients[i]),
            int(self.docs[i]),
            int(self.sizes[i]),
            int(self.versions[i]),
        )

    def iter_rows(
        self, chunk_rows: int | None = None
    ) -> Iterator[tuple[float, int, int, int, int]]:
        """Iterate ``(timestamp, client, doc, size, version)`` tuples.

        This is the simulator's hot path; it avoids constructing
        :class:`Request` objects.  Columns are converted to native
        Python scalars (``tolist()`` — much faster in the replay loop
        than per-element numpy scalar boxing) in bounded chunks of
        ``chunk_rows`` rows (default :attr:`ITER_CHUNK_ROWS`), so the
        transient conversion memory is O(chunk), not O(trace).
        Iteration order and yielded values are identical to the old
        whole-column conversion.
        """
        n = len(self.timestamps)
        step = chunk_rows if chunk_rows else self.ITER_CHUNK_ROWS
        if step <= 0:
            raise ValueError(f"chunk_rows must be > 0, got {step}")
        for start in range(0, n, step):
            end = start + step
            yield from zip(
                self.timestamps[start:end].tolist(),
                self.clients[start:end].tolist(),
                self.docs[start:end].tolist(),
                self.sizes[start:end].tolist(),
                self.versions[start:end].tolist(),
            )

    # -- derived properties -------------------------------------------

    def _client_id_info(self) -> tuple[int, int]:
        """``(n_distinct, max_id)`` for the client column, memoized.

        Instances are immutable by convention, so the scan runs once no
        matter how many sweep cells replay the same trace.
        """
        cached = getattr(self, "_client_info_cache", None)
        if cached is None:
            if len(self) == 0:
                cached = (0, -1)
            else:
                cached = (
                    int(np.unique(self.clients).size),
                    int(self.clients.max()),
                )
            self._client_info_cache = cached
        return cached

    @property
    def n_clients(self) -> int:
        """Number of distinct clients appearing in the trace."""
        return self._client_id_info()[0]

    @property
    def has_dense_clients(self) -> bool:
        """True when client ids are exactly ``0..n_clients-1``.

        Dense ids are the documented contract (the simulator indexes
        per-client state by id); filtering can leave gaps, which
        :meth:`renumbered` repairs.
        """
        n_distinct, max_id = self._client_id_info()
        return max_id + 1 == n_distinct

    @property
    def n_docs(self) -> int:
        """Number of distinct documents appearing in the trace."""
        if len(self) == 0:
            return 0
        return int(np.unique(self.docs).size)

    @property
    def total_bytes(self) -> int:
        """Total bytes requested (sum of response sizes over requests)."""
        return int(self.sizes.sum())

    @property
    def mean_request_size(self) -> float:
        """Mean response size in bytes over all requests (0.0 if empty)."""
        if len(self) == 0:
            return 0.0
        return float(self.sizes.mean())

    @property
    def duration(self) -> float:
        """Trace wall-clock span in seconds."""
        if len(self) == 0:
            return 0.0
        return float(self.timestamps[-1] - self.timestamps[0])

    def infinite_cache_bytes(self) -> int:
        """Total size of all unique (doc, version) bodies — the paper's
        "infinite cache size": the storage needed to hold every unique
        requested document."""
        if len(self) == 0:
            return 0
        # The last size seen for each (doc, version) pair is the
        # authoritative body size for that version.
        key = self.docs * (self.versions.max() + 1) + self.versions
        _, first_idx = np.unique(key, return_index=True)
        return int(self.sizes[first_idx].sum())

    def client_footprint_bytes(self) -> np.ndarray:
        """Per-client infinite browser cache size.

        For each client, the total size of unique (doc, version) pairs
        that the client itself requested.  Used to size "average"
        browser caches the way the paper does.
        """
        n = int(self.clients.max()) + 1 if len(self) else 0
        out = np.zeros(n, dtype=np.int64)
        if len(self) == 0:
            return out
        vmax = int(self.versions.max()) + 1
        key = (self.clients * (int(self.docs.max()) + 1) + self.docs) * vmax + self.versions
        _, first_idx = np.unique(key, return_index=True)
        np.add.at(out, self.clients[first_idx], self.sizes[first_idx])
        return out

    # -- transforms ----------------------------------------------------

    def take(self, mask_or_index: np.ndarray, name: str | None = None) -> "Trace":
        """Return a sub-trace selected by a boolean mask or index array."""
        return Trace(
            timestamps=self.timestamps[mask_or_index],
            clients=self.clients[mask_or_index],
            docs=self.docs[mask_or_index],
            sizes=self.sizes[mask_or_index],
            versions=self.versions[mask_or_index],
            name=name or self.name,
            urls=self.urls,
        )

    def renumbered(self) -> "Trace":
        """Return a copy with dense client and doc ids starting at 0.

        Filtering can leave gaps in the id spaces; the simulator relies
        on dense client ids to index per-client caches.
        """
        _, clients = np.unique(self.clients, return_inverse=True)
        doc_values, docs = np.unique(self.docs, return_inverse=True)
        urls = {}
        if self.urls:
            for new_id, old_id in enumerate(doc_values.tolist()):
                if old_id in self.urls:
                    urls[new_id] = self.urls[old_id]
        return Trace(
            timestamps=self.timestamps.copy(),
            clients=clients.astype(np.int64),
            docs=docs.astype(np.int64),
            sizes=self.sizes.copy(),
            versions=self.versions.copy(),
            name=self.name,
            urls=urls,
        )

    def url_of(self, doc: int) -> str:
        """URL for a document id (synthesised if the trace has none)."""
        url = self.urls.get(doc)
        if url is None:
            url = f"http://doc-{doc}.{self.name}.example/object"
        return url

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Trace(name={self.name!r}, requests={len(self)}, "
            f"clients={self.n_clients}, docs={self.n_docs}, "
            f"bytes={self.total_bytes})"
        )
