"""Squid native access-log parser (NLANR sanitized logs).

NLANR's IRCache project published Squid proxy logs in Squid's native
``access.log`` format::

    timestamp elapsed client action/code size method URL ident hierarchy/host type

e.g.::

    963561600.123    45 982a1f33 TCP_MISS/200 8192 GET http://a.example/x - DIRECT/a.example text/html

Client fields in the sanitized logs are randomised identifiers that are
consistent within one day's file, which is why the paper uses single-day
logs; we treat the field as an opaque key.  Only ``GET`` requests with a
2xx/3xx status and a positive size are cacheable and kept.
"""

from __future__ import annotations

import gzip
import os
from typing import Iterable, Iterator

from repro.traces._parse_common import ParseReport, resolve_errors, rows_to_trace
from repro.traces.record import Trace

__all__ = ["parse_squid_log", "write_squid_log"]

_CACHEABLE_METHODS = {"GET"}


def _iter_lines(source: str | os.PathLike | Iterable[str]) -> Iterator[str]:
    if isinstance(source, (str, os.PathLike)) and os.path.exists(str(source)):
        # NLANR published its sanitized logs gzip-compressed.
        if str(source).endswith(".gz"):
            with gzip.open(source, "rt", encoding="utf-8", errors="replace") as fh:
                yield from fh
        else:
            with open(source, "r", encoding="utf-8", errors="replace") as fh:
                yield from fh
    elif isinstance(source, str):
        yield from source.splitlines()
    else:
        yield from source


def parse_squid_log(
    source: str | os.PathLike | Iterable[str],
    name: str = "squid",
    strict: bool = False,
    errors: str | None = None,
    report: ParseReport | None = None,
) -> Trace:
    """Parse a Squid native access log into a :class:`Trace`.

    *source* may be a path, the log text itself, or an iterable of
    lines.  ``errors`` is ``"raise"`` (abort on the first malformed
    line) or ``"skip"`` (quarantine it and keep going); when ``None``
    the legacy ``strict`` flag picks the mode.  In skip mode a caller-
    supplied *report* collects the quarantine (count plus the first few
    offending lines); lines filtered for cacheability are not malformed
    and are never quarantined.
    """
    mode = resolve_errors(errors, strict)
    rows = []
    for lineno, line in enumerate(_iter_lines(source), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        try:
            ts = float(fields[0])
            client = fields[2]
            action_code = fields[3]
            size = int(fields[4])
            method = fields[5]
            url = fields[6]
        except (IndexError, ValueError) as exc:
            if mode == "raise":
                raise ValueError(f"malformed squid log line {lineno}: {line!r}") from exc
            if report is not None:
                report.record_bad(lineno, line)
            continue
        status = action_code.rsplit("/", 1)[-1]
        if method not in _CACHEABLE_METHODS:
            continue
        if not (status.startswith("2") or status.startswith("3")):
            continue
        if size <= 0:
            continue
        rows.append((ts, client, url, size))
    if report is not None:
        report.parsed += len(rows)
    return rows_to_trace(rows, name)


def write_squid_log(trace: Trace, path: str | os.PathLike) -> None:
    """Write *trace* back out in Squid native format (for round-trips
    and for feeding other tools)."""
    with open(path, "w", encoding="utf-8") as fh:
        for req in trace:
            url = trace.url_of(req.doc)
            fh.write(
                f"{req.timestamp:.3f} 10 client{req.client:05d} "
                f"TCP_MISS/200 {req.size} GET {url} - DIRECT/origin text/html\n"
            )
