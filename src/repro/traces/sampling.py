"""Deterministic hash-based spatial sampling (the SHARDS estimator).

A *spatial* sample keeps or drops whole documents, not individual
requests: every request for a kept document survives, so reuse
behaviour inside the sample is undistorted and a reuse *distance*
measured on the sample estimates the full-trace distance after
rescaling by ``1 / rate``.  Document selection is a pure hash
decision — ``keep(doc)`` iff ``hash(doc) mod M < rate * M`` — so it is

* **deterministic** per ``(seed, rate)``: the same documents are kept
  on every run, on every machine, in any iteration order;
* **chunk-size invariant**: a :class:`~repro.traces.streaming.TraceStream`
  can be filtered row-by-row in chunks of any size and always yields
  the same sample (there is no per-request randomness to re-seed);
* **nested**: lowering the rate keeps a subset of the higher-rate
  sample (thresholds are ordered), the property SHARDS exploits.

The hash is a splitmix64 finalizer — avalanche-quality mixing of the
document id, salted with the seed — reduced modulo ``M = 2**24``.

:func:`build_sample_report` quantifies the estimator: it runs the
one-pass MRC analysis (:mod:`repro.analysis.mrc`) on the full stream
and on the sample, and reports the per-(organization, size) hit-ratio
error, the number every sampled sweep should quote next to its result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (mrc uses us)
    from repro.analysis.mrc import CapacityGrid
    from repro.core.policies import Organization

__all__ = [
    "SpatialSampler",
    "SampleSizeError",
    "SampleReport",
    "SAMPLE_ERROR_BOUNDS",
    "sample_trace",
    "build_sample_report",
]

#: Documented worst-case absolute hit-ratio / byte-hit-ratio error of a
#: sampled MRC pass versus the full pass, by sample rate — measured
#: with seed 0 across all five paper profiles (100k-request streams),
#: all five organizations, at the paper's size grid, and rounded up
#: (see EXPERIMENTS.md for the per-profile table).  The worst cell is
#: always the smallest cache size (0.5% of the infinite-cache
#: footprint), where the rescaled-distance quantum ``~size/rate`` is
#: comparable to the whole cache — the known small-cache granularity
#: limit of spatial sampling; at sizes >= 5% the error is under 0.03.
#: The error falls with stream length (the estimator targets streams
#: too long to replay), so these bounds are conservative for larger
#: inputs.  CI asserts them via ``tools/smoke_parallel.py --mrc``.
SAMPLE_ERROR_BOUNDS = {0.01: 0.25, 0.05: 0.15, 0.10: 0.10}

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def _mix64(x: int) -> int:
    """splitmix64 finalizer (scalar)."""
    z = (x + _GOLDEN) & _MASK64
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    return z ^ (z >> 31)


def _mix64_array(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer, vectorised; bit-identical to :func:`_mix64`."""
    z = x.astype(np.uint64) + np.uint64(_GOLDEN)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX2)
    return z ^ (z >> np.uint64(31))


class SpatialSampler:
    """Keep a deterministic ``rate`` fraction of document ids.

    ``keep(doc)`` iff ``hash(doc, seed) mod MOD < round(rate * MOD)``.
    ``rate`` must be in ``(0, 1]``; ``rate == 1.0`` keeps everything.
    The quantised :attr:`effective_rate` (``threshold / MOD``) is what
    the thresholding actually applies; at ``MOD = 2**24`` it differs
    from the nominal rate by less than ``6e-8``.
    """

    MOD_BITS = 24
    MOD = 1 << MOD_BITS

    __slots__ = ("rate", "seed", "threshold", "_salt")

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"sample rate must be in (0, 1], got {rate}")
        self.rate = float(rate)
        self.seed = int(seed)
        self.threshold = min(self.MOD, round(self.rate * self.MOD))
        if self.threshold <= 0:
            raise ValueError(
                f"rate {rate} quantises to an empty sample at MOD=2**{self.MOD_BITS}"
            )
        self._salt = _mix64(self.seed)

    @property
    def effective_rate(self) -> float:
        return self.threshold / self.MOD

    def keep(self, doc: int) -> bool:
        """Deterministic per-document keep decision."""
        return (_mix64(doc ^ self._salt) & (self.MOD - 1)) < self.threshold

    def mask(self, docs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`keep` over a document-id column."""
        if self.threshold >= self.MOD:
            return np.ones(len(docs), dtype=bool)
        hashed = _mix64_array(docs.astype(np.uint64) ^ np.uint64(self._salt))
        return (hashed & np.uint64(self.MOD - 1)) < np.uint64(self.threshold)


def sample_trace(trace, rate: float, seed: int = 0, name: str | None = None):
    """Materialise the spatial sample of a :class:`~repro.traces.record.Trace`.

    Every request for a kept document survives; client ids and request
    order are untouched (the sample of a trace is a sub-trace, not a
    renumbered one, so per-client structure is preserved).
    """
    sampler = SpatialSampler(rate, seed=seed)
    mask = sampler.mask(trace.docs)
    return trace.take(mask, name=name or f"{trace.name}~s{rate:g}")


# -- quantifying the estimator -----------------------------------------


@dataclass(frozen=True)
class SampleSizeError:
    """Sampled-vs-full comparison at one (organization, size) cell."""

    organization: str
    fraction: float
    full_hit_ratio: float
    sampled_hit_ratio: float
    full_byte_hit_ratio: float
    sampled_byte_hit_ratio: float

    @property
    def hit_error(self) -> float:
        return self.sampled_hit_ratio - self.full_hit_ratio

    @property
    def byte_hit_error(self) -> float:
        return self.sampled_byte_hit_ratio - self.full_byte_hit_ratio


@dataclass(frozen=True)
class SampleReport:
    """Per-size error bounds of a sampled MRC pass vs the full trace."""

    trace_name: str
    sample_rate: float
    sample_seed: int
    n_requests_full: int
    n_requests_sampled: int
    rows: tuple[SampleSizeError, ...]

    @property
    def max_abs_hit_error(self) -> float:
        return max((abs(r.hit_error) for r in self.rows), default=0.0)

    @property
    def max_abs_byte_hit_error(self) -> float:
        return max((abs(r.byte_hit_error) for r in self.rows), default=0.0)

    def worst(self) -> SampleSizeError | None:
        """The cell with the largest absolute hit-ratio error."""
        return max(self.rows, key=lambda r: abs(r.hit_error), default=None)

    def summary(self) -> str:
        kept = (
            self.n_requests_sampled / self.n_requests_full
            if self.n_requests_full
            else 0.0
        )
        return (
            f"sample rate {self.sample_rate:g} (seed {self.sample_seed}) kept "
            f"{self.n_requests_sampled}/{self.n_requests_full} requests "
            f"({kept:.1%}); max |hit-ratio error| {self.max_abs_hit_error:.4f}, "
            f"max |byte-hit-ratio error| {self.max_abs_byte_hit_error:.4f}"
        )


def build_sample_report(
    source,
    grid: "CapacityGrid",
    rate: float,
    *,
    seed: int = 0,
    organizations: Iterable["Organization"] | None = None,
    full_mrc=None,
) -> SampleReport:
    """Run the one-pass MRC on the full *source* and on its spatial
    sample, and tabulate the per-(organization, size) error.

    *source* is anything :func:`repro.analysis.mrc.compute_mrc`
    accepts.  Pass a precomputed ``full_mrc`` (from the same source,
    grid and organizations) to avoid re-analysing the full stream when
    comparing several rates.
    """
    # Imported lazily: repro.analysis.mrc imports this module.
    from repro.analysis.mrc import compute_mrc

    if full_mrc is None:
        full_mrc = compute_mrc(source, grid, organizations=organizations)
    sampled = compute_mrc(
        source,
        grid,
        organizations=full_mrc.organizations,
        sample_rate=rate,
        sample_seed=seed,
    )
    rows = []
    for org in full_mrc.organizations:
        for frac in grid.fractions:
            pf = full_mrc.predict(org, frac)
            ps = sampled.predict(org, frac)
            rows.append(
                SampleSizeError(
                    organization=org.value,
                    fraction=frac,
                    full_hit_ratio=pf.hit_ratio,
                    sampled_hit_ratio=ps.hit_ratio,
                    full_byte_hit_ratio=pf.byte_hit_ratio,
                    sampled_byte_hit_ratio=ps.byte_hit_ratio,
                )
            )
    return SampleReport(
        trace_name=full_mrc.trace_name,
        sample_rate=rate,
        sample_seed=seed,
        n_requests_full=full_mrc.n_requests,
        n_requests_sampled=sampled.n_requests,
        rows=tuple(rows),
    )
