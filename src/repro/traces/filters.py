"""Trace filtering and sub-setting.

Used by the scaling experiment (Figure 8 restricts the trace to a
relative number of clients) and by parsers (dropping uncacheably large
objects).
"""

from __future__ import annotations

import numpy as np

from repro.traces.record import Trace

__all__ = ["select_clients", "head", "cacheable_only"]


def select_clients(
    trace: Trace,
    fraction: float | None = None,
    client_ids: np.ndarray | list[int] | None = None,
    order: str = "id",
    renumber: bool = True,
) -> Trace:
    """Restrict *trace* to a subset of clients.

    Exactly one of *fraction* (in (0, 1]) or *client_ids* must be given.
    With *fraction*, clients are ranked by ``order``:

    * ``"id"`` — ascending client id (deterministic, the default),
    * ``"activity"`` — descending request count (keeps the busiest
      clients, which is how proxy operators typically truncate logs).

    The selected sub-trace is renumbered to dense ids unless
    ``renumber=False``.
    """
    if (fraction is None) == (client_ids is None):
        raise ValueError("pass exactly one of fraction or client_ids")
    if client_ids is None:
        if not (0.0 < fraction <= 1.0):
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        unique, counts = np.unique(trace.clients, return_counts=True)
        k = max(1, int(round(fraction * unique.size)))
        if order == "id":
            chosen = unique[:k]
        elif order == "activity":
            chosen = unique[np.argsort(-counts, kind="stable")][:k]
        else:
            raise ValueError(f"unknown order {order!r}")
    else:
        chosen = np.asarray(list(client_ids), dtype=np.int64)
        if chosen.size == 0:
            raise ValueError("client_ids must be non-empty")
    mask = np.isin(trace.clients, chosen)
    sub = trace.take(mask, name=f"{trace.name}[clients={len(chosen)}]")
    return sub.renumbered() if renumber else sub


def head(trace: Trace, n_requests: int) -> Trace:
    """Return the first *n_requests* requests of *trace*."""
    if n_requests < 0:
        raise ValueError(f"n_requests must be >= 0, got {n_requests}")
    return trace.take(np.arange(min(n_requests, len(trace))))


def cacheable_only(
    trace: Trace,
    min_size: int = 1,
    max_size: int | None = None,
) -> Trace:
    """Drop requests outside the cacheable size band.

    Real proxy deployments refuse to cache zero-byte error responses and
    objects larger than a configured ceiling; parsers apply this before
    simulation.
    """
    mask = trace.sizes >= min_size
    if max_size is not None:
        mask &= trace.sizes <= max_size
    return trace.take(mask, name=trace.name)
