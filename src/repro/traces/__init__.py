"""Web trace substrate.

The paper's evaluation is trace-driven: five proxy access-log traces
(NLANR-uc, NLANR-bo1, BU-95, BU-98, CA*netII) are replayed through a
simulated browser/proxy caching hierarchy.  The original 2000-era log
files are no longer distributable, so this package provides both

* parsers/writers for the real on-disk formats (Squid/NLANR access
  logs, Boston University client logs, CA*netII parent-cache logs), so
  genuine traces can be replayed if available, and
* a calibrated synthetic workload generator whose output matches the
  Table 1 characteristics of each paper trace (request count, unique
  footprint, client count, maximum hit and byte-hit ratios).
"""

from repro.traces.record import Request, Trace
from repro.traces._parse_common import ParseReport
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace
from repro.traces.streaming import TraceStream, stream_trace
from repro.traces.profiles import (
    TraceProfile,
    PAPER_TRACES,
    get_profile,
    load_paper_trace,
    small_paper_trace,
)
from repro.traces.stats import TraceStats, compute_stats
from repro.traces.filters import select_clients, head, cacheable_only
from repro.traces.squid import parse_squid_log, write_squid_log
from repro.traces.bu import parse_bu_log, write_bu_log
from repro.traces.canet import parse_canet_log, write_canet_log, concatenate
from repro.traces.sampling import (
    SAMPLE_ERROR_BOUNDS,
    SpatialSampler,
    SampleReport,
    SampleSizeError,
    sample_trace,
    build_sample_report,
)

__all__ = [
    "Request",
    "Trace",
    "ParseReport",
    "SyntheticTraceConfig",
    "generate_trace",
    "TraceStream",
    "stream_trace",
    "TraceProfile",
    "PAPER_TRACES",
    "get_profile",
    "load_paper_trace",
    "small_paper_trace",
    "TraceStats",
    "compute_stats",
    "select_clients",
    "head",
    "cacheable_only",
    "parse_squid_log",
    "write_squid_log",
    "parse_bu_log",
    "write_bu_log",
    "parse_canet_log",
    "write_canet_log",
    "concatenate",
    "SAMPLE_ERROR_BOUNDS",
    "SpatialSampler",
    "SampleReport",
    "SampleSizeError",
    "sample_trace",
    "build_sample_report",
]
