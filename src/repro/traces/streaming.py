"""Streaming synthetic workload generation.

:func:`repro.traces.synthetic.generate_trace` materialises five whole
columns (40 bytes per request plus conversion transients) before the
first request can be replayed.  For million-client, ten-million-request
cells that peak at several hundred megabytes *per sweep cell* before
the simulator even starts.

:class:`TraceStream` produces the **same requests, bit for bit**, as an
iterator of bounded chunks.  For every ``(config, seed)`` pair the
emitted ``(timestamp, client, doc, size, version)`` rows are exactly
equal — same values, same dtypes, same order — to the columns of
``generate_trace(config, seed)``; a hypothesis property test pins this.

How bit-identity survives chunking
----------------------------------
``generate_trace`` consumes one sequential PCG64 stream in a fixed
order: client draws, five uniform arrays, a lookback exponential array,
an optional embedded-object Poisson array, the size lognormals, and the
timestamp gap exponentials.  NumPy fills every one of those arrays
sequentially from the bit generator, so drawing an array in bounded
chunks from a generator carrying the right state yields the identical
values.  Uniform doubles consume exactly one PCG64 step each, so the
five uniform cursors are positioned with ``PCG64.advance``; the
variable-consumption draws (ziggurat exponentials, Poisson) are
positioned by saving and restoring bit-generator state captured during
calibration.

Memory model
------------
Calibration retains roughly **8 bytes per request** (an ``int32``
client id and an ``int32`` size-class index) plus O(unique documents)
size tables, against the materialised path's five 8-byte output columns
plus the ``Trace`` and its replay conversions.  The generative process
itself keeps its preferential-attachment pool and per-client histories
(inherent to the workload model and identical to ``generate_trace``);
what streaming eliminates is every whole-trace output allocation.  Each
emitted chunk is O(``chunk_rows``).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.traces.record import Trace
from repro.traces.synthetic import SyntheticTraceConfig, _draw_clients

__all__ = ["TraceStream", "stream_trace"]

#: rows per emitted chunk: the same trade-off as
#: :attr:`repro.traces.record.Trace.ITER_CHUNK_ROWS`.
DEFAULT_CHUNK_ROWS = 65_536

_VERSION_BITS = 32  # (doc, version) packed as doc << 32 | version


def _generator_at(state: dict, offset: int = 0) -> np.random.Generator:
    """A fresh ``Generator`` positioned at *state* advanced by *offset*.

    *offset* counts 64-bit PCG64 steps; uniform doubles consume exactly
    one step each, which is what makes ``advance`` usable for the
    uniform cursors.
    """
    bg = np.random.PCG64()
    bg.state = state
    if offset:
        bg.advance(offset)
    return np.random.Generator(bg)


class TraceStream:
    """Chunked, re-iterable view of a synthetic trace.

    Bit-identical to ``generate_trace(config, seed)`` without ever
    materialising the five request columns.  Construction runs a single
    calibration pass (the generative loop plus size/timestamp
    normalisation); every subsequent :meth:`chunks` / :meth:`iter_rows`
    call replays the emission pass from saved RNG states, so the stream
    can be consumed any number of times.

    Parameters
    ----------
    config:
        The workload knobs, exactly as for ``generate_trace``.
    seed:
        Integer seed (or ``None`` for fresh OS entropy, drawn once at
        construction so the stream stays re-iterable).  Passing an
        existing ``Generator`` is *not* supported: the streaming
        machinery must own the bit-generator state to reposition it.
    chunk_rows:
        Default rows per emitted chunk.
    """

    def __init__(
        self,
        config: SyntheticTraceConfig,
        seed: int | None = 0,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> None:
        if isinstance(seed, np.random.Generator):
            raise TypeError(
                "TraceStream requires an integer seed (or None), not a "
                "Generator: streaming repositions the underlying PCG64 "
                "state and cannot share a caller's generator"
            )
        if chunk_rows <= 0:
            raise ValueError(f"chunk_rows must be > 0, got {chunk_rows}")
        if seed is None:
            seed = int(np.random.SeedSequence().entropy) & ((1 << 63) - 1)
        self.config = config
        self.seed = int(seed)
        self.chunk_rows = int(chunk_rows)
        self.name = config.name
        self._calibrate()

    # -- trace-like protocol ------------------------------------------

    def __len__(self) -> int:
        return self.config.n_requests

    @property
    def n_requests(self) -> int:
        return self.config.n_requests

    @property
    def n_clients(self) -> int:
        """Distinct clients in the stream (== config.n_clients whenever
        ``n_requests >= n_clients``, by the generator's invariant)."""
        return self._n_distinct_clients

    @property
    def has_dense_clients(self) -> bool:
        return self._max_client + 1 == self._n_distinct_clients

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    def infinite_cache_bytes(self) -> int:
        """Total size of all unique (doc, version) bodies — the paper's
        "infinite cache size", matching
        :meth:`repro.traces.record.Trace.infinite_cache_bytes` of the
        materialised trace (``_pair_final`` holds exactly one
        authoritative size per unique pair)."""
        return int(self._pair_final.sum())

    @property
    def mean_request_size(self) -> float:
        """Mean request size; equals ``Trace.mean_request_size`` of the
        materialised trace exactly (integer column sums below 2**53 are
        exact in float64 regardless of summation order)."""
        return self._total_bytes / self.config.n_requests

    @property
    def duration(self) -> float:
        """Emitted ``timestamps[-1] - timestamps[0]`` (first stamp is 0)."""
        return self._last_timestamp

    # -- calibration (pass A) -----------------------------------------

    def _calibrate(self) -> None:
        cfg = self.config
        n = cfg.n_requests

        rng = np.random.default_rng(self.seed)
        if rng.bit_generator.state["bit_generator"] != "PCG64":
            raise RuntimeError(
                "TraceStream requires the PCG64 bit generator "
                "(numpy default_rng)"
            )

        # Clients: the verbatim _draw_clients call, so the master stream
        # is consumed exactly as generate_trace consumes it.
        clients = _draw_clients(cfg, rng)
        self._max_client = int(clients.max())
        self._n_distinct_clients = int(np.unique(clients).size)
        # Values are < n_clients, so int32 halves the retained footprint;
        # emission upcasts per chunk.
        self._clients = clients.astype(np.int32)
        self._state_stream = rng.bit_generator.state

        # The embedded-object Poisson array is drawn only after the full
        # lookback exponential array, and ziggurat consumption is
        # value-dependent — so its start state must be *discovered* by
        # streaming the exponentials once.
        self._state_embed: dict | None = None
        if cfg.embedded_per_page_mean > 0:
            scout = _generator_at(self._state_stream, 5 * n)
            for start in range(0, n, self.chunk_rows):
                scout.exponential(
                    cfg.self_lookback_mean, size=min(self.chunk_rows, n - start)
                )
            self._state_embed = scout.bit_generator.state

        # Generative loop: retain only the packed (doc, version) per
        # request, to recover final popularity counts and the unique
        # pair table that sizes are assigned over.
        packed = np.empty(n, dtype=np.int64)
        state_after_variates: dict | None = None
        for start, end, docs_c, versions_c, state_after_variates in self._loop_chunks(
            self.chunk_rows
        ):
            np.left_shift(docs_c, _VERSION_BITS, out=docs_c)
            np.bitwise_or(docs_c, versions_c, out=docs_c)
            packed[start:end] = docs_c

        # Sizes: replicate _assign_sizes per unique pair.  The packed
        # keys sort exactly like the original's docs*vmax+versions keys
        # (both strictly increasing in (doc, version)), so np.unique
        # yields the same pair order and the same inverse mapping.
        sizes_rng = _generator_at(state_after_variates)
        unique_keys, inverse = np.unique(packed, return_inverse=True)
        doc_ids = packed >> _VERSION_BITS
        n_docs = int(doc_ids.max()) + 1
        counts = np.bincount(doc_ids, minlength=n_docs).astype(np.float64)
        del packed, doc_ids

        noise = sizes_rng.lognormal(mean=0.0, sigma=cfg.size_sigma, size=n_docs)
        base = noise * np.power(
            np.maximum(counts, 1.0), -cfg.size_popularity_beta
        )
        pair_docs = unique_keys >> _VERSION_BITS
        pair_vers = unique_keys & ((1 << _VERSION_BITS) - 1)
        mut_noise = np.where(
            pair_vers == 0,
            1.0,
            sizes_rng.lognormal(
                mean=0.0, sigma=cfg.mutate_size_sigma, size=len(unique_keys)
            ),
        )
        pair_sizes = base[pair_docs] * mut_noise
        del noise, base, counts, pair_docs, pair_vers, mut_noise

        # The rescale divisor is the float64 pairwise sum over the
        # *per-request* expansion; expand transiently to reproduce the
        # exact same summation tree, then drop the copy.
        request_sizes = pair_sizes[inverse]
        scale = (cfg.mean_doc_size * n) / max(request_sizes.sum(), 1e-12)
        del request_sizes
        self._pair_final = np.maximum(
            np.rint(pair_sizes * scale), cfg.min_doc_size
        ).astype(np.int64)
        self._pair_idx = inverse.astype(
            np.int32 if len(unique_keys) <= np.iinfo(np.int32).max else np.int64
        )
        pair_counts = np.bincount(self._pair_idx, minlength=len(unique_keys))
        self._total_bytes = int((self._pair_final * pair_counts).sum())
        del pair_sizes, inverse, unique_keys, pair_counts

        # Timestamps: stream the gap exponentials once to learn the
        # normalisation constants (cumsum is a sequential scan, so a
        # carried accumulator reproduces it exactly).
        self._state_gaps = sizes_rng.bit_generator.state
        gaps_rng = _generator_at(self._state_gaps)
        carry = None
        first_gap = None
        for start in range(0, n, self.chunk_rows):
            k = min(self.chunk_rows, n - start)
            chunk = gaps_rng.exponential(1.0, size=k)
            if carry is None:
                first_gap = chunk[0]
                t = np.cumsum(chunk)
            else:
                t = np.cumsum(np.concatenate(([carry], chunk)))[1:]
            carry = t[-1]
        t_last = carry - first_gap  # t[-1] after the t -= t[0] shift
        self._span = t_last if t_last > 0 else 1.0

        self._diurnal_scale: np.float64 | None = None
        if cfg.diurnal_amplitude > 0.0:
            x_carry = None
            for _, _, x_chunk, x_carry in self._diurnal_chunks(self.chunk_rows):
                pass
            if x_carry > 0:
                self._diurnal_scale = cfg.duration / x_carry
            last = x_carry * self._diurnal_scale if self._diurnal_scale is not None else x_carry
            self._last_timestamp = float(last)
        else:
            self._last_timestamp = float((t_last / self._span) * cfg.duration)

    # -- the generative loop, chunked ---------------------------------

    def _loop_chunks(
        self, chunk_rows: int
    ) -> Iterator[tuple[int, int, np.ndarray, np.ndarray, dict]]:
        """Run the reference-stream loop, yielding per-chunk docs and
        versions.

        The loop body is a verbatim transliteration of
        :func:`repro.traces.synthetic._reference_stream`; only the
        variate arrays arrive in chunks, from cursors positioned on the
        same master stream.  The final tuple element is the
        bit-generator state after the last variate array completed
        (where ``generate_trace`` would begin the size draws).
        """
        cfg = self.config
        n = cfg.n_requests
        cur_kind = _generator_at(self._state_stream, 0)
        cur_private = _generator_at(self._state_stream, n)
        cur_pos = _generator_at(self._state_stream, 2 * n)
        cur_recent = _generator_at(self._state_stream, 3 * n)
        cur_mutate = _generator_at(self._state_stream, 4 * n)
        cur_lookback = _generator_at(self._state_stream, 5 * n)
        track_embedded = cfg.embedded_per_page_mean > 0
        cur_embed = (
            _generator_at(self._state_embed) if track_embedded else None
        )

        p_new = cfg.p_new
        p_self_edge = cfg.p_new + cfg.p_self
        recency_bias = cfg.recency_bias
        uniform_edge = cfg.recency_bias + cfg.uniform_doc_frac
        window_frac = cfg.recency_window_frac
        private_frac = cfg.private_doc_frac
        p_mutate = cfg.p_mutate

        shared_pool: list[int] = []
        shared_docs: list[int] = []
        history: list[list[int]] = [[] for _ in range(cfg.n_clients)]
        version_of: list[int] = []
        is_private: list[bool] = []
        embedded_of: list[list[int]] = []
        queue: list[list[int]] = [[] for _ in range(cfg.n_clients)]

        for start in range(0, n, chunk_rows):
            k = min(chunk_rows, n - start)
            client_list = self._clients[start : start + k].tolist()
            u_kind_l = cur_kind.random(k).tolist()
            u_private_l = cur_private.random(k).tolist()
            u_pos_l = cur_pos.random(k).tolist()
            u_recent_l = cur_recent.random(k).tolist()
            u_mutate_l = cur_mutate.random(k).tolist()
            lookback_l = (
                cur_lookback.exponential(cfg.self_lookback_mean, size=k)
                .astype(np.int64)
                .tolist()
            )
            n_embedded_l = (
                cur_embed.poisson(cfg.embedded_per_page_mean, size=k).tolist()
                if track_embedded
                else None
            )

            docs = np.empty(k, dtype=np.int64)
            versions = np.empty(k, dtype=np.int64)

            for i in range(k):
                c = client_list[i]
                hist = history[c]
                doc = -1
                from_queue = False
                if track_embedded and queue[c]:
                    doc = queue[c].pop()
                    from_queue = True
                else:
                    kind = u_kind_l[i]
                    if kind >= p_new:
                        if kind < p_self_edge:
                            if hist:
                                idx = len(hist) - 1 - min(
                                    lookback_l[i], len(hist) - 1
                                )
                                doc = hist[idx]
                        else:
                            if shared_pool:
                                pool_len = len(shared_pool)
                                r = u_recent_l[i]
                                if r < recency_bias:
                                    window = max(1, int(pool_len * window_frac))
                                    doc = shared_pool[
                                        pool_len - 1 - int(u_pos_l[i] * window)
                                    ]
                                elif r < uniform_edge:
                                    doc = shared_docs[
                                        int(u_pos_l[i] * len(shared_docs))
                                    ]
                                else:
                                    doc = shared_pool[int(u_pos_l[i] * pool_len)]
                if doc < 0:
                    doc = len(version_of)
                    version_of.append(0)
                    private = u_private_l[i] < private_frac
                    is_private.append(private)
                    if not private:
                        shared_docs.append(doc)
                    if track_embedded:
                        embedded_of.append([])
                        kids = []
                        for _ in range(n_embedded_l[i]):
                            kid = len(version_of)
                            version_of.append(0)
                            is_private.append(private)
                            embedded_of.append([])
                            kids.append(kid)
                        embedded_of[doc] = kids
                elif u_mutate_l[i] < p_mutate:
                    version_of[doc] += 1
                if not is_private[doc]:
                    shared_pool.append(doc)
                if track_embedded and not from_queue and embedded_of[doc]:
                    queue[c].extend(reversed(embedded_of[doc]))
                docs[i] = doc
                versions[i] = version_of[doc]
                hist.append(doc)

            after = (
                cur_embed.bit_generator.state
                if track_embedded
                else cur_lookback.bit_generator.state
            )
            yield start, start + k, docs, versions, after

    # -- timestamps, chunked ------------------------------------------

    def _uniform_t_chunks(
        self, chunk_rows: int
    ) -> Iterator[tuple[int, int, np.ndarray]]:
        """The homogeneous arrival times, chunked: the exact elementwise
        pipeline of ``_draw_timestamps`` up to ``uniform_t``."""
        cfg = self.config
        n = cfg.n_requests
        gaps_rng = _generator_at(self._state_gaps)
        carry = None
        first_gap = None
        for start in range(0, n, chunk_rows):
            k = min(chunk_rows, n - start)
            chunk = gaps_rng.exponential(1.0, size=k)
            if carry is None:
                first_gap = chunk[0]
                t = np.cumsum(chunk)
            else:
                t = np.cumsum(np.concatenate(([carry], chunk)))[1:]
            carry = t[-1]
            t = t - first_gap
            yield start, start + k, (t / self._span) * cfg.duration

    def _diurnal_chunks(
        self, chunk_rows: int
    ) -> Iterator[tuple[int, int, np.ndarray, np.float64]]:
        """Diurnal inversion, chunked: Newton is elementwise and the
        monotonic repair is a prefix max, carried across chunks.  Yields
        the *unscaled* x chunks plus the running maximum."""
        cfg = self.config
        a = cfg.diurnal_amplitude
        day = 86_400.0
        k_const = a * day / (2 * np.pi)
        x_carry = -np.inf
        for start, end, target in self._uniform_t_chunks(chunk_rows):
            x = target.copy()
            for _ in range(8):
                lam = x + k_const * (1 - np.cos(2 * np.pi * x / day))
                rate = 1 + a * np.sin(2 * np.pi * x / day)
                x = x - (lam - target) / np.maximum(rate, 1e-9)
            x = np.clip(x, 0.0, None)
            x[0] = max(x[0], x_carry)
            x = np.maximum.accumulate(x)
            x_carry = x[-1]
            yield start, end, x, x_carry

    def _timestamp_chunks(
        self, chunk_rows: int
    ) -> Iterator[np.ndarray]:
        cfg = self.config
        if cfg.diurnal_amplitude == 0.0:
            for _, _, ts in self._uniform_t_chunks(chunk_rows):
                yield ts
        else:
            scale = self._diurnal_scale
            for _, _, x, _ in self._diurnal_chunks(chunk_rows):
                yield x * scale if scale is not None else x

    # -- emission (pass B) --------------------------------------------

    def chunks(
        self, chunk_rows: int | None = None
    ) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(timestamps, clients, docs, sizes, versions)`` column
        chunks, dtype-identical to the materialised trace's columns.

        Re-iterable: each call replays the emission pass from the saved
        calibration state.  The chunk size does not affect the values.
        """
        step = int(chunk_rows) if chunk_rows else self.chunk_rows
        if step <= 0:
            raise ValueError(f"chunk_rows must be > 0, got {step}")
        ts_iter = self._timestamp_chunks(step)
        for start, end, docs, versions, _ in self._loop_chunks(step):
            ts = next(ts_iter)
            clients = self._clients[start:end].astype(np.int64)
            sizes = self._pair_final[self._pair_idx[start:end]]
            yield ts, clients, docs, sizes, versions

    def iter_rows(
        self, chunk_rows: int | None = None
    ) -> Iterator[tuple[float, int, int, int, int]]:
        """Iterate ``(timestamp, client, doc, size, version)`` scalar
        rows, exactly like ``Trace.iter_rows`` on the materialised
        trace."""
        for ts, clients, docs, sizes, versions in self.chunks(chunk_rows):
            yield from zip(
                ts.tolist(),
                clients.tolist(),
                docs.tolist(),
                sizes.tolist(),
                versions.tolist(),
            )

    def materialise(self) -> Trace:
        """Concatenate the stream into a :class:`Trace` (for tests and
        small workloads; defeats the purpose at scale)."""
        cols = list(zip(*self.chunks()))
        return Trace(
            timestamps=np.concatenate(cols[0]),
            clients=np.concatenate(cols[1]),
            docs=np.concatenate(cols[2]),
            sizes=np.concatenate(cols[3]),
            versions=np.concatenate(cols[4]),
            name=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceStream(name={self.name!r}, requests={self.n_requests}, "
            f"clients={self.n_clients}, seed={self.seed})"
        )


def stream_trace(
    config: SyntheticTraceConfig,
    seed: int | None = 0,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> TraceStream:
    """Build a :class:`TraceStream` for *config* — the streaming
    counterpart of :func:`repro.traces.synthetic.generate_trace`."""
    return TraceStream(config, seed=seed, chunk_rows=chunk_rows)
