"""Boston University client trace parser.

The BU traces (Cunha/Bestavros/Crovella 1995 and the 1998 follow-up
used by Barford et al.) were collected by an instrumented Mosaic/NCSA
browser on a shared computing facility.  Each record describes one URL
fetch by one client machine::

    <machine> <timestamp> <url> <size> <elapsed>

e.g.::

    beaker census 794397473.5 http://cs-www.bu.edu/ 2009 0.5

Some distributions prepend a user/session field; the parser accepts
five- or six-field lines and takes the machine name as the client key
(the paper simulates browser caches per client *machine*).
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator

from repro.traces._parse_common import ParseReport, resolve_errors, rows_to_trace
from repro.traces.record import Trace

__all__ = ["parse_bu_log", "write_bu_log"]


def _iter_lines(source: str | os.PathLike | Iterable[str]) -> Iterator[str]:
    if isinstance(source, (str, os.PathLike)) and os.path.exists(str(source)):
        with open(source, "r", encoding="utf-8", errors="replace") as fh:
            yield from fh
    elif isinstance(source, str):
        yield from source.splitlines()
    else:
        yield from source


def parse_bu_log(
    source: str | os.PathLike | Iterable[str],
    name: str = "bu",
    strict: bool = False,
    errors: str | None = None,
    report: ParseReport | None = None,
) -> Trace:
    """Parse a BU browser trace into a :class:`Trace`.

    ``errors``/``report`` behave as in
    :func:`~repro.traces.squid.parse_squid_log`: ``"raise"`` aborts on
    the first malformed line, ``"skip"`` quarantines it into *report*.
    """
    mode = resolve_errors(errors, strict)
    rows = []
    for lineno, line in enumerate(_iter_lines(source), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        try:
            if len(fields) >= 6:
                machine, _session, ts_s, url, size_s = fields[0], fields[1], fields[2], fields[3], fields[4]
            elif len(fields) == 5:
                machine, ts_s, url, size_s = fields[0], fields[1], fields[2], fields[3]
            else:
                raise ValueError("too few fields")
            ts = float(ts_s)
            size = int(size_s)
        except (IndexError, ValueError) as exc:
            if mode == "raise":
                raise ValueError(f"malformed BU trace line {lineno}: {line!r}") from exc
            if report is not None:
                report.record_bad(lineno, line)
            continue
        if size <= 0 or not url.startswith("http"):
            continue
        rows.append((ts, machine, url, size))
    if report is not None:
        report.parsed += len(rows)
    return rows_to_trace(rows, name)


def write_bu_log(trace: Trace, path: str | os.PathLike) -> None:
    """Write *trace* in the six-field BU format."""
    with open(path, "w", encoding="utf-8") as fh:
        for req in trace:
            url = trace.url_of(req.doc)
            fh.write(
                f"machine{req.client:04d} s0 {req.timestamp:.1f} {url} {req.size} 0.2\n"
            )
