"""Shared machinery for log-format parsers.

All parsers reduce a text log to rows of ``(timestamp, client_key,
url, size)`` and then call :func:`rows_to_trace`, which maps client
keys and URLs to dense integer ids and infers document versions from
observed size changes (the paper counts a hit on a size-changed
document as a miss, so a size change is exactly a version bump).

Real 2000-era logs are messy — truncated records at rotation
boundaries, sanitizer artifacts, stray binary.  Every parser therefore
takes an ``errors`` mode: ``"raise"`` aborts on the first malformed
line, ``"skip"`` quarantines it into a :class:`ParseReport` (count plus
the first few offending lines) and keeps going, so one torn line does
not discard a day of trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.traces.record import Trace

__all__ = ["ParseReport", "resolve_errors", "rows_to_trace"]

#: valid ``errors`` modes for the log parsers.
ERROR_MODES = ("raise", "skip")


def resolve_errors(errors: str | None, strict: bool) -> str:
    """Resolve a parser's ``errors`` mode against its legacy ``strict``
    flag: an explicit mode wins; otherwise ``strict=True`` means
    ``"raise"`` and the historical default means ``"skip"``."""
    if errors is None:
        return "raise" if strict else "skip"
    if errors not in ERROR_MODES:
        raise ValueError(f"errors must be one of {ERROR_MODES}, got {errors!r}")
    return errors


@dataclass
class ParseReport:
    """Quarantine record for one parse: what was kept, what was not.

    ``samples`` holds the first :attr:`MAX_SAMPLES` malformed lines
    with their line numbers — enough to diagnose a systematically
    broken log without retaining gigabytes of garbage.
    """

    MAX_SAMPLES = 10

    #: rows that made it into the trace.
    parsed: int = 0
    #: malformed lines quarantined (``errors="skip"`` only).
    skipped: int = 0
    #: ``(lineno, line)`` for the first few malformed lines.
    samples: list[tuple[int, str]] = field(default_factory=list)

    def record_bad(self, lineno: int, line: str) -> None:
        self.skipped += 1
        if len(self.samples) < self.MAX_SAMPLES:
            self.samples.append((lineno, line))

    @property
    def ok(self) -> bool:
        """True when nothing had to be quarantined."""
        return self.skipped == 0

    def summary(self) -> str:
        if self.ok:
            return f"{self.parsed} rows parsed, no malformed lines"
        lines = [
            f"{self.parsed} rows parsed, {self.skipped} malformed "
            f"line{'s' if self.skipped != 1 else ''} skipped; first "
            f"{len(self.samples)}:"
        ]
        for lineno, line in self.samples:
            shown = line if len(line) <= 120 else line[:117] + "..."
            lines.append(f"  line {lineno}: {shown!r}")
        return "\n".join(lines)


def rows_to_trace(
    rows: Iterable[tuple[float, str, str, int]],
    name: str,
) -> Trace:
    """Build a :class:`Trace` from parsed ``(ts, client, url, size)`` rows."""
    timestamps: list[float] = []
    clients: list[int] = []
    docs: list[int] = []
    sizes: list[int] = []
    versions: list[int] = []

    client_ids: dict[str, int] = {}
    doc_ids: dict[str, int] = {}
    last_size: dict[int, int] = {}
    version_of: dict[int, int] = {}
    urls: dict[int, str] = {}

    for ts, client_key, url, size in rows:
        cid = client_ids.get(client_key)
        if cid is None:
            cid = client_ids[client_key] = len(client_ids)
        did = doc_ids.get(url)
        if did is None:
            did = doc_ids[url] = len(doc_ids)
            urls[did] = url
            version_of[did] = 0
            last_size[did] = size
        elif size != last_size[did]:
            version_of[did] += 1
            last_size[did] = size
        timestamps.append(ts)
        clients.append(cid)
        docs.append(did)
        sizes.append(size)
        versions.append(version_of[did])

    order = np.argsort(np.asarray(timestamps, dtype=np.float64), kind="stable")
    return Trace(
        timestamps=np.asarray(timestamps, dtype=np.float64)[order],
        clients=np.asarray(clients, dtype=np.int64)[order],
        docs=np.asarray(docs, dtype=np.int64)[order],
        sizes=np.asarray(sizes, dtype=np.int64)[order],
        versions=np.asarray(versions, dtype=np.int64)[order],
        name=name,
        urls=urls,
    )
