"""Shared machinery for log-format parsers.

All parsers reduce a text log to rows of ``(timestamp, client_key,
url, size)`` and then call :func:`rows_to_trace`, which maps client
keys and URLs to dense integer ids and infers document versions from
observed size changes (the paper counts a hit on a size-changed
document as a miss, so a size change is exactly a version bump).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.traces.record import Trace

__all__ = ["rows_to_trace"]


def rows_to_trace(
    rows: Iterable[tuple[float, str, str, int]],
    name: str,
) -> Trace:
    """Build a :class:`Trace` from parsed ``(ts, client, url, size)`` rows."""
    timestamps: list[float] = []
    clients: list[int] = []
    docs: list[int] = []
    sizes: list[int] = []
    versions: list[int] = []

    client_ids: dict[str, int] = {}
    doc_ids: dict[str, int] = {}
    last_size: dict[int, int] = {}
    version_of: dict[int, int] = {}
    urls: dict[int, str] = {}

    for ts, client_key, url, size in rows:
        cid = client_ids.get(client_key)
        if cid is None:
            cid = client_ids[client_key] = len(client_ids)
        did = doc_ids.get(url)
        if did is None:
            did = doc_ids[url] = len(doc_ids)
            urls[did] = url
            version_of[did] = 0
            last_size[did] = size
        elif size != last_size[did]:
            version_of[did] += 1
            last_size[did] = size
        timestamps.append(ts)
        clients.append(cid)
        docs.append(did)
        sizes.append(size)
        versions.append(version_of[did])

    order = np.argsort(np.asarray(timestamps, dtype=np.float64), kind="stable")
    return Trace(
        timestamps=np.asarray(timestamps, dtype=np.float64)[order],
        clients=np.asarray(clients, dtype=np.int64)[order],
        docs=np.asarray(docs, dtype=np.int64)[order],
        sizes=np.asarray(sizes, dtype=np.int64)[order],
        versions=np.asarray(versions, dtype=np.int64)[order],
        name=name,
        urls=urls,
    )
