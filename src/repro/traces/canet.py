"""CA*netII parent-cache log parser.

Canada's CA*netII research network published sanitized parent proxy
logs in Squid native format, but unlike NLANR the client identifiers
were *consistent from day to day*, which is why the paper concatenates
two consecutive days of CA*netII logs into one trace.  This module
reuses the Squid parser and adds :func:`concatenate` for the multi-day
join (timestamps are shifted so days abut; client/doc id spaces are
unified by key).
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

import numpy as np

from repro.traces._parse_common import ParseReport
from repro.traces.record import Trace
from repro.traces.squid import parse_squid_log, write_squid_log

__all__ = ["parse_canet_log", "write_canet_log", "concatenate"]


def parse_canet_log(
    source: str | os.PathLike | Iterable[str],
    name: str = "canet",
    strict: bool = False,
    errors: str | None = None,
    report: ParseReport | None = None,
) -> Trace:
    """Parse a CA*netII sanitized log (Squid native format).

    ``errors``/``report`` behave as in :func:`parse_squid_log`.
    """
    return parse_squid_log(source, name=name, strict=strict, errors=errors, report=report)


def write_canet_log(trace: Trace, path: str | os.PathLike) -> None:
    """Write *trace* in the CA*netII (Squid native) format."""
    write_squid_log(trace, path)


def concatenate(traces: Sequence[Trace], name: str | None = None) -> Trace:
    """Concatenate multi-day traces into one.

    Client and document ids are matched *by URL / client key where
    available* (the CA*netII property); traces without URL maps are
    assumed to already share id spaces, as the paper's consistent
    client ids imply.  Timestamps of later days are shifted to start
    where the previous day ended.
    """
    if not traces:
        raise ValueError("need at least one trace")
    if len(traces) == 1:
        return traces[0]

    url_to_doc: dict[str, int] = {}
    parts = []
    offset = 0.0
    for t in traces:
        shift = offset - (float(t.timestamps[0]) if len(t) else 0.0)
        if t.urls:
            remap = np.arange(int(t.docs.max()) + 1 if len(t) else 0, dtype=np.int64)
            for old_id in np.unique(t.docs).tolist():
                url = t.url_of(old_id)
                if url not in url_to_doc:
                    url_to_doc[url] = len(url_to_doc)
                remap[old_id] = url_to_doc[url]
            docs = remap[t.docs]
        else:
            docs = t.docs
        parts.append(
            (
                t.timestamps + shift,
                t.clients,
                docs,
                t.sizes,
                t.versions,
            )
        )
        if len(t):
            offset = float(parts[-1][0][-1]) + 1.0

    merged = Trace(
        timestamps=np.concatenate([p[0] for p in parts]),
        clients=np.concatenate([p[1] for p in parts]),
        docs=np.concatenate([p[2] for p in parts]),
        sizes=np.concatenate([p[3] for p in parts]),
        versions=np.concatenate([p[4] for p in parts]),
        name=name or "+".join(t.name for t in traces),
        urls={v: k for k, v in url_to_doc.items()},
    )
    # Re-derive versions across the day boundary: the same URL with a
    # changed size on day two must be a new version, not a stale hit.
    return _rederive_versions(merged)


def _rederive_versions(trace: Trace) -> Trace:
    """Recompute versions from size changes per document, in time order."""
    versions = np.zeros(len(trace), dtype=np.int64)
    last_size: dict[int, int] = {}
    version_of: dict[int, int] = {}
    docs = trace.docs.tolist()
    sizes = trace.sizes.tolist()
    for i in range(len(docs)):
        d, s = docs[i], sizes[i]
        if d not in last_size:
            version_of[d] = 0
        elif last_size[d] != s:
            version_of[d] += 1
        last_size[d] = s
        versions[i] = version_of[d]
    return Trace(
        timestamps=trace.timestamps,
        clients=trace.clients,
        docs=trace.docs,
        sizes=trace.sizes,
        versions=versions,
        name=trace.name,
        urls=trace.urls,
    )
