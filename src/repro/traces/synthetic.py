"""Calibrated synthetic web workload generator.

The paper drives its simulations with five real proxy traces that are no
longer obtainable (NLANR published rolling seven-day logs; the BU and
CA*netII archives are gone).  This module generates synthetic traces
with the same *knobs that matter* for browser/proxy cache simulation:

* **Compulsory-miss rate** — the fraction of requests that are first
  accesses to a unique document.  This directly sets the trace's
  maximum achievable hit ratio (Table 1's "Max Hit Ratio"), since even
  an infinite cache misses every first access.
* **Popularity skew** — document re-references use preferential
  attachment (sampling uniformly from the stream of past shared
  references), which produces the Zipf-like popularity observed in web
  traces, plus a recency-biased component for temporal locality.
* **Size/popularity anti-correlation** — popular documents are smaller
  on average (``size ~ count^-beta``), which makes the maximum byte hit
  ratio lower than the maximum hit ratio, as in every row of Table 1.
* **Client affinity** — a fraction of each client's re-references go to
  its own recent history, and a fraction of newly created documents are
  *private* (never re-referenced by other clients).  Together these
  control how much browser-cache content is sharable, the quantity the
  paper sets out to measure.
* **Document mutation** — requests occasionally observe a changed
  document (new version/size); the simulator counts a hit on a stale
  copy as a miss, matching the paper's size-change rule.

Generation is two-pass: pass one builds the (client, doc, version)
reference stream with a single O(N) loop over pre-drawn random arrays;
pass two assigns sizes per unique (doc, version) from final popularity
counts, fully vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.churn import MassChurnSchedule
from repro.traces.record import Trace
from repro.util.rng import derive_seed, make_rng
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "SyntheticTraceConfig",
    "generate_trace",
    "FlashCrowdSpec",
    "inject_flash_crowd",
    "mass_churn_schedule",
]


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Knobs for :func:`generate_trace`.

    Defaults produce a mid-sized NLANR-like workload; the per-paper
    profiles in :mod:`repro.traces.profiles` override them per trace.
    """

    n_requests: int = 100_000
    n_clients: int = 64
    #: probability that a request introduces a brand-new document
    #: (compulsory miss rate; max hit ratio ~= 1 - p_new - p_mutate).
    p_new: float = 0.45
    #: probability that a re-reference goes to the client's own recent
    #: history rather than the global shared pool.
    p_self: float = 0.25
    #: probability that a newly created document is private to its
    #: creator (excluded from the shared reference pool).
    private_doc_frac: float = 0.15
    #: probability that a re-referenced document has mutated (version
    #: bump; a cached copy of the old version becomes a miss).
    p_mutate: float = 0.01
    #: global re-references: probability of sampling from the recent
    #: window instead of the whole history (temporal locality).
    recency_bias: float = 0.3
    #: global re-references: probability of sampling uniformly over
    #: *distinct* shared documents instead of by popularity.  This is
    #: the mid-tail "revisit" traffic with long reuse distances — the
    #: documents that a small proxy cache has already evicted but that
    #: still sit in some browser cache, i.e. the paper's sharable
    #: browser locality.
    uniform_doc_frac: float = 0.25
    #: size of the recent window as a fraction of the pool.
    recency_window_frac: float = 0.05
    #: mean look-back depth into the client's own history for self
    #: re-references (exponentially distributed).
    self_lookback_mean: float = 40.0
    #: mean document size in bytes (the overall trace averages to this).
    mean_doc_size: float = 12_000.0
    #: lognormal sigma for per-document size noise.
    size_sigma: float = 1.2
    #: size/popularity anti-correlation: size ~ count**-beta.
    size_popularity_beta: float = 0.45
    #: lognormal sigma applied when a document mutates to a new size.
    mutate_size_sigma: float = 0.3
    #: mean number of embedded objects per page (Poisson).  When a
    #: client fetches a page, its embedded objects (images, frames —
    #: fixed per page) are requested immediately after, giving the
    #: trace the sequential structure that prefetch predictors exploit.
    #: 0 disables the feature (the calibrated paper profiles use 0 and
    #: are unaffected).
    embedded_per_page_mean: float = 0.0
    #: Dirichlet concentration for per-client activity (lower = a few
    #: clients dominate, as in real proxy logs).
    client_activity_alpha: float = 0.8
    #: total trace duration in seconds (one day by default).
    duration: float = 86_400.0
    #: strength of the diurnal load pattern in [0, 1): 0 = flat Poisson
    #: arrivals, 0.8 = pronounced day/night cycle (request rate swings
    #: between 1±0.8 of the mean over each 24 h period).
    diurnal_amplitude: float = 0.0
    #: minimum document size in bytes.
    min_doc_size: int = 64
    name: str = "synthetic"

    def __post_init__(self) -> None:
        check_positive("n_requests", self.n_requests)
        check_positive("n_clients", self.n_clients)
        check_probability("p_new", self.p_new)
        check_probability("p_self", self.p_self)
        check_probability("private_doc_frac", self.private_doc_frac)
        check_probability("p_mutate", self.p_mutate)
        check_probability("recency_bias", self.recency_bias)
        check_probability("uniform_doc_frac", self.uniform_doc_frac)
        check_fraction("recency_window_frac", self.recency_window_frac)
        check_positive("self_lookback_mean", self.self_lookback_mean)
        check_non_negative("embedded_per_page_mean", self.embedded_per_page_mean)
        check_positive("mean_doc_size", self.mean_doc_size)
        check_positive("duration", self.duration)
        check_positive("min_doc_size", self.min_doc_size)
        if not (0.0 <= self.diurnal_amplitude < 1.0):
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1), got {self.diurnal_amplitude}"
            )
        if self.p_new + self.p_self > 1.0:
            raise ValueError(
                "p_new + p_self must not exceed 1 "
                f"(got {self.p_new} + {self.p_self})"
            )

    def scaled(self, requests_frac: float) -> "SyntheticTraceConfig":
        """Return a config with the request count scaled by a factor."""
        check_positive("requests_frac", requests_frac)
        return replace(self, n_requests=max(1, int(self.n_requests * requests_frac)))


def generate_trace(
    config: SyntheticTraceConfig,
    seed: int | np.random.Generator | None = 0,
) -> Trace:
    """Generate a synthetic :class:`Trace` from *config*.

    Deterministic for a given ``(config, seed)`` pair.
    """
    rng = make_rng(seed)

    clients = _draw_clients(config, rng)
    docs, versions = _reference_stream(config, rng, clients)
    sizes = _assign_sizes(config, rng, docs, versions)
    timestamps = _draw_timestamps(config, rng)

    return Trace(
        timestamps=timestamps,
        clients=clients,
        docs=docs,
        sizes=sizes,
        versions=versions,
        name=config.name,
    )


# ---------------------------------------------------------------------------
# pass 0: clients and timestamps
# ---------------------------------------------------------------------------


def _draw_clients(config: SyntheticTraceConfig, rng: np.random.Generator) -> np.ndarray:
    """Draw the requesting client for each request.

    Activity is skewed via a Dirichlet draw, then every client is
    guaranteed to appear at least once (the paper's client counts are
    counts of *active* clients).

    The repair step that plants missing clients is *count-aware*: a
    drawn slot is only overwritten when its current occupant appears at
    least twice, and the draw loops to fixpoint until no client is
    missing.  (A single blind pass could overwrite the sole occurrence
    of another client, silently re-violating the invariant it was
    repairing — at ``n_requests=30, n_clients=25`` that lost clients on
    294 of 300 seeds.)  The repair only runs when the initial draw
    violates the invariant, so non-violating draws consume exactly the
    same RNG stream as before and stay bit-identical.
    """
    weights = rng.dirichlet(np.full(config.n_clients, config.client_activity_alpha))
    clients = rng.choice(config.n_clients, size=config.n_requests, p=weights)
    if config.n_requests >= config.n_clients:
        counts = np.bincount(clients, minlength=config.n_clients)
        missing = np.flatnonzero(counts == 0)
        while missing.size:
            slots = rng.choice(config.n_requests, size=missing.size, replace=False)
            for slot, client in zip(slots.tolist(), missing.tolist()):
                occupant = int(clients[slot])
                if counts[occupant] < 2:
                    continue  # sole occurrence: stealing it loses a client
                counts[occupant] -= 1
                clients[slot] = client
                counts[client] += 1
            missing = np.flatnonzero(counts == 0)
    return clients.astype(np.int64)


def _draw_timestamps(config: SyntheticTraceConfig, rng: np.random.Generator) -> np.ndarray:
    """Poisson arrivals normalised to span exactly ``config.duration``.

    With ``diurnal_amplitude > 0`` the arrival process is an
    inhomogeneous Poisson with a sinusoidal 24-hour intensity,
    generated by inverse-transforming the homogeneous arrivals through
    the cumulative rate function.
    """
    gaps = rng.exponential(1.0, size=config.n_requests)
    t = np.cumsum(gaps)
    t -= t[0]
    span = t[-1] if t[-1] > 0 else 1.0
    uniform_t = (t / span) * config.duration
    a = config.diurnal_amplitude
    if a == 0.0:
        return uniform_t
    # Invert Lambda(t) = t - (a T_d / 2 pi) cos-terms numerically: the
    # cumulative intensity for rate(t) = 1 + a sin(2 pi t / T_d) is
    # Lambda(t) = t + (a T_d / 2 pi)(1 - cos(2 pi t / T_d)); a few
    # Newton steps invert it to better than a second.
    day = 86_400.0
    k = a * day / (2 * np.pi)
    target = uniform_t
    x = target.copy()
    for _ in range(8):
        lam = x + k * (1 - np.cos(2 * np.pi * x / day))
        rate = 1 + a * np.sin(2 * np.pi * x / day)
        x = x - (lam - target) / np.maximum(rate, 1e-9)
    x = np.maximum.accumulate(np.clip(x, 0.0, None))
    if x[-1] > 0:
        x *= config.duration / x[-1]
    return x


# ---------------------------------------------------------------------------
# pass 1: the reference stream
# ---------------------------------------------------------------------------


def _reference_stream(
    config: SyntheticTraceConfig,
    rng: np.random.Generator,
    clients: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Build document ids and versions for every request.

    A single Python loop over pre-drawn uniform variates; the state is
    plain lists/dicts.  The process is inherently sequential
    (preferential attachment feeds popularity back into the pool), so
    this loop cannot be vectorised; pre-drawing every random variate
    keeps it fast.
    """
    n = config.n_requests
    u_kind = rng.random(n)          # new / self / global decision
    u_private = rng.random(n)       # private flag for new docs
    u_pos = rng.random(n)           # position within the chosen pool
    u_recent = rng.random(n)        # recency-window / uniform decision
    u_mutate = rng.random(n)        # mutation decision
    lookback = rng.exponential(config.self_lookback_mean, size=n).astype(np.int64)
    if config.embedded_per_page_mean > 0:
        n_embedded = rng.poisson(config.embedded_per_page_mean, size=n)
    else:
        n_embedded = None

    p_new = config.p_new
    p_self_edge = config.p_new + config.p_self
    recency_bias = config.recency_bias
    uniform_edge = config.recency_bias + config.uniform_doc_frac
    window_frac = config.recency_window_frac
    private_frac = config.private_doc_frac
    p_mutate = config.p_mutate

    # shared_pool holds one entry per reference to a shared document, so
    # uniform sampling from it is preferential attachment; shared_docs
    # holds each shared document once, for uniform mid-tail revisits.
    shared_pool: list[int] = []
    shared_docs: list[int] = []
    history: list[list[int]] = [[] for _ in range(config.n_clients)]
    version_of: list[int] = []      # indexed by doc id
    is_private: list[bool] = []     # indexed by doc id
    embedded_of: list[list[int]] = []   # page doc id -> embedded doc ids
    queue: list[list[int]] = [[] for _ in range(config.n_clients)]

    docs = np.empty(n, dtype=np.int64)
    versions = np.empty(n, dtype=np.int64)

    client_list = clients.tolist()
    u_kind_l = u_kind.tolist()
    u_private_l = u_private.tolist()
    u_pos_l = u_pos.tolist()
    u_recent_l = u_recent.tolist()
    u_mutate_l = u_mutate.tolist()
    lookback_l = lookback.tolist()

    track_embedded = n_embedded is not None
    n_embedded_l = n_embedded.tolist() if track_embedded else None

    for i in range(n):
        c = client_list[i]
        hist = history[c]
        doc = -1
        from_queue = False
        if track_embedded and queue[c]:
            # Embedded objects of the page just visited come first.
            doc = queue[c].pop()
            from_queue = True
        else:
            kind = u_kind_l[i]
            if kind >= p_new:
                if kind < p_self_edge:
                    if hist:
                        idx = len(hist) - 1 - min(lookback_l[i], len(hist) - 1)
                        doc = hist[idx]
                else:
                    if shared_pool:
                        pool_len = len(shared_pool)
                        r = u_recent_l[i]
                        if r < recency_bias:
                            window = max(1, int(pool_len * window_frac))
                            doc = shared_pool[pool_len - 1 - int(u_pos_l[i] * window)]
                        elif r < uniform_edge:
                            doc = shared_docs[int(u_pos_l[i] * len(shared_docs))]
                        else:
                            doc = shared_pool[int(u_pos_l[i] * pool_len)]
        if doc < 0:
            # New document, either by choice or because the pools are
            # still empty early in the trace.
            doc = len(version_of)
            version_of.append(0)
            private = u_private_l[i] < private_frac
            is_private.append(private)
            if not private:
                shared_docs.append(doc)
            if track_embedded:
                embedded_of.append([])
                kids = []
                for _ in range(n_embedded_l[i]):
                    kid = len(version_of)
                    version_of.append(0)
                    is_private.append(private)
                    embedded_of.append([])
                    kids.append(kid)
                embedded_of[doc] = kids
        elif u_mutate_l[i] < p_mutate:
            # The document changed at the origin since it was last seen.
            version_of[doc] += 1
        if not is_private[doc]:
            # Every reference to a shared doc reinforces its popularity.
            shared_pool.append(doc)
        if track_embedded and not from_queue and embedded_of[doc]:
            # Visiting a page queues its embedded objects (pop() takes
            # from the end, so reverse to preserve document order).
            queue[c].extend(reversed(embedded_of[doc]))
        docs[i] = doc
        versions[i] = version_of[doc]
        hist.append(doc)

    return docs, versions


# ---------------------------------------------------------------------------
# pass 2: sizes
# ---------------------------------------------------------------------------


def _assign_sizes(
    config: SyntheticTraceConfig,
    rng: np.random.Generator,
    docs: np.ndarray,
    versions: np.ndarray,
) -> np.ndarray:
    """Assign a body size to every request.

    Sizes are constant per (doc, version).  A document's base size is
    lognormal noise damped by its final reference count
    (``count**-beta``), producing the size/popularity anti-correlation
    that separates byte hit ratios from request hit ratios.  The whole
    trace is then rescaled so the mean request size matches
    ``config.mean_doc_size``.
    """
    n_docs = int(docs.max()) + 1 if len(docs) else 0
    counts = np.bincount(docs, minlength=n_docs).astype(np.float64)

    noise = rng.lognormal(mean=0.0, sigma=config.size_sigma, size=n_docs)
    base = noise * np.power(np.maximum(counts, 1.0), -config.size_popularity_beta)

    # Per-version perturbation: version v of doc d has size
    # base[d] * mut_noise(d, v).  Enumerate unique (doc, version) pairs.
    vmax = int(versions.max()) + 1 if len(versions) else 1
    pair_key = docs * vmax + versions
    unique_keys, inverse = np.unique(pair_key, return_inverse=True)
    pair_docs = unique_keys // vmax
    pair_vers = unique_keys % vmax
    mut_noise = np.where(
        pair_vers == 0,
        1.0,
        rng.lognormal(mean=0.0, sigma=config.mutate_size_sigma, size=len(unique_keys)),
    )
    pair_sizes = base[pair_docs] * mut_noise

    request_sizes = pair_sizes[inverse]
    scale = (config.mean_doc_size * len(docs)) / max(request_sizes.sum(), 1e-12)
    request_sizes = np.maximum(
        np.rint(request_sizes * scale), config.min_doc_size
    ).astype(np.int64)
    return request_sizes


# ---------------------------------------------------------------------------
# surge generators: flash crowds and correlated mass churn
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlashCrowdSpec:
    """One document going viral during ``[start, end)``.

    ``multiplier`` scales the document's in-window popularity: requests
    inside the window are redirected to the target until it has
    ``multiplier`` times its original in-window reference count.
    ``doc`` names the target explicitly; ``None`` picks the most
    popular document seen up to the end of the window (the realistic
    case — things that go viral were already warm).
    """

    start: float
    end: float
    multiplier: float = 10.0
    doc: int | None = None

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(
                f"flash-crowd window must satisfy 0 <= start < end, got "
                f"{(self.start, self.end)!r}"
            )
        if not self.multiplier > 1.0:
            raise ValueError(
                f"flash-crowd multiplier must be > 1, got {self.multiplier!r}"
            )
        if self.doc is not None and self.doc < 0:
            raise ValueError(f"flash-crowd doc must be >= 0, got {self.doc!r}")


def inject_flash_crowd(
    trace: Trace, spec: FlashCrowdSpec, seed: int = 0
) -> Trace:
    """Return a copy of *trace* with a flash-crowd spike injected.

    A deterministic post-transform on a materialised trace (the
    streaming generator stays bit-identical to :func:`generate_trace`):
    randomly chosen in-window requests — seeded from ``(seed, spec)``
    via :func:`~repro.util.rng.derive_seed` — are redirected to the
    target document, which keeps clients, timestamps, and the request
    count untouched.  A redirected request observes the target's
    version (and per-version size) as of its position in the stream,
    preserving the sizes-constant-per-(doc, version) property.
    """
    timestamps = trace.timestamps
    in_window = np.flatnonzero(
        (timestamps >= spec.start) & (timestamps < spec.end)
    )
    if in_window.size == 0:
        return trace
    docs = trace.docs.copy()
    target = spec.doc
    if target is None:
        seen = docs[timestamps < spec.end]
        if seen.size == 0:
            seen = docs
        target = int(np.argmax(np.bincount(seen)))
    occurrences = np.flatnonzero(trace.docs == target)
    if occurrences.size == 0:
        raise ValueError(
            f"flash-crowd doc {target} never occurs in trace {trace.name!r}"
        )
    already = int(np.count_nonzero(docs[in_window] == target))
    wanted = int(round(spec.multiplier * max(already, 1)))
    victims = in_window[docs[in_window] != target]
    extra = min(wanted - already, victims.size)
    if extra > 0:
        rng = make_rng(
            derive_seed(
                seed, "flash-crowd", spec.start, spec.end,
                spec.multiplier, target,
            )
        )
        chosen = rng.choice(victims, size=extra, replace=False)
        # Each redirected request observes the target's state as of its
        # stream position (the last preceding occurrence; requests
        # before the first occurrence see its initial state).
        source = np.maximum(np.searchsorted(occurrences, chosen) - 1, 0)
        source_idx = occurrences[source]
        docs[chosen] = target
        versions = trace.versions.copy()
        sizes = trace.sizes.copy()
        versions[chosen] = trace.versions[source_idx]
        sizes[chosen] = trace.sizes[source_idx]
    else:
        versions = trace.versions.copy()
        sizes = trace.sizes.copy()
    return Trace(
        timestamps=timestamps.copy(),
        clients=trace.clients.copy(),
        docs=docs,
        sizes=sizes,
        versions=versions,
        name=f"{trace.name}:flash",
    )


def mass_churn_schedule(
    duration: float,
    n_waves: int = 3,
    offline_seconds: float = 600.0,
    jitter: float = 0.25,
    seed: int = 0,
) -> MassChurnSchedule:
    """Correlated mass-churn waves for a flapper cohort.

    ``n_waves`` offline windows of ``offline_seconds`` each, centred at
    evenly spaced points over ``duration`` with each centre jittered by
    up to ``jitter`` of the inter-wave spacing — deterministic per
    ``(arguments, seed)`` via :func:`~repro.util.rng.derive_seed`.
    Overlapping windows are merged, so the result is always a valid
    :class:`~repro.core.churn.MassChurnSchedule`.
    """
    check_positive("duration", duration)
    check_positive("n_waves", n_waves)
    check_positive("offline_seconds", offline_seconds)
    check_fraction("jitter", jitter)
    rng = make_rng(
        derive_seed(seed, "mass-churn", duration, n_waves, offline_seconds)
    )
    spacing = duration / (n_waves + 1)
    centers = np.arange(1, n_waves + 1) * spacing
    centers = centers + rng.uniform(-jitter, jitter, size=n_waves) * spacing
    half = offline_seconds / 2.0
    windows: list[tuple[float, float]] = []
    for center in np.sort(centers):
        start = max(0.0, float(center) - half)
        end = min(duration, float(center) + half)
        if end <= start:
            continue
        if windows and start < windows[-1][1]:
            windows[-1] = (windows[-1][0], max(windows[-1][1], end))
        else:
            windows.append((start, end))
    return MassChurnSchedule(windows=tuple(windows))
