"""repro — Browsers-Aware Proxy Server (BAPS).

A full reproduction of Xiao, Zhang & Xu, *"On Reliable and Scalable
Peer-to-Peer Web Document Sharing"* (IPDPS 2002): the browsers-aware
proxy caching architecture, the five caching organizations it is
evaluated against, calibrated synthetic versions of the paper's five
web traces, the LAN/storage timing models, and the §6 reliability
protocols (MD5/RSA digital watermarks, anonymized transfers).

Quickstart::

    import repro

    trace = repro.load_paper_trace("NLANR-uc")
    config = repro.SimulationConfig.relative(trace, proxy_frac=0.10)
    result = repro.simulate(trace, repro.Organization.BROWSERS_AWARE_PROXY, config)
    print(f"hit ratio {result.hit_ratio:.2%}, byte hit ratio {result.byte_hit_ratio:.2%}")
"""

from repro.core import (
    HitLocation,
    Organization,
    SimulationConfig,
    SimulationResult,
    Simulator,
    simulate,
    run_policy_sweep,
    run_size_sweep,
    run_scaling_experiment,
    minimum_browser_capacity,
    average_browser_capacity,
)
from repro.traces import (
    Trace,
    Request,
    SyntheticTraceConfig,
    generate_trace,
    load_paper_trace,
    get_profile,
    PAPER_TRACES,
    compute_stats,
)
from repro.cache import make_cache, LRUCache, TieredLRUCache
from repro.index import BrowserIndex, BloomFilter, PeriodicUpdatePolicy
from repro.network import EthernetModel, MemoryDiskModel, WANModel
from repro.security import (
    SecureTransferProtocol,
    SecurityOverheadModel,
    WatermarkAuthority,
    generate_keypair,
    md5_digest,
)

__version__ = "1.0.0"

__all__ = [
    "HitLocation",
    "Organization",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "simulate",
    "run_policy_sweep",
    "run_size_sweep",
    "run_scaling_experiment",
    "minimum_browser_capacity",
    "average_browser_capacity",
    "Trace",
    "Request",
    "SyntheticTraceConfig",
    "generate_trace",
    "load_paper_trace",
    "get_profile",
    "PAPER_TRACES",
    "compute_stats",
    "make_cache",
    "LRUCache",
    "TieredLRUCache",
    "BrowserIndex",
    "BloomFilter",
    "PeriodicUpdatePolicy",
    "EthernetModel",
    "MemoryDiskModel",
    "WANModel",
    "SecureTransferProtocol",
    "SecurityOverheadModel",
    "WatermarkAuthority",
    "generate_keypair",
    "md5_digest",
    "__version__",
]
