"""The browser index file — the core BAPS data structure (paper §2, §5).

The proxy maintains a directory of every client browser cache: for each
cached object, the client id, a 16-byte MD5 signature of the URL, and a
timestamp/TTL.  Two maintenance disciplines from the paper are
implemented:

* **invalidation** — an index item is added when the proxy sends a
  document to a browser, and removed when the client sends an
  invalidation message on eviction (always-fresh index), and
* **periodic** — clients batch their updates and flush when a delay
  threshold is crossed (a fixed percentage of cached documents are
  new, per Fan et al.), which makes the index *stale*: lookups can
  return false hits (object already evicted) and suffer false misses
  (object cached but not yet reported).

:mod:`repro.index.bloom` adds the compressed Summary-Cache-style
per-client Bloom filter representation the paper cites for reducing
index memory.
"""

from repro.index.entry import IndexEntry
from repro.index.browser_index import BrowserIndex, IndexLookup, UpdateMode
from repro.index.signatures import url_signature, IndexSpaceModel
from repro.index.bloom import BloomFilter, BloomIndex
from repro.index.staleness import PeriodicUpdatePolicy, StalenessStats
from repro.index.checkpoint import CheckpointPolicy, IndexCheckpointer, IndexSnapshot

__all__ = [
    "IndexEntry",
    "BrowserIndex",
    "IndexLookup",
    "UpdateMode",
    "url_signature",
    "IndexSpaceModel",
    "BloomFilter",
    "BloomIndex",
    "PeriodicUpdatePolicy",
    "StalenessStats",
    "CheckpointPolicy",
    "IndexCheckpointer",
    "IndexSnapshot",
]
