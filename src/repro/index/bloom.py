"""Bloom filters for compressed browser-cache summaries.

The paper cites Fan et al.'s Summary Cache and the URL-compression work
of Michel et al. as ways to shrink the browser index ("a storage of
2 MB is sufficient for the 100 browsers with a tolerant inaccuracy").
:class:`BloomIndex` keeps one Bloom filter per client; membership
queries can return false positives (the "tolerant inaccuracy"), never
false negatives — unless deletions have occurred since the last
rebuild, which is exactly the staleness the periodic update mode
models.

Hashing uses double hashing over a 64-bit mix of the key (Kirsch &
Mitzenmacher: two independent hashes generate k), so adds and queries
are O(k) with no digest computation in the hot path.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive

__all__ = ["BloomFilter", "BloomIndex"]


def _mix64(x: int) -> int:
    """SplitMix64 finaliser — a fast, well-distributed 64-bit mix."""
    x &= 0xFFFFFFFFFFFFFFFF
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class BloomFilter:
    """A fixed-size Bloom filter over integer keys."""

    def __init__(self, n_bits: int, n_hashes: int = 8) -> None:
        check_positive("n_bits", n_bits)
        check_positive("n_hashes", n_hashes)
        self.n_bits = int(n_bits)
        self.n_hashes = int(n_hashes)
        self._bits = np.zeros((self.n_bits + 63) // 64, dtype=np.uint64)
        self.n_added = 0

    @classmethod
    def for_capacity(cls, capacity: int, bits_per_item: float = 16.0) -> "BloomFilter":
        """Size a filter for *capacity* items; the optimal hash count is
        ``bits_per_item * ln 2``."""
        check_positive("capacity", capacity)
        n_bits = max(64, int(capacity * bits_per_item))
        k = max(1, int(round(bits_per_item * 0.6931)))
        return cls(n_bits, k)

    def _positions(self, key: int):
        h1 = _mix64(key)
        h2 = _mix64(h1 ^ 0x9E3779B97F4A7C15) | 1
        for i in range(self.n_hashes):
            yield (h1 + i * h2) % self.n_bits

    def add(self, key: int) -> None:
        for pos in self._positions(key):
            self._bits[pos >> 6] |= np.uint64(1 << (pos & 63))
        self.n_added += 1

    def __contains__(self, key: int) -> bool:
        for pos in self._positions(key):
            if not (int(self._bits[pos >> 6]) >> (pos & 63)) & 1:
                return False
        return True

    def clear(self) -> None:
        self._bits[:] = 0
        self.n_added = 0

    def copy(self) -> "BloomFilter":
        """Independent deep copy (checkpointing snapshots filters)."""
        out = BloomFilter(self.n_bits, self.n_hashes)
        out._bits = self._bits.copy()
        out.n_added = self.n_added
        return out

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Bitwise OR of two same-shaped filters."""
        if (self.n_bits, self.n_hashes) != (other.n_bits, other.n_hashes):
            raise ValueError("can only union identically shaped Bloom filters")
        out = BloomFilter(self.n_bits, self.n_hashes)
        out._bits = self._bits | other._bits
        out.n_added = self.n_added + other.n_added
        return out

    def fill_fraction(self) -> float:
        """Fraction of bits set."""
        set_bits = int(np.bitwise_count(self._bits).sum())
        return set_bits / self.n_bits

    def false_positive_rate(self) -> float:
        """Estimated FP probability at the current fill level."""
        return self.fill_fraction() ** self.n_hashes

    @property
    def size_bytes(self) -> int:
        return self._bits.nbytes


class BloomIndex:
    """Per-client Bloom summaries of browser caches.

    A compressed alternative to the exact
    :class:`~repro.index.browser_index.BrowserIndex`: lookups return
    *candidate* holders which the engine must validate against the true
    caches (a false positive behaves exactly like a stale-index false
    hit).  Deletions are handled by periodic rebuild from the true
    cache contents, as Summary Cache does.
    """

    def __init__(
        self,
        n_clients: int,
        expected_docs_per_client: int,
        bits_per_doc: float = 16.0,
    ) -> None:
        check_positive("n_clients", n_clients)
        check_positive("expected_docs_per_client", expected_docs_per_client)
        self.n_clients = n_clients
        self._filters = [
            BloomFilter.for_capacity(expected_docs_per_client, bits_per_doc)
            for _ in range(n_clients)
        ]
        self._rr = 0

    def add(self, client: int, doc: int) -> None:
        self._filters[client].add(doc)

    def rebuild(self, client: int, docs) -> None:
        """Reset *client*'s filter from its true cache contents."""
        f = self._filters[client]
        f.clear()
        for doc in docs:
            f.add(doc)

    def candidates(self, doc: int, exclude_client: int) -> list[int]:
        """Clients whose summaries claim *doc* (may include false
        positives)."""
        return [
            c
            for c in range(self.n_clients)
            if c != exclude_client and doc in self._filters[c]
        ]

    def choose(self, doc: int, exclude_client: int) -> int | None:
        """Round-robin choice among candidate holders."""
        cands = self.candidates(doc, exclude_client)
        if not cands:
            return None
        self._rr += 1
        return cands[self._rr % len(cands)]

    def footprint_bytes(self) -> int:
        return sum(f.size_bytes for f in self._filters)
