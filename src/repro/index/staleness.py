"""Delayed index updates (paper §5, citing Fan et al.'s Summary Cache).

"The update of URL indices among cooperative caches can be delayed
until a fixed percentage of cached documents are new.  The delay
threshold of 1% to 10% … results in a tolerable degradation of the
cache hit ratios."

:class:`PeriodicUpdatePolicy` decides when a client's batched index
updates are flushed to the proxy: when the number of unreported changes
exceeds ``threshold`` × (documents currently cached), or when
``max_interval`` seconds have passed since the last flush (the paper's
"roughly every 5 minutes to an hour").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_fraction, check_positive

__all__ = ["PeriodicUpdatePolicy", "ClientUpdateState", "StalenessStats"]


@dataclass
class ClientUpdateState:
    """Per-client bookkeeping for the periodic update policy."""

    pending_changes: int = 0
    cached_docs: int = 0
    last_flush: float = 0.0


@dataclass(frozen=True)
class PeriodicUpdatePolicy:
    """Flush when unreported changes exceed a fraction of the cache.

    ``min_docs`` floors the basis so a nearly empty cache still batches
    a handful of changes per message instead of flushing every event.
    """

    threshold: float = 0.10
    max_interval: float | None = None
    min_docs: int = 20

    def __post_init__(self) -> None:
        check_fraction("threshold", self.threshold)
        if self.max_interval is not None:
            check_positive("max_interval", self.max_interval)

    def should_flush(self, state: ClientUpdateState, now: float) -> bool:
        if state.pending_changes == 0:
            return False
        if self.max_interval is not None and now - state.last_flush >= self.max_interval:
            return True
        basis = max(state.cached_docs, self.min_docs)
        return state.pending_changes >= self.threshold * basis


@dataclass
class StalenessStats:
    """Observed consequences of a stale index.

    * *false hits*: the index named a holder that no longer has the
      document (or has a different version) — the request pays an extra
      round trip and then goes to the origin;
    * *false misses*: a browser held the document but the index did not
      know yet — a lost sharing opportunity;
    * *flushes*: batched update messages sent to the proxy.
    """

    false_hits: int = 0
    false_misses: int = 0
    flushes: int = 0
    flushed_items: int = 0
    #: subset of ``false_hits`` hitting entries restored from a crash
    #: checkpoint and not refreshed since — staleness the recovery
    #: machinery itself introduced.
    false_hits_after_restore: int = 0

    def merged(self, other: "StalenessStats") -> "StalenessStats":
        return StalenessStats(
            false_hits=self.false_hits + other.false_hits,
            false_misses=self.false_misses + other.false_misses,
            flushes=self.flushes + other.flushes,
            flushed_items=self.flushed_items + other.flushed_items,
            false_hits_after_restore=self.false_hits_after_restore
            + other.false_hits_after_restore,
        )
