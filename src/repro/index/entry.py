"""Index entry: one (client, document) item of the browser index file.

The paper: "Each item of the index file includes the ID number of a
client machine, the URL including the full path name of the cached file
object, and, if any, a time stamp of the file or the TTL provided by
the data source."  URLs are stored as 16-byte MD5 signatures (§5).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IndexEntry"]


@dataclass(slots=True)
class IndexEntry:
    """One browser-index item.

    A plain (non-frozen) slots dataclass: construction sits on the
    replay hot path — one entry per browser-cache insert — and the
    frozen-dataclass ``__setattr__`` indirection costs real time there.
    By convention entries are never mutated after construction
    (checkpoint snapshots share them), which is what ``frozen=True``
    used to enforce.
    """

    client: int
    doc: int
    version: int
    size: int
    timestamp: float
    ttl: float | None = None

    #: on-the-wire/in-memory footprint used by the §5 space estimate:
    #: 16-byte MD5 URL signature + 4-byte client id + 8-byte timestamp.
    WIRE_BYTES = 28

    def expired(self, now: float) -> bool:
        """True when the TTL (if any) has lapsed at time *now*."""
        return self.ttl is not None and now > self.timestamp + self.ttl
