"""Periodic browser-index checkpoints for proxy crash recovery.

The browser index lives only in proxy memory; a proxy restart without a
checkpoint means every client's cache contents must be re-learned from
scratch.  :class:`IndexCheckpointer` snapshots the index on a virtual-
time schedule — a *full* snapshot every ``full_every``-th tick, cheap
*incremental* snapshots (sized by the index events since the previous
tick) in between — and keeps the latest consistent snapshot for
restore.

Costs are charged to the timing model, not wall time: serialising
``n`` bytes at ``write_bandwidth`` bytes/s adds ``n / write_bandwidth``
seconds to :attr:`OverheadReport.checkpoint_time`, and a restore pays
for reading the last full snapshot plus every incremental taken since
(the *restore chain*).

The checkpointer never inspects index internals beyond the public
``export_snapshot()`` / ``footprint_bytes()`` / event counters, so both
the exact :class:`~repro.index.browser_index.BrowserIndex` and the
Bloom-summary :class:`~repro.index.engine_bloom.BloomBrowserIndex`
participate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.index.entry import IndexEntry
from repro.util.validation import check_checkpoint_interval, check_positive

__all__ = ["CheckpointPolicy", "IndexSnapshot", "IndexCheckpointer"]


@dataclass(frozen=True)
class CheckpointPolicy:
    """How often, and at what cost, the index is checkpointed.

    ``interval`` is virtual seconds between snapshots; every
    ``full_every``-th snapshot is full (the first always is), the rest
    are incremental.  ``write_bandwidth`` (bytes per virtual second)
    converts snapshot bytes into serialisation time charged to the
    overhead report; the default 50 MB/s models a local disk the §5
    space estimate would call generous.
    """

    interval: float = 3600.0
    full_every: int = 10
    write_bandwidth: float = 50e6

    def __post_init__(self) -> None:
        check_checkpoint_interval(self.interval)
        if self.full_every < 1:
            raise ValueError(
                f"full_every must be >= 1 snapshots, got {self.full_every}"
            )
        check_positive("write_bandwidth", self.write_bandwidth)


@dataclass(frozen=True)
class IndexSnapshot:
    """One durable snapshot of the browser index.

    ``payload`` is whatever the index's ``export_snapshot()`` returned —
    opaque to the checkpointer, meaningful only to the engine that wrote
    it.  ``n_bytes`` is what *writing* this snapshot cost (delta-sized
    for incrementals); ``restore_bytes`` is what *reading* state back
    costs: the last full snapshot plus all incrementals since.
    """

    taken_at: float
    payload: Any
    n_bytes: int
    full: bool
    restore_bytes: int


class IndexCheckpointer:
    """Drives the snapshot schedule for one simulation run.

    The engine asks :meth:`next_due` between requests and calls
    :meth:`take` for each deadline that has passed, in virtual-time
    order with any pending proxy crashes.
    """

    #: floor for an incremental snapshot: framing/metadata is never free.
    MIN_SNAPSHOT_BYTES = 64

    def __init__(self, policy: CheckpointPolicy) -> None:
        self.policy = policy
        self._next_due: float = policy.interval
        self._latest: IndexSnapshot | None = None
        self._taken = 0
        self._events_at_last = 0
        self.bytes_written = 0
        self.full_snapshots = 0
        self.incremental_snapshots = 0

    def next_due(self, now: float) -> float | None:
        """The earliest snapshot deadline that has passed (<= *now*)."""
        if self._next_due <= now:
            return self._next_due
        return None

    def take(self, index: Any, now: float) -> float:
        """Snapshot *index* for the current deadline.

        Returns the serialisation time to charge.  ``now`` is the
        virtual time the snapshot is processed at; since index state
        only changes at requests, the captured state is exact for every
        instant since the previous request.
        """
        events = index.n_insert_events + index.n_evict_events
        full = self._taken % self.policy.full_every == 0
        if full:
            n_bytes = max(self.MIN_SNAPSHOT_BYTES, index.footprint_bytes())
            restore_bytes = n_bytes
        else:
            delta = events - self._events_at_last
            n_bytes = max(self.MIN_SNAPSHOT_BYTES, delta * IndexEntry.WIRE_BYTES)
            prev = self._latest.restore_bytes if self._latest is not None else 0
            restore_bytes = prev + n_bytes
        self._latest = IndexSnapshot(
            taken_at=self._next_due,
            payload=index.export_snapshot(),
            n_bytes=n_bytes,
            full=full,
            restore_bytes=restore_bytes,
        )
        self._taken += 1
        self._events_at_last = events
        self.bytes_written += n_bytes
        if full:
            self.full_snapshots += 1
        else:
            self.incremental_snapshots += 1
        self._next_due += self.policy.interval
        return n_bytes / self.policy.write_bandwidth

    def latest(self) -> IndexSnapshot | None:
        """The most recent consistent snapshot, or ``None`` before the
        first deadline has fired."""
        return self._latest

    def restore_time(self) -> float:
        """Seconds to read the latest snapshot's restore chain back."""
        if self._latest is None:
            return 0.0
        return self._latest.restore_bytes / self.policy.write_bandwidth

    def reset_after_crash(self, now: float) -> None:
        """Restart the schedule after a crash at virtual time *now*.

        The next snapshot is a full one (the restored index's event
        counters restarted from zero, so deltas are meaningless), due
        one interval after the restart.
        """
        self._next_due = now + self.policy.interval
        self._events_at_last = 0
        self._taken = 0
