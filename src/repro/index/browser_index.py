"""The proxy's browser index file (paper §2).

The index records, for every client browser cache, which documents it
holds.  Maintenance is either *invalidation-based* (every insert and
evict is reported immediately — the index is always exact) or
*periodic* (changes are batched per client and flushed when the
:class:`~repro.index.staleness.PeriodicUpdatePolicy` fires — the
visible index lags the truth, producing false hits and false misses
that the simulation engine detects and charges).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.index.entry import IndexEntry
from repro.index.staleness import ClientUpdateState, PeriodicUpdatePolicy, StalenessStats

__all__ = ["BrowserIndex", "IndexLookup", "UpdateMode"]


class UpdateMode(Enum):
    """How browser caches report changes to the proxy's index."""

    INVALIDATION = "invalidation"
    PERIODIC = "periodic"


@dataclass(slots=True)
class IndexLookup:
    """A successful index search: the chosen holder's entry.

    Non-frozen slots dataclass for cheap construction (one per index
    hit on the replay hot path); treated as immutable by convention.
    """

    client: int
    entry: IndexEntry


class BrowserIndex:
    """Directory of all clients' browser-cache contents.

    ``record_insert`` / ``record_evict`` are driven by the *true* cache
    events; what ``lookup`` sees depends on the update mode.
    """

    @property
    def is_stale(self) -> bool:
        """Whether lookups may disagree with the true browser caches."""
        return self.mode is UpdateMode.PERIODIC

    @property
    def update_messages(self) -> int:
        """Messages sent from browsers to keep this index current: one
        per insert/evict event under invalidation, one per batch flush
        under periodic updates, plus one per post-crash
        re-announcement."""
        if self.mode is UpdateMode.INVALIDATION:
            return self.n_insert_events + self.n_evict_events + self.reannouncements
        return self.stats.flushes + self.reannouncements

    def __init__(
        self,
        n_clients: int,
        mode: UpdateMode = UpdateMode.INVALIDATION,
        policy: PeriodicUpdatePolicy | None = None,
    ) -> None:
        if n_clients <= 0:
            raise ValueError(f"n_clients must be > 0, got {n_clients}")
        if mode is UpdateMode.PERIODIC and policy is None:
            policy = PeriodicUpdatePolicy()
        if mode is UpdateMode.INVALIDATION and policy is not None:
            raise ValueError("invalidation mode takes no periodic policy")
        self.n_clients = n_clients
        self.mode = mode
        self.policy = policy
        # Hot-path flag: cheaper than an enum identity test per event.
        self._invalidation = mode is UpdateMode.INVALIDATION
        #: visible index: doc -> {client: IndexEntry}
        self._visible: dict[int, dict[int, IndexEntry]] = {}
        #: pending (periodic mode): client -> {doc: IndexEntry | None}
        #: (None = eviction); dict form coalesces insert+evict churn.
        #: Allocated lazily per client: under invalidation mode (and for
        #: clients that never batch a change) nothing is created, so the
        #: index costs O(entries), not O(n_clients) — the difference
        #: between megabytes and nothing at a million clients.
        self._pending: dict[int, dict[int, IndexEntry | None]] = {}
        self._client_state: dict[int, ClientUpdateState] = {}
        self._rr = 0  # round-robin cursor for holder selection
        #: lookups where the ``banned`` filter removed at least one
        #: otherwise-qualifying candidate (quarantine defense).
        self.banned_candidates_skipped = 0
        self._n_entries = 0
        #: (doc, client) pairs restored from a checkpoint and not yet
        #: refreshed by a live event — false hits against these are
        #: recovery staleness, tracked separately.
        self._restored: set[tuple[int, int]] = set()
        self.stats = StalenessStats()
        self.n_lookups = 0
        self.n_index_hits = 0
        self.n_insert_events = 0
        self.n_evict_events = 0
        self.reannouncements = 0

    # -- lazy per-client state -------------------------------------------

    def _state_of(self, client: int) -> ClientUpdateState:
        state = self._client_state.get(client)
        if state is None:
            state = self._client_state[client] = ClientUpdateState()
        return state

    def _pending_of(self, client: int) -> dict[int, IndexEntry | None]:
        pending = self._pending.get(client)
        if pending is None:
            pending = self._pending[client] = {}
        return pending

    # -- event intake ----------------------------------------------------

    def record_insert(
        self,
        client: int,
        doc: int,
        version: int,
        size: int,
        now: float,
        ttl: float | None = None,
        replace: bool = False,
    ) -> None:
        """A document entered *client*'s browser cache.

        Pass ``replace=True`` when the client is refreshing a document
        it already cached (a new version), so the per-client document
        count used by the periodic policy stays accurate.  (Under
        invalidation the per-client counters feed nothing, so the fast
        path skips them.)
        """
        self.n_insert_events += 1
        if self._invalidation:
            holders = self._visible.setdefault(doc, {})
            if client not in holders:
                self._n_entries += 1
            holders[client] = IndexEntry(client, doc, version, size, now, ttl)
            if self._restored:
                self._restored.discard((doc, client))
            return
        state = self._state_of(client)
        if not replace:
            state.cached_docs += 1
        self._pending_of(client)[doc] = IndexEntry(client, doc, version, size, now, ttl)
        state.pending_changes += 1
        self._maybe_flush(client, now)

    def record_evict(self, client: int, doc: int, now: float) -> None:
        """A document left *client*'s browser cache (evicted or
        invalidated)."""
        self.n_evict_events += 1
        if self._invalidation:
            holders = self._visible.get(doc)
            if holders and client in holders:
                del holders[client]
                self._n_entries -= 1
                if self._restored:
                    self._restored.discard((doc, client))
                if not holders:
                    del self._visible[doc]
            return
        state = self._state_of(client)
        state.cached_docs = max(0, state.cached_docs - 1)
        self._pending_of(client)[doc] = None
        state.pending_changes += 1
        self._maybe_flush(client, now)

    # -- flushing (periodic mode) -----------------------------------------

    def _maybe_flush(self, client: int, now: float) -> None:
        assert self.policy is not None
        if self.policy.should_flush(self._state_of(client), now):
            self.flush(client, now)

    def flush(self, client: int, now: float) -> int:
        """Apply *client*'s batched updates to the visible index.

        Returns the number of items in the batch (the §5 overhead model
        charges one message per flush).
        """
        pending = self._pending.get(client)
        n_items = len(pending) if pending else 0
        if n_items == 0:
            return 0
        for doc, entry in pending.items():
            self._restored.discard((doc, client))
            if entry is None:
                holders = self._visible.get(doc)
                if holders and client in holders:
                    del holders[client]
                    self._n_entries -= 1
                    if not holders:
                        del self._visible[doc]
            else:
                holders = self._visible.setdefault(doc, {})
                if client not in holders:
                    self._n_entries += 1
                holders[client] = entry
        pending.clear()
        state = self._state_of(client)
        state.pending_changes = 0
        state.last_flush = now
        self.stats.flushes += 1
        self.stats.flushed_items += n_items
        return n_items

    def flush_all(self, now: float) -> None:
        for client in range(self.n_clients):
            self.flush(client, now)

    # -- lookups ------------------------------------------------------------

    def lookup(
        self,
        doc: int,
        exclude_client: int,
        now: float,
        version: int | None = None,
        banned=None,
    ) -> IndexLookup | None:
        """Search the (visible) index for a browser holding *doc*.

        *exclude_client* is the requester — its own browser already
        missed.  When *version* is given, only entries recorded with
        that version qualify (the proxy knows the current version from
        the origin's headers).  Expired-TTL entries never qualify.
        *banned* holders (the engine's quarantine blacklist) are
        filtered out after qualification; ``None`` skips the filter
        entirely.  Holder choice is round-robin over qualifying clients
        so repeat lookups spread load, as the paper's non-bursty
        traffic measurement assumes.
        """
        self.n_lookups += 1
        holders = self._visible.get(doc)
        if not holders:
            return None
        # The expiry test inlines IndexEntry.expired — one method call
        # per candidate adds up at millions of lookups.
        candidates = [
            (c, e)
            for c, e in holders.items()
            if c != exclude_client
            and (e.ttl is None or now <= e.timestamp + e.ttl)
            and (version is None or e.version == version)
        ]
        if banned:
            kept = [(c, e) for c, e in candidates if c not in banned]
            if len(kept) != len(candidates):
                self.banned_candidates_skipped += 1
                candidates = kept
        if not candidates:
            return None
        self._rr += 1
        if len(candidates) == 1:
            client, entry = candidates[0]
        else:
            candidates.sort()
            client, entry = candidates[self._rr % len(candidates)]
        self.n_index_hits += 1
        return IndexLookup(client, entry)

    def holders_of(self, doc: int) -> list[int]:
        """All clients the visible index believes hold *doc*."""
        return sorted(self._visible.get(doc, ()))

    def candidate_holders(
        self,
        doc: int,
        exclude_client: int,
        now: float,
        version: int | None = None,
        banned=None,
    ) -> list[int]:
        """Every client that would qualify for :meth:`lookup`, sorted.

        The engine's failover path walks this list when the holder
        chosen by ``lookup`` turns out to be offline, stale, or serving
        corrupted data.  Unlike ``lookup`` it does not advance the
        round-robin cursor or count an index hit — the request already
        paid for its one lookup."""
        holders = self._visible.get(doc)
        if not holders:
            return []
        return sorted(
            c
            for c, e in holders.items()
            if c != exclude_client
            and (not banned or c not in banned)
            and not e.expired(now)
            and (version is None or e.version == version)
        )

    # -- crash recovery ----------------------------------------------------

    def export_snapshot(self) -> dict[int, dict[int, IndexEntry]]:
        """Copy of the proxy-side visible index for a checkpoint.

        Only ``_visible`` is proxy state; pending batches and per-client
        counters live at the clients and survive a proxy crash on their
        own.  Entries are frozen, so sharing them is safe.
        """
        return {doc: dict(holders) for doc, holders in self._visible.items()}

    def restore_snapshot(self, payload: dict[int, dict[int, IndexEntry]]) -> None:
        """Replace the visible index with a checkpoint's state.

        Every restored pair is remembered: the snapshot may predate
        evictions, so these entries can be stale even under
        invalidation mode — the engine still charges false hits for
        them, and :attr:`StalenessStats.false_hits_after_restore`
        attributes those to recovery.
        """
        self._visible = {doc: dict(holders) for doc, holders in payload.items()}
        self._n_entries = sum(len(h) for h in self._visible.values())
        self._restored = {
            (doc, client)
            for doc, holders in self._visible.items()
            for client in holders
        }

    def reannounce(
        self,
        client: int,
        items,
        now: float,
        ttl: float | None = None,
    ) -> int:
        """Client re-announces its full browser-cache contents.

        *items* iterates ``(doc, version, size)`` triples from the true
        cache.  Everything the index believed about *client* — restored
        or pending — is replaced wholesale, which is exactly what makes
        re-announcement the rebuild path after a crash.  Returns the
        number of announced items.
        """
        for doc in list(self._visible):
            holders = self._visible[doc]
            if client in holders:
                del holders[client]
                self._n_entries -= 1
                self._restored.discard((doc, client))
                if not holders:
                    del self._visible[doc]
        self._pending.pop(client, None)
        n_items = 0
        for doc, version, size in items:
            holders = self._visible.setdefault(doc, {})
            if client not in holders:
                self._n_entries += 1
            holders[client] = IndexEntry(
                client=client,
                doc=doc,
                version=version,
                size=size,
                timestamp=now,
                ttl=ttl,
            )
            n_items += 1
        state = self._state_of(client)
        state.cached_docs = n_items
        state.pending_changes = 0
        state.last_flush = now
        self.reannouncements += 1
        return n_items

    def claimed_docs(self):
        """Every document the visible index claims some client holds —
        the proxy-side knowledge an inter-proxy digest can summarise
        (:mod:`repro.federation.digest`)."""
        return self._visible.keys()

    def claims_doc(self, doc: int) -> bool:
        """Whether the visible index claims any client holds *doc* —
        the O(1) point query behind the federation's fresh-digest
        (oracle) anchor."""
        return doc in self._visible

    # -- accounting ------------------------------------------------------------

    @property
    def n_entries(self) -> int:
        """Visible index items across all clients (O(1))."""
        return self._n_entries

    def footprint_bytes(self) -> int:
        """Memory needed at the proxy for the exact index (§5):
        one :attr:`IndexEntry.WIRE_BYTES` record per item."""
        return self.n_entries * IndexEntry.WIRE_BYTES

    def record_false_hit(self, client: int | None = None, doc: int | None = None) -> None:
        """The engine validated a lookup against the true cache and
        found the index stale.  When the engine names the probed holder,
        false hits against checkpoint-restored entries are attributed to
        recovery staleness as well."""
        self.stats.false_hits += 1
        if (
            client is not None
            and doc is not None
            and (doc, client) in self._restored
        ):
            self.stats.false_hits_after_restore += 1

    def record_false_miss(self) -> None:
        self.stats.false_misses += 1
