"""URL signatures and the §5 index space estimate.

"Each URL is represented by a 16-byte MD5 signature.  Assume there are
100 clients connected to one proxy.  Each client has a browser with an
8 MB cache.  We assume that an average document size is 8 KB.  Each
browser has about 1 K web pages.  The proxy server only needs about
[a few MB] to store the whole browser index file for the 100 browsers."

:class:`IndexSpaceModel` reproduces that arithmetic for the exact
index and for the Bloom-filter compressed variant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.security.md5 import md5_digest
from repro.util.validation import check_positive

__all__ = ["url_signature", "IndexSpaceModel"]


def url_signature(url: str) -> bytes:
    """The 16-byte MD5 signature used for URLs in the index file."""
    return md5_digest(url)


@dataclass(frozen=True)
class IndexSpaceModel:
    """Proxy-side memory needed to index all browser caches."""

    n_clients: int = 100
    browser_cache_bytes: int = 8_000_000
    avg_doc_bytes: int = 8_000
    signature_bytes: int = 16
    client_id_bytes: int = 4
    timestamp_bytes: int = 8

    def __post_init__(self) -> None:
        check_positive("n_clients", self.n_clients)
        check_positive("browser_cache_bytes", self.browser_cache_bytes)
        check_positive("avg_doc_bytes", self.avg_doc_bytes)

    @property
    def docs_per_browser(self) -> int:
        """~1 K pages for an 8 MB cache of 8 KB documents."""
        return max(1, self.browser_cache_bytes // self.avg_doc_bytes)

    @property
    def total_docs(self) -> int:
        return self.docs_per_browser * self.n_clients

    @property
    def entry_bytes(self) -> int:
        return self.signature_bytes + self.client_id_bytes + self.timestamp_bytes

    def exact_index_bytes(self) -> int:
        """Full index: one record per cached document."""
        return self.total_docs * self.entry_bytes

    def bloom_index_bytes(self, bits_per_doc: float = 16.0) -> int:
        """Summary-Cache-style compression: one Bloom filter per client
        with *bits_per_doc* bits per cached document (16 bits/doc gives
        well under 1% false positives with 11 hash functions)."""
        if bits_per_doc <= 0:
            raise ValueError(f"bits_per_doc must be > 0, got {bits_per_doc}")
        per_client_bits = self.docs_per_browser * bits_per_doc
        return int(self.n_clients * per_client_bits / 8)

    def report(self) -> dict[str, float]:
        """All the §5 numbers in one dict (sizes in MB)."""
        return {
            "clients": self.n_clients,
            "docs_per_browser": self.docs_per_browser,
            "total_docs": self.total_docs,
            "exact_index_mb": self.exact_index_bytes() / 1e6,
            "bloom_index_mb": self.bloom_index_bytes() / 1e6,
        }
