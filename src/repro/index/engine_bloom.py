"""Bloom-summary browser index usable directly by the simulator.

Implements Fan et al.'s Summary Cache discipline for the BAPS browser
index: the proxy holds one Bloom filter per client instead of exact
entries.  Insertions are added to the client's filter immediately
(adding to a Bloom filter is cheap and monotone); evictions cannot be
removed, so the filter goes stale until the client sends a fresh
summary — a *rebuild*, triggered after a threshold fraction of the
client's cached documents has changed.

Lookups can therefore return **false positives** (evicted documents, or
plain Bloom collisions); the simulation engine validates every
candidate against the true browser cache and charges a wasted round
trip for false hits, exactly as with the periodic exact index.
"""

from __future__ import annotations

from repro.index.bloom import BloomFilter
from repro.index.browser_index import IndexLookup
from repro.index.entry import IndexEntry
from repro.index.staleness import StalenessStats

__all__ = ["BloomBrowserIndex"]


class BloomBrowserIndex:
    """Summary-Cache style index: one Bloom filter per client.

    Exposes the same interface the engine uses on
    :class:`~repro.index.browser_index.BrowserIndex`.
    """

    #: lookups may be wrong; the engine must validate and may count
    #: false hits/misses.
    is_stale = True

    def __init__(
        self,
        n_clients: int,
        expected_docs_per_client: int = 512,
        bits_per_doc: float = 16.0,
        rebuild_threshold: float = 0.10,
    ) -> None:
        if n_clients <= 0:
            raise ValueError(f"n_clients must be > 0, got {n_clients}")
        if not (0.0 <= rebuild_threshold <= 1.0):
            raise ValueError(
                f"rebuild_threshold must be in [0, 1], got {rebuild_threshold}"
            )
        self.n_clients = n_clients
        self.bits_per_doc = bits_per_doc
        self.expected_docs = max(1, expected_docs_per_client)
        self.rebuild_threshold = rebuild_threshold
        self._filters = [self._new_filter() for _ in range(n_clients)]
        #: true per-client contents (each client knows its own cache and
        #: sends the full summary on rebuild): client -> {doc: (version, size)}
        self._contents: list[dict[int, tuple[int, int]]] = [
            {} for _ in range(n_clients)
        ]
        self._changes_since_rebuild = [0] * n_clients
        self._rr = 0
        #: lookups where the ``banned`` filter removed at least one
        #: otherwise-qualifying candidate (quarantine defense).
        self.banned_candidates_skipped = 0
        #: clients whose filter was restored from a checkpoint and not
        #: yet refreshed by a rebuild or re-announcement — false hits
        #: against them are recovery staleness.
        self._restored_clients: set[int] = set()
        self.stats = StalenessStats()
        self.n_lookups = 0
        self.n_index_hits = 0
        self.n_insert_events = 0
        self.n_evict_events = 0
        self.rebuilds = 0
        self.reannouncements = 0

    def _new_filter(self) -> BloomFilter:
        return BloomFilter.for_capacity(self.expected_docs, self.bits_per_doc)

    # -- event intake (same signatures as BrowserIndex) --------------------

    def record_insert(
        self,
        client: int,
        doc: int,
        version: int,
        size: int,
        now: float,
        ttl: float | None = None,
        replace: bool = False,
    ) -> None:
        self.n_insert_events += 1
        self._contents[client][doc] = (version, size)
        self._filters[client].add(doc)
        if replace:
            # a new version under the same key: the filter entry is
            # already present, nothing stale is introduced
            return
        self._bump(client, now)

    def record_evict(self, client: int, doc: int, now: float) -> None:
        self.n_evict_events += 1
        self._contents[client].pop(doc, None)
        # the filter cannot forget: this is the staleness source
        self._bump(client, now)

    def _bump(self, client: int, now: float) -> None:
        self._changes_since_rebuild[client] += 1
        basis = max(len(self._contents[client]), 20)
        if self._changes_since_rebuild[client] >= self.rebuild_threshold * basis:
            self.rebuild(client, now)

    def rebuild(self, client: int, now: float) -> None:
        """Client sends a fresh summary of its true contents."""
        f = self._new_filter()
        for doc in self._contents[client]:
            f.add(doc)
        self._filters[client] = f
        self._changes_since_rebuild[client] = 0
        self._restored_clients.discard(client)
        self.rebuilds += 1
        self.stats.flushes += 1
        self.stats.flushed_items += len(self._contents[client])

    # -- crash recovery ----------------------------------------------------

    def export_snapshot(self) -> dict:
        """Deep copy of the proxy-side summary state for a checkpoint:
        the filters plus the claimed contents they summarise."""
        return {
            "filters": [f.copy() for f in self._filters],
            "contents": [dict(c) for c in self._contents],
            "changes": list(self._changes_since_rebuild),
        }

    def restore_snapshot(self, payload: dict) -> None:
        """Replace the summaries with a checkpoint's state.  Restored
        filters may claim documents their clients evicted after the
        snapshot — those surface as false hits attributed to recovery."""
        self._filters = [f.copy() for f in payload["filters"]]
        self._contents = [dict(c) for c in payload["contents"]]
        self._changes_since_rebuild = list(payload["changes"])
        self._restored_clients = set(range(self.n_clients))

    def reannounce(
        self,
        client: int,
        items,
        now: float,
        ttl: float | None = None,
    ) -> int:
        """Client re-announces its full browser-cache contents as a
        fresh summary.  *items* iterates ``(doc, version, size)``
        triples from the true cache.  Returns the announced item count.
        """
        f = self._new_filter()
        contents: dict[int, tuple[int, int]] = {}
        for doc, version, size in items:
            contents[doc] = (version, size)
            f.add(doc)
        self._filters[client] = f
        self._contents[client] = contents
        self._changes_since_rebuild[client] = 0
        self._restored_clients.discard(client)
        self.reannouncements += 1
        return len(contents)

    # -- lookups ----------------------------------------------------------

    def lookup(
        self,
        doc: int,
        exclude_client: int,
        now: float,
        version: int | None = None,
        banned=None,
    ) -> IndexLookup | None:
        """Pick a candidate holder from the summaries.

        Bloom summaries carry no version or size, so the returned
        entry echoes the client's *claimed* contents when known; the
        engine always validates against the true cache.  *banned*
        holders (the engine's quarantine blacklist) are filtered out;
        ``None`` skips the filter entirely.
        """
        self.n_lookups += 1
        candidates = [
            c
            for c in range(self.n_clients)
            if c != exclude_client and doc in self._filters[c]
        ]
        if banned:
            kept = [c for c in candidates if c not in banned]
            if len(kept) != len(candidates):
                self.banned_candidates_skipped += 1
                candidates = kept
        if not candidates:
            return None
        self._rr += 1
        client = candidates[self._rr % len(candidates)]
        self.n_index_hits += 1
        known = self._contents[client].get(doc)
        entry = IndexEntry(
            client=client,
            doc=doc,
            version=known[0] if known else -1,
            size=known[1] if known else 0,
            timestamp=now,
        )
        return IndexLookup(client=client, entry=entry)

    def holders_of(self, doc: int) -> list[int]:
        """Clients whose summary claims *doc* (may be false positives)."""
        return [c for c in range(self.n_clients) if doc in self._filters[c]]

    def candidate_holders(
        self,
        doc: int,
        exclude_client: int,
        now: float,
        version: int | None = None,
        banned=None,
    ) -> list[int]:
        """Failover candidates: every other client whose filter claims
        *doc*.  Summaries carry no version, so candidates may be wrong —
        the engine validates each probe against the true cache."""
        return [
            c
            for c in self.holders_of(doc)
            if c != exclude_client and (not banned or c not in banned)
        ]

    def claimed_docs(self):
        """Every document some client's summary claims to hold — the
        proxy-side knowledge an inter-proxy digest can summarise
        (:mod:`repro.federation.digest`).  Deduplicated across clients.
        """
        seen: set[int] = set()
        for contents in self._contents:
            seen.update(contents)
        return seen

    def claims_doc(self, doc: int) -> bool:
        """Whether any client's claimed contents include *doc* — the
        point query behind the federation's fresh-digest (oracle)
        anchor.  Uses the claimed contents, not the filters, matching
        what :meth:`claimed_docs` feeds a freshly built digest."""
        return any(doc in contents for contents in self._contents)

    # -- accounting ----------------------------------------------------------

    @property
    def n_entries(self) -> int:
        return sum(len(c) for c in self._contents)

    def footprint_bytes(self) -> int:
        """Proxy-side memory: the filters themselves."""
        return sum(f.size_bytes for f in self._filters)

    @property
    def update_messages(self) -> int:
        """One message per summary rebuild or re-announcement."""
        return self.rebuilds + self.reannouncements

    def record_false_hit(self, client: int | None = None, doc: int | None = None) -> None:
        self.stats.false_hits += 1
        if client is not None and client in self._restored_clients:
            self.stats.false_hits_after_restore += 1

    def record_false_miss(self) -> None:
        self.stats.false_misses += 1
