"""Adversarial peer populations: polluters and correlated flappers.

The paper's §6 reliability analysis assumes peers misbehave *uniformly*
— the engine modelled that with one global ``corruption_rate`` coin per
transfer.  Real browser-peer populations are not uniform: a small
*persistent* minority serves corrupted documents on every transfer
(pollution attacks dominate cooperative-cache threat models), and
another minority flaps — churning in correlated waves (office networks
rebooting, mobile cohorts crossing coverage gaps) rather than as
independent sessions.

This package assigns such *behaviour profiles* to individual peers:

* **polluters** corrupt the transfers they serve with
  ``polluter_corruption_rate`` (default 1.0: every transfer);
* **flappers** go offline together during the windows of a
  :class:`~repro.core.churn.MassChurnSchedule`;
* everyone else stays honest and keeps the background
  ``corruption_rate`` of the plain engine.

Role assignment is a seeded shuffle (:class:`PeerPopulation`), so a
population is deterministic per ``(config, n_clients, seed)`` and
bit-identical across worker counts.  With no :class:`AdversarialConfig`
on the simulation config, nothing here is constructed at all — the
engine keeps its single global draw and every golden stays
bit-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.util.rng import derive_seed
from repro.util.validation import check_fraction, check_polluter_fraction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (config imports us)
    from repro.core.churn import MassChurnSchedule

__all__ = ["AdversarialConfig", "PeerPopulation"]


@dataclass(frozen=True)
class AdversarialConfig:
    """Which fractions of the peer population misbehave, and how.

    Defaults describe an *empty* adversary (no polluters, no flappers);
    attaching a default config to a simulation changes which RNG streams
    the integrity draws come from but introduces no misbehaviour.
    """

    #: fraction of clients that are persistent polluters.
    polluter_fraction: float = 0.0
    #: probability a polluter corrupts each transfer it serves (1.0 =
    #: every transfer, the persistent-polluter threat model).
    polluter_corruption_rate: float = 1.0
    #: fraction of clients that flap in correlated waves.
    flapper_fraction: float = 0.0
    #: when flappers are offline — explicit windows, so arming flappers
    #: constructs no RNG.
    flap_schedule: "MassChurnSchedule | None" = None

    def __post_init__(self) -> None:
        check_polluter_fraction(self.polluter_fraction)
        check_fraction("polluter_corruption_rate", self.polluter_corruption_rate)
        check_fraction("flapper_fraction", self.flapper_fraction)
        if self.polluter_fraction + self.flapper_fraction > 1.0:
            raise ValueError(
                "polluter_fraction + flapper_fraction must be <= 1 (each "
                "peer holds one profile), got "
                f"{self.polluter_fraction!r} + {self.flapper_fraction!r}"
            )
        if self.flapper_fraction > 0.0 and self.flap_schedule is None:
            raise ValueError(
                "flapper_fraction > 0 needs a flap_schedule naming the "
                "offline windows (see repro.core.churn.MassChurnSchedule)"
            )


class PeerPopulation:
    """Seeded assignment of behaviour profiles to a client population.

    Clients are shuffled with a :class:`random.Random` seeded from
    ``derive_seed(seed, "adversarial-roles")``; the first
    ``round(polluter_fraction * n)`` of the shuffle become polluters and
    the next ``round(flapper_fraction * n)`` become flappers.  The same
    ``(config, n_clients, seed)`` always yields the same roles, so an
    experiment can reconstruct the simulator's population — e.g. to
    build an oracle blacklist of exactly the polluters.
    """

    __slots__ = ("config", "n_clients", "seed", "polluters", "flappers")

    def __init__(
        self, config: AdversarialConfig, n_clients: int, seed: int = 0
    ) -> None:
        self.config = config
        self.n_clients = n_clients
        self.seed = seed
        order = list(range(n_clients))
        random.Random(derive_seed(seed, "adversarial-roles")).shuffle(order)
        n_polluters = round(config.polluter_fraction * n_clients)
        n_flappers = round(config.flapper_fraction * n_clients)
        #: the polluter client ids (frozen — feed ``static_blacklist``
        #: with these for the oracle-defense anchor).
        self.polluters = frozenset(order[:n_polluters])
        #: the flapper client ids.
        self.flappers = frozenset(order[n_polluters:n_polluters + n_flappers])

    @classmethod
    def for_simulation(
        cls, config: AdversarialConfig, n_clients: int, availability_seed: int
    ) -> "PeerPopulation":
        """The population a :class:`~repro.core.simulator.Simulator`
        builds for ``availability_seed`` — the single place the role
        seed is derived, so experiments and the engine always agree."""
        return cls(config, n_clients, derive_seed(availability_seed, "adversarial"))

    def is_polluter(self, client: int) -> bool:
        return client in self.polluters

    def is_flapper(self, client: int) -> bool:
        return client in self.flappers
