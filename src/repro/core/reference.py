"""The frozen reference replay loop — differential-testing oracle.

This module is a verbatim copy of the trace-driven engine as it stood
*before* the hot-path optimization pass (straight-line per-request
logic, no batched counters, no precomputed handles), plus a frozen copy
of the pre-optimization LRU cache.  It exists so the optimized
:class:`repro.core.simulator.Simulator` can be checked for **bit
identity** against a known-good implementation:

* ``tests/test_differential.py`` replays randomized configurations
  (every failure/feature knob drawn by hypothesis) through both engines
  and asserts the two :class:`~repro.core.metrics.SimulationResult`\\ s
  are exactly equal, field for field;
* ``benchmarks/bench_hotpath.py`` measures the optimized engine's
  throughput against this loop and fails CI on regression.

DO NOT optimize, refactor, or "clean up" this module.  Its only value
is that it does not change when the hot path does.  Behavioural changes
to the engine (new features, new counters) must be mirrored here in the
same PR — the differential tests will fail loudly until they are.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass

from repro.cache import TieredLRUCache, make_cache
from repro.cache.base import Cache
from repro.core.churn import ChurnProcess
from repro.core.config import SimulationConfig
from repro.core.events import HitLocation
from repro.core.metrics import SimulationResult
from repro.core.policies import Organization
from repro.core.proxy_faults import ProxyFaultSchedule
from repro.index.browser_index import UpdateMode
from repro.index.checkpoint import IndexCheckpointer
from repro.index.engine_bloom import BloomBrowserIndex
from repro.index.staleness import ClientUpdateState, PeriodicUpdatePolicy, StalenessStats
from repro.network.ethernet import SharedBus
from repro.security.protocols import SecurityOverheadModel
from repro.traces.record import Trace
from repro.util.rng import derive_seed

__all__ = [
    "ReferenceSimulator",
    "reference_simulate",
    "ReferenceLRUCache",
    "ReferenceBrowserIndex",
]


class ReferenceLRUCache(Cache):
    """The pre-optimization LRU implementation, frozen.

    Keeps the recency order in a side ``OrderedDict`` next to the base
    class's entry table — exactly the layout the optimized
    :class:`repro.cache.lru.LRUCache` replaced with a single merged
    ``OrderedDict``.  Running both under the differential harness pins
    the merged layout to the original eviction order.
    """

    policy = "lru"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._order: OrderedDict[int, None] = OrderedDict()

    def _touch(self, key: int) -> None:
        self._order.move_to_end(key)

    def _on_insert(self, key: int) -> None:
        self._order[key] = None

    def _on_remove(self, key: int) -> None:
        del self._order[key]

    def _pick_victim(self, exclude: int | None = None) -> int | None:
        for key in self._order:
            if key != exclude:
                return key
        return None

    def _on_clear(self) -> None:
        self._order.clear()

    def keys_by_recency(self) -> list[int]:
        return list(self._order)


@dataclass(frozen=True, slots=True)
class ReferenceIndexEntry:
    """The pre-optimization (frozen-dataclass) index entry, frozen."""

    client: int
    doc: int
    version: int
    size: int
    timestamp: float
    ttl: float | None = None

    WIRE_BYTES = 28

    def expired(self, now: float) -> bool:
        return self.ttl is not None and now > self.timestamp + self.ttl


@dataclass(frozen=True)
class ReferenceIndexLookup:
    """The pre-optimization lookup result, frozen."""

    client: int
    entry: ReferenceIndexEntry


class ReferenceBrowserIndex:
    """The pre-optimization exact browser index, frozen.

    Verbatim copy of :class:`repro.index.browser_index.BrowserIndex`
    as it stood before the hot-path pass (no invalidation fast paths,
    per-candidate ``expired`` method calls, frozen entry dataclasses).
    Running it under the differential harness pins the optimized
    index's semantics — holder choice, staleness accounting, message
    counts — to the original, and keeps the benchmark baseline honest:
    the reference engine's throughput is the *pre-PR* stack's, index
    included.
    """

    @property
    def is_stale(self) -> bool:
        return self.mode is UpdateMode.PERIODIC

    @property
    def update_messages(self) -> int:
        if self.mode is UpdateMode.INVALIDATION:
            return self.n_insert_events + self.n_evict_events + self.reannouncements
        return self.stats.flushes + self.reannouncements

    def __init__(
        self,
        n_clients: int,
        mode: UpdateMode = UpdateMode.INVALIDATION,
        policy: PeriodicUpdatePolicy | None = None,
    ) -> None:
        if n_clients <= 0:
            raise ValueError(f"n_clients must be > 0, got {n_clients}")
        if mode is UpdateMode.PERIODIC and policy is None:
            policy = PeriodicUpdatePolicy()
        if mode is UpdateMode.INVALIDATION and policy is not None:
            raise ValueError("invalidation mode takes no periodic policy")
        self.n_clients = n_clients
        self.mode = mode
        self.policy = policy
        self._visible: dict[int, dict[int, ReferenceIndexEntry]] = {}
        self._pending: list[dict[int, ReferenceIndexEntry | None]] = [
            {} for _ in range(n_clients)
        ]
        self._client_state = [ClientUpdateState() for _ in range(n_clients)]
        self._rr = 0
        self._n_entries = 0
        self._restored: set[tuple[int, int]] = set()
        self.stats = StalenessStats()
        self.n_lookups = 0
        self.n_index_hits = 0
        self.n_insert_events = 0
        self.n_evict_events = 0
        self.reannouncements = 0

    def record_insert(
        self,
        client: int,
        doc: int,
        version: int,
        size: int,
        now: float,
        ttl: float | None = None,
        replace: bool = False,
    ) -> None:
        entry = ReferenceIndexEntry(
            client=client, doc=doc, version=version, size=size, timestamp=now, ttl=ttl
        )
        self.n_insert_events += 1
        state = self._client_state[client]
        if not replace:
            state.cached_docs += 1
        if self.mode is UpdateMode.INVALIDATION:
            holders = self._visible.setdefault(doc, {})
            if client not in holders:
                self._n_entries += 1
            holders[client] = entry
            self._restored.discard((doc, client))
        else:
            self._pending[client][doc] = entry
            state.pending_changes += 1
            self._maybe_flush(client, now)

    def record_evict(self, client: int, doc: int, now: float) -> None:
        self.n_evict_events += 1
        state = self._client_state[client]
        state.cached_docs = max(0, state.cached_docs - 1)
        if self.mode is UpdateMode.INVALIDATION:
            holders = self._visible.get(doc)
            if holders and client in holders:
                del holders[client]
                self._n_entries -= 1
                self._restored.discard((doc, client))
                if not holders:
                    del self._visible[doc]
        else:
            self._pending[client][doc] = None
            state.pending_changes += 1
            self._maybe_flush(client, now)

    def _maybe_flush(self, client: int, now: float) -> None:
        assert self.policy is not None
        if self.policy.should_flush(self._client_state[client], now):
            self.flush(client, now)

    def flush(self, client: int, now: float) -> int:
        pending = self._pending[client]
        n_items = len(pending)
        if n_items == 0:
            return 0
        for doc, entry in pending.items():
            self._restored.discard((doc, client))
            if entry is None:
                holders = self._visible.get(doc)
                if holders and client in holders:
                    del holders[client]
                    self._n_entries -= 1
                    if not holders:
                        del self._visible[doc]
            else:
                holders = self._visible.setdefault(doc, {})
                if client not in holders:
                    self._n_entries += 1
                holders[client] = entry
        pending.clear()
        state = self._client_state[client]
        state.pending_changes = 0
        state.last_flush = now
        self.stats.flushes += 1
        self.stats.flushed_items += n_items
        return n_items

    def flush_all(self, now: float) -> None:
        for client in range(self.n_clients):
            self.flush(client, now)

    def lookup(
        self,
        doc: int,
        exclude_client: int,
        now: float,
        version: int | None = None,
    ) -> ReferenceIndexLookup | None:
        self.n_lookups += 1
        holders = self._visible.get(doc)
        if not holders:
            return None
        candidates = [
            (c, e)
            for c, e in holders.items()
            if c != exclude_client
            and not e.expired(now)
            and (version is None or e.version == version)
        ]
        if not candidates:
            return None
        candidates.sort()
        self._rr += 1
        client, entry = candidates[self._rr % len(candidates)]
        self.n_index_hits += 1
        return ReferenceIndexLookup(client=client, entry=entry)

    def holders_of(self, doc: int) -> list[int]:
        return sorted(self._visible.get(doc, ()))

    def candidate_holders(
        self,
        doc: int,
        exclude_client: int,
        now: float,
        version: int | None = None,
    ) -> list[int]:
        holders = self._visible.get(doc)
        if not holders:
            return []
        return sorted(
            c
            for c, e in holders.items()
            if c != exclude_client
            and not e.expired(now)
            and (version is None or e.version == version)
        )

    def export_snapshot(self) -> dict[int, dict[int, ReferenceIndexEntry]]:
        return {doc: dict(holders) for doc, holders in self._visible.items()}

    def restore_snapshot(self, payload: dict[int, dict[int, ReferenceIndexEntry]]) -> None:
        self._visible = {doc: dict(holders) for doc, holders in payload.items()}
        self._n_entries = sum(len(h) for h in self._visible.values())
        self._restored = {
            (doc, client)
            for doc, holders in self._visible.items()
            for client in holders
        }

    def reannounce(
        self,
        client: int,
        items,
        now: float,
        ttl: float | None = None,
    ) -> int:
        for doc in list(self._visible):
            holders = self._visible[doc]
            if client in holders:
                del holders[client]
                self._n_entries -= 1
                self._restored.discard((doc, client))
                if not holders:
                    del self._visible[doc]
        self._pending[client].clear()
        n_items = 0
        for doc, version, size in items:
            holders = self._visible.setdefault(doc, {})
            if client not in holders:
                self._n_entries += 1
            holders[client] = ReferenceIndexEntry(
                client=client,
                doc=doc,
                version=version,
                size=size,
                timestamp=now,
                ttl=ttl,
            )
            n_items += 1
        state = self._client_state[client]
        state.cached_docs = n_items
        state.pending_changes = 0
        state.last_flush = now
        self.reannouncements += 1
        return n_items

    @property
    def n_entries(self) -> int:
        return self._n_entries

    def footprint_bytes(self) -> int:
        return self.n_entries * ReferenceIndexEntry.WIRE_BYTES

    def record_false_hit(self, client: int | None = None, doc: int | None = None) -> None:
        self.stats.false_hits += 1
        if (
            client is not None
            and doc is not None
            and (doc, client) in self._restored
        ):
            self.stats.false_hits_after_restore += 1

    def record_false_miss(self) -> None:
        self.stats.false_misses += 1


class ReferenceSimulator:
    """One organization, one configuration, one trace replay —
    pre-optimization engine, frozen for differential testing."""

    def __init__(
        self,
        trace: Trace,
        organization: Organization,
        config: SimulationConfig,
    ) -> None:
        self.trace = trace
        self.organization = organization
        self.config = config
        self.features = organization.features
        if config.memory_fraction is not None and (
            config.browser_policy != "lru" or config.proxy_policy != "lru"
        ):
            raise ValueError("the tiered memory model supports only LRU caches")

        n_clients = int(trace.clients.max()) + 1 if len(trace) else 1
        self._tiered = config.memory_fraction is not None

        browser_mem = (
            config.browser_memory_fraction
            if config.browser_memory_fraction is not None
            else config.memory_fraction
        )
        if self.features.has_browsers:
            capacities = self._browser_capacities(n_clients)
            self.browsers = [
                self._new_cache(config.browser_policy, capacities[c], browser_mem)
                for c in range(n_clients)
            ]
        else:
            self.browsers = []

        self.proxy = (
            self._new_cache(config.proxy_policy, config.proxy_capacity, config.memory_fraction)
            if self.features.has_proxy
            else None
        )

        if self.features.has_index:
            self.index = self._new_index(n_clients)
            self._now = 0.0
            for cid, cache in enumerate(self.browsers):
                cache.on_evict = self._make_evict_hook(cid)
        else:
            self.index = None

        self._churn = (
            ChurnProcess(config.churn, seed=config.availability_seed)
            if config.churn is not None
            else None
        )
        if self._churn is None and config.holder_availability < 1.0:
            self._avail_rng = random.Random(config.availability_seed)
        else:
            self._avail_rng = None
        self._corrupt_rng = (
            random.Random(derive_seed(config.availability_seed, "integrity"))
            if config.corruption_rate > 0.0
            else None
        )
        self._security = config.security
        if self._security is None and config.corruption_rate > 0.0:
            self._security = SecurityOverheadModel()

        self._fault_schedule = (
            ProxyFaultSchedule(config.proxy_faults, seed=config.availability_seed)
            if config.proxy_faults is not None
            and (self.features.has_proxy or self.features.has_index)
            else None
        )
        self._checkpointer = (
            IndexCheckpointer(config.checkpoint)
            if config.checkpoint is not None and self.features.has_index
            else None
        )
        self._recovering = False
        self._window_start = 0.0
        self._window_end = 0.0
        self._pending_reannounce: list[tuple[float, int]] = []
        self._reannounce_pos = 0
        self._last_t = 0.0
        self._prior_stats = StalenessStats()
        self._prior_lookups = 0
        self._prior_update_messages = 0

        self.bus = SharedBus(config.lan)
        self.result = SimulationResult(
            trace_name=trace.name,
            organization=organization.value,
            uses_memory_tier=self._tiered,
        )

    # -- construction helpers ------------------------------------------------

    def _browser_capacities(self, n_clients: int) -> list[int]:
        caps = self.config.browser_capacities
        if caps is None:
            return [self.config.browser_capacity] * n_clients
        if len(caps) < n_clients:
            raise ValueError(
                f"browser_capacities covers {len(caps)} clients but the trace "
                f"has {n_clients}"
            )
        return list(caps[:n_clients])

    def _new_cache(self, policy: str, capacity: int, memory_fraction: float | None):
        if self._tiered:
            return TieredLRUCache(capacity, memory_fraction)
        if policy == "lru":
            # the frozen LRU, not the optimized one the live engine uses
            return ReferenceLRUCache(capacity)
        return make_cache(policy, capacity)

    def _new_index(self, n_clients: int):
        config = self.config
        if config.index_kind == "bloom":
            avg_doc = max(1, int(self.trace.sizes.mean())) if len(self.trace) else 1
            capacities = self._browser_capacities(n_clients)
            mean_capacity = (
                int(sum(capacities) / len(capacities))
                if capacities
                else config.browser_capacity
            )
            expected = max(8, mean_capacity // avg_doc)
            return BloomBrowserIndex(
                n_clients,
                expected_docs_per_client=expected,
                bits_per_doc=config.bloom_bits_per_doc,
                rebuild_threshold=config.bloom_rebuild_threshold,
            )
        if config.index_update_policy is None:
            return ReferenceBrowserIndex(n_clients, UpdateMode.INVALIDATION)
        return ReferenceBrowserIndex(
            n_clients, UpdateMode.PERIODIC, policy=config.index_update_policy
        )

    def _make_evict_hook(self, client: int):
        def hook(doc: int) -> None:
            self.index.record_evict(client, doc, self._now)

        return hook

    # -- cache access helpers (uniform over plain / tiered caches) ----------

    def _get(self, cache, key: int):
        """Returns ``(entry, served_from_memory: bool | None)``."""
        if self._tiered:
            entry, tier = cache.get(key)
            if entry is None:
                return None, None
            return entry, tier.value == "memory"
        return cache.get(key), None

    def _peek_tier(self, cache, key: int):
        if self._tiered:
            tier = cache.tier_of(key)
            return None if tier is None else tier.value == "memory"
        return None

    def _holder_online(self, holder: int, now: float) -> bool:
        if self._churn is not None:
            return self._churn.online(holder, now)
        if self._avail_rng is None:
            return True
        return self._avail_rng.random() < self.config.holder_availability

    def _transfer_corrupted(self) -> bool:
        return (
            self._corrupt_rng is not None
            and self._corrupt_rng.random() < self.config.corruption_rate
        )

    # -- resilient remote-hit delivery --------------------------------------

    def _probe_holder(
        self, holder: int, d: int, s: int, v: int, t: float
    ) -> tuple[bool, bool | None]:
        config = self.config
        result = self.result
        overhead = result.overhead
        lan = config.lan
        if not self._holder_online(holder, t):
            result.holder_unavailable += 1
            overhead.wasted_round_trip_time += lan.connection_setup
            overhead.wasted_offline_time += lan.connection_setup
            return False, None
        holder_cache = self.browsers[holder]
        if config.remote_hit_refreshes_holder:
            held, memory = self._get(holder_cache, d)
        else:
            held = holder_cache.peek(d)
            memory = self._peek_tier(holder_cache, d)
        if held is None or held.version != v:
            self.index.record_false_hit(holder, d)
            result.index_false_hits += 1
            overhead.wasted_round_trip_time += lan.connection_setup
            overhead.wasted_false_hit_time += lan.connection_setup
            return False, None
        if self._transfer_corrupted():
            result.integrity_failures += 1
            cost = lan.transfer_time(s)
            if self._security is not None:
                cost += self._security.verify_cost(s)
            overhead.integrity_retransmission_time += cost
            return False, None
        self.bus.submit(t, s)
        result.record(HitLocation.REMOTE_BROWSER, s, memory)
        overhead.remote_storage_time += self._storage_time(s, memory)
        if self._security is not None:
            overhead.security_time += self._security.transfer_cost(s)
        return True, memory

    def _remote_delivery(
        self, c: int, d: int, s: int, v: int, t: float
    ) -> tuple[bool, bool | None]:
        index = self.index
        result = self.result
        hit = index.lookup(d, exclude_client=c, now=t, version=v)
        if hit is None:
            if self._recovering:
                if self._truth_holds(d, v, exclude=c):
                    result.hits_lost_to_recovery += 1
            elif index.is_stale and self._truth_holds(d, v, exclude=c):
                index.record_false_miss()
            return False, None
        tried = {hit.client}
        holder = hit.client
        retries_left = self.config.max_holder_retries
        candidates: list[int] | None = None
        while True:
            served, memory = self._probe_holder(holder, d, s, v, t)
            if served:
                if len(tried) > 1:
                    result.failover_rescued_hits += 1
                return True, memory
            if retries_left <= 0:
                return False, None
            if candidates is None:
                candidates = index.candidate_holders(
                    d, exclude_client=c, now=t, version=v
                )
            backup = next((x for x in candidates if x not in tried), None)
            if backup is None:
                return False, None
            tried.add(backup)
            holder = backup
            retries_left -= 1
            result.failover_attempts += 1

    def _storage_time(self, n_bytes: int, memory: bool | None) -> float:
        storage = self.config.storage
        if memory:
            return storage.memory_time(n_bytes)
        return storage.disk_time(n_bytes)

    def _browser_put(self, client: int, doc: int, size: int, version: int, now: float) -> None:
        cache = self.browsers[client]
        if self.index is not None:
            already = doc in cache
            self._now = now
            cache.put(doc, size, version)
            if doc in cache:
                self.index.record_insert(
                    client,
                    doc,
                    version,
                    size,
                    now,
                    ttl=self.config.index_entry_ttl,
                    replace=already,
                )
            elif already:
                self.index.record_evict(client, doc, now)
        else:
            cache.put(doc, size, version)

    # -- proxy crash recovery ------------------------------------------------

    def _advance_recovery(self, t: float) -> bool:
        self._last_t = t
        checkpointer = self._checkpointer
        faults = self._fault_schedule
        result = self.result
        crashed = False
        while True:
            ck_at = checkpointer.next_due(t) if checkpointer is not None else None
            crash_at = faults.peek(t) if faults is not None else None
            if ck_at is None and crash_at is None:
                break
            if crash_at is None or (ck_at is not None and ck_at <= crash_at):
                if self._recovering:
                    self._apply_reannouncements(ck_at)
                    if ck_at >= self._window_end:
                        self._close_window(self._window_end)
                result.overhead.checkpoint_time += checkpointer.take(
                    self.index, ck_at
                )
                result.checkpoint_bytes_written = checkpointer.bytes_written
            else:
                faults.pop()
                self._handle_crash(crash_at)
                crashed = True
        if self._recovering:
            self._apply_reannouncements(t)
            if t >= self._window_end:
                self._close_window(self._window_end)
            else:
                result.degraded_window_requests += 1
        return crashed

    def _handle_crash(self, tc: float) -> None:
        result = self.result
        result.proxy_crashes += 1
        if self._recovering:
            self._apply_reannouncements(tc)
            self._close_window(tc)
        if self.proxy is not None:
            self.proxy.clear()
        if self.index is None:
            return
        old = self.index
        self._prior_stats = self._prior_stats.merged(old.stats)
        self._prior_lookups += old.n_lookups
        self._prior_update_messages += old.update_messages
        self.index = self._new_index(old.n_clients)
        if self._checkpointer is not None:
            snapshot = self._checkpointer.latest()
            if snapshot is not None:
                self.index.restore_snapshot(snapshot.payload)
                result.overhead.checkpoint_time += self._checkpointer.restore_time()
            self._checkpointer.reset_after_crash(tc)
        rate = self.config.reannounce_rate
        announcers = [
            cid for cid, cache in enumerate(self.browsers) if len(cache) > 0
        ]
        self._pending_reannounce = [
            (tc + (i + 1) / rate, cid) for i, cid in enumerate(announcers)
        ]
        self._reannounce_pos = 0
        self._recovering = True
        self._window_start = tc
        if self._pending_reannounce:
            self._window_end = self._pending_reannounce[-1][0]
        else:
            self._window_end = tc
            self._close_window(tc)

    def _apply_reannouncements(self, t: float) -> None:
        pending = self._pending_reannounce
        pos = self._reannounce_pos
        ttl = self.config.index_entry_ttl
        while pos < len(pending) and pending[pos][0] <= t:
            due, cid = pending[pos]
            cache = self.browsers[cid]
            items = []
            for doc in cache:
                entry = cache.peek(doc)
                items.append((doc, entry.version, entry.size))
            self.index.reannounce(cid, items, due, ttl=ttl)
            pos += 1
        self._reannounce_pos = pos

    def _close_window(self, end: float) -> None:
        self.result.recovery_time += end - self._window_start
        self._recovering = False

    # -- the replay loop ----------------------------------------------------

    def run(self) -> SimulationResult:
        if self.config.consistency is not None:
            return self._run_coherent()
        return self._run_fast()

    def _run_fast(self) -> SimulationResult:
        features = self.features
        config = self.config
        result = self.result
        overhead = result.overhead
        browsers = self.browsers
        proxy = self.proxy
        index = self.index
        lan = config.lan
        wan = config.wan
        recovery = (
            self._advance_recovery
            if self._fault_schedule is not None or self._checkpointer is not None
            else None
        )

        for t, c, d, s, v in self.trace.iter_rows():
            if recovery is not None and recovery(t):
                proxy = self.proxy
                index = self.index

            # 1. local browser cache
            if features.has_browsers:
                entry, memory = self._get(browsers[c], d)
                if entry is not None and entry.version == v:
                    result.record(HitLocation.LOCAL_BROWSER, s, memory)
                    overhead.local_hit_time += self._storage_time(s, memory)
                    continue

            # 2. proxy cache
            if proxy is not None:
                entry, memory = self._get(proxy, d)
                if entry is not None and entry.version == v:
                    result.record(HitLocation.PROXY, s, memory)
                    overhead.proxy_hit_time += self._storage_time(
                        s, memory
                    ) + lan.transfer_time(s)
                    if features.has_browsers:
                        self._browser_put(c, d, s, v, t)
                    continue

            # 3. browser index -> remote browser cache (with failover)
            if index is not None:
                remote_served, _memory = self._remote_delivery(c, d, s, v, t)
                if remote_served:
                    if features.caches_remote_fetches:
                        self._browser_put(c, d, s, v, t)
                        if config.cache_remote_hits_at_proxy and proxy is not None:
                            proxy.put(d, s, v)
                    self._track_index_peak()
                    continue

            # 4. origin server
            result.record(HitLocation.ORIGIN, s)
            overhead.origin_miss_time += wan.fetch_time(s) + lan.transfer_time(s)
            if proxy is not None:
                proxy.put(d, s, v)
            if features.has_browsers:
                self._browser_put(c, d, s, v, t)
            if index is not None:
                self._track_index_peak()

        return self._finalise()

    # -- coherent replay (expiration-based consistency) ----------------------

    def _run_coherent(self) -> SimulationResult:
        features = self.features
        config = self.config
        result = self.result
        overhead = result.overhead
        cstats = result.consistency_stats
        browsers = self.browsers
        proxy = self.proxy
        index = self.index
        lan = config.lan
        wan = config.wan
        policy = config.consistency
        recovery = (
            self._advance_recovery
            if self._fault_schedule is not None or self._checkpointer is not None
            else None
        )

        last_modified: dict[int, float] = {}
        seen_version: dict[int, int] = {}

        def coherence_action(entry, v: int, t: float, last_mod: float) -> str:
            if t <= entry.expires_at:
                return "serve"
            cstats.validations += 1
            overhead.validation_time += wan.connection_setup
            if entry.version == v:
                cstats.validated_hits += 1
                entry.expires_at = policy.expires_at(t, last_mod)
                return "validated"
            cstats.validation_misses += 1
            return "changed"

        def stamp(cache, d: int, t: float, last_mod: float) -> None:
            entry = cache.peek(d)
            if entry is not None:
                entry.expires_at = policy.expires_at(t, last_mod)

        for t, c, d, s, v in self.trace.iter_rows():
            if recovery is not None and recovery(t):
                proxy = self.proxy
                index = self.index

            sv = seen_version.get(d)
            if sv is None or v > sv:
                seen_version[d] = v
                last_modified[d] = t
            last_mod = last_modified[d]
            served = False
            go_origin = False

            # 1. local browser cache
            if features.has_browsers:
                entry, memory = self._get(browsers[c], d)
                if entry is not None:
                    action = coherence_action(entry, v, t, last_mod)
                    if action in ("serve", "validated"):
                        if action == "serve" and entry.version != v:
                            cstats.stale_deliveries += 1
                            cstats.stale_bytes += s
                        result.record(HitLocation.LOCAL_BROWSER, s, memory)
                        overhead.local_hit_time += self._storage_time(s, memory)
                        served = True
                    elif action == "changed":
                        go_origin = True

            # 2. proxy cache
            if not served and not go_origin and proxy is not None:
                entry, memory = self._get(proxy, d)
                if entry is not None:
                    action = coherence_action(entry, v, t, last_mod)
                    if action in ("serve", "validated"):
                        if action == "serve" and entry.version != v:
                            cstats.stale_deliveries += 1
                            cstats.stale_bytes += s
                        result.record(HitLocation.PROXY, s, memory)
                        overhead.proxy_hit_time += self._storage_time(
                            s, memory
                        ) + lan.transfer_time(s)
                        if features.has_browsers:
                            self._browser_put(c, d, s, entry.version, t)
                            stamp(browsers[c], d, t, last_mod)
                        served = True
                    elif action == "changed":
                        go_origin = True

            # 3. browser index -> remote browser cache (exact match only,
            #    with failover)
            if not served and not go_origin and index is not None:
                remote_served, _memory = self._remote_delivery(c, d, s, v, t)
                if remote_served:
                    if features.caches_remote_fetches:
                        self._browser_put(c, d, s, v, t)
                        stamp(browsers[c], d, t, last_mod)
                        if config.cache_remote_hits_at_proxy and proxy is not None:
                            proxy.put(d, s, v)
                            stamp(proxy, d, t, last_mod)
                    served = True
                    self._track_index_peak()

            # 4. origin server
            if not served:
                result.record(HitLocation.ORIGIN, s)
                overhead.origin_miss_time += wan.fetch_time(s) + lan.transfer_time(s)
                if proxy is not None:
                    proxy.put(d, s, v)
                    stamp(proxy, d, t, last_mod)
                if features.has_browsers:
                    self._browser_put(c, d, s, v, t)
                    stamp(browsers[c], d, t, last_mod)
                if index is not None:
                    self._track_index_peak()

        return self._finalise()

    def _truth_holds(self, doc: int, version: int, exclude: int) -> bool:
        for cid, cache in enumerate(self.browsers):
            if cid == exclude:
                continue
            held = cache.peek(doc)
            if held is not None and held.version == version:
                return True
        return False

    def _track_index_peak(self) -> None:
        n = self.index.n_entries
        if n > self.result.index_peak_entries:
            self.result.index_peak_entries = n
            self.result.index_peak_footprint_bytes = self.index.footprint_bytes()

    def _finalise(self) -> SimulationResult:
        result = self.result
        result.overhead.absorb_bus(self.bus.stats)
        if self._recovering:
            self._close_window(self._last_t)
        if self.index is not None:
            stats = self.index.stats
            lookups = self.index.n_lookups
            messages = self.index.update_messages
            if self._fault_schedule is not None:
                stats = self._prior_stats.merged(stats)
                lookups += self._prior_lookups
                messages += self._prior_update_messages
            result.index_stats = stats
            result.index_lookups = lookups
            result.overhead.index_update_messages = messages
        if self._checkpointer is not None:
            result.checkpoint_bytes_written = self._checkpointer.bytes_written
        return result


def reference_simulate(
    trace: Trace,
    organization: Organization,
    config: SimulationConfig,
) -> SimulationResult:
    """One-shot reference replay (the differential oracle)."""
    return ReferenceSimulator(trace, organization, config).run()
