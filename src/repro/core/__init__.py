"""Simulation core: the five caching organizations of the paper and the
trace-driven engine that evaluates them.

Typical use::

    from repro.core import Organization, SimulationConfig, Simulator
    from repro.traces import load_paper_trace

    trace = load_paper_trace("NLANR-uc")
    config = SimulationConfig.relative(trace, proxy_frac=0.10, browser_sizing="minimum")
    result = Simulator(trace, Organization.BROWSERS_AWARE_PROXY, config).run()
    print(result.hit_ratio, result.byte_hit_ratio, result.breakdown())
"""

from repro.adversarial import AdversarialConfig, PeerPopulation
from repro.core.chaos import ChaosPlan, InvariantMonitor, InvariantViolation
from repro.core.events import HitLocation
from repro.core.churn import ChurnModel, ChurnProcess, MassChurnSchedule
from repro.core.proxy_faults import ProxyFaultModel, ProxyFaultSchedule
from repro.core.config import (
    FederationConfig,
    SimulationConfig,
    minimum_browser_capacity,
    average_browser_capacity,
)
from repro.index.checkpoint import CheckpointPolicy, IndexCheckpointer, IndexSnapshot
from repro.core.policies import Organization, ORGANIZATION_LABELS
from repro.core.metrics import SimulationResult, HitBreakdown, SweepTiming
from repro.core.simulator import Simulator, simulate
from repro.core.stream_engine import StreamSimulator, simulate_stream
from repro.core.overhead import OverheadReport
from repro.core.faults import FaultPlan, InjectedFault
from repro.core.journal import (
    JournalWriter,
    load_completed_results,
    result_from_jsonable,
    result_to_jsonable,
)
from repro.core.parallel import (
    CellEvent,
    CellFailure,
    CellTimeout,
    EngineOptions,
    SweepCell,
    SweepRun,
    build_cells,
    resolve_workers,
    run_cells,
)
from repro.core.scaling import ScalingResult, run_scaling_experiment
from repro.core.sweep import SweepResult, run_policy_sweep, run_size_sweep

__all__ = [
    "AdversarialConfig",
    "PeerPopulation",
    "ChaosPlan",
    "InvariantMonitor",
    "InvariantViolation",
    "HitLocation",
    "ChurnModel",
    "ChurnProcess",
    "MassChurnSchedule",
    "ProxyFaultModel",
    "ProxyFaultSchedule",
    "CheckpointPolicy",
    "IndexCheckpointer",
    "IndexSnapshot",
    "FederationConfig",
    "SimulationConfig",
    "minimum_browser_capacity",
    "average_browser_capacity",
    "Organization",
    "ORGANIZATION_LABELS",
    "SimulationResult",
    "HitBreakdown",
    "SweepTiming",
    "Simulator",
    "simulate",
    "StreamSimulator",
    "simulate_stream",
    "OverheadReport",
    "SweepCell",
    "SweepRun",
    "CellEvent",
    "CellFailure",
    "CellTimeout",
    "EngineOptions",
    "FaultPlan",
    "InjectedFault",
    "JournalWriter",
    "load_completed_results",
    "result_to_jsonable",
    "result_from_jsonable",
    "build_cells",
    "run_cells",
    "resolve_workers",
    "ScalingResult",
    "run_scaling_experiment",
    "SweepResult",
    "run_policy_sweep",
    "run_size_sweep",
]
