"""The five caching organizations of paper §3.2.

Each organization is a combination of three features — per-client
browser caches, a shared proxy cache, and the browser index enabling
remote-browser hits:

================================  ========  =====  =====
organization                      browsers  proxy  index
================================  ========  =====  =====
proxy-cache-only                  no        yes    no
local-browser-cache-only          yes       no     no
global-browsers-cache-only        yes       no     yes
proxy-and-local-browser           yes       yes    no
browsers-aware-proxy-server       yes       yes    yes
================================  ========  =====  =====

global-browsers-cache-only additionally follows the paper's rule that
"a browser does not cache documents fetched from another browser
cache"; BAPS caches remote fetches at the requesting browser (the
document is forwarded to the requesting client either directly or via
the proxy).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Organization", "OrganizationFeatures", "ORGANIZATION_LABELS"]


@dataclass(frozen=True)
class OrganizationFeatures:
    """Feature switches the engine reads."""

    has_browsers: bool
    has_proxy: bool
    has_index: bool
    #: does a remote-browser hit populate the requester's browser?
    caches_remote_fetches: bool


class Organization(Enum):
    """The five §3.2 caching organizations."""

    PROXY_ONLY = "proxy-cache-only"
    LOCAL_BROWSER_ONLY = "local-browser-cache-only"
    GLOBAL_BROWSERS_ONLY = "global-browsers-cache-only"
    PROXY_AND_LOCAL_BROWSER = "proxy-and-local-browser"
    BROWSERS_AWARE_PROXY = "browsers-aware-proxy-server"

    @property
    def features(self) -> OrganizationFeatures:
        return _FEATURES[self]

    @classmethod
    def from_name(cls, name: str) -> "Organization":
        """Accept either the enum name or the paper's hyphenated label."""
        try:
            return cls[name.upper().replace("-", "_")]
        except KeyError:
            pass
        for org in cls:
            if org.value == name.lower():
                return org
        known = ", ".join(o.value for o in cls)
        raise KeyError(f"unknown organization {name!r}; known: {known}")


_FEATURES = {
    Organization.PROXY_ONLY: OrganizationFeatures(
        has_browsers=False, has_proxy=True, has_index=False, caches_remote_fetches=False
    ),
    Organization.LOCAL_BROWSER_ONLY: OrganizationFeatures(
        has_browsers=True, has_proxy=False, has_index=False, caches_remote_fetches=False
    ),
    Organization.GLOBAL_BROWSERS_ONLY: OrganizationFeatures(
        has_browsers=True, has_proxy=False, has_index=True, caches_remote_fetches=False
    ),
    Organization.PROXY_AND_LOCAL_BROWSER: OrganizationFeatures(
        has_browsers=True, has_proxy=True, has_index=False, caches_remote_fetches=False
    ),
    Organization.BROWSERS_AWARE_PROXY: OrganizationFeatures(
        has_browsers=True, has_proxy=True, has_index=True, caches_remote_fetches=True
    ),
}

#: display labels matching the paper's figures.
ORGANIZATION_LABELS = {org: org.value for org in Organization}
