"""Proxy crash schedules: when the BAPS proxy dies and restarts.

The paper's reliability story (§6) hardens data integrity and peer
availability but assumes the proxy — the machine holding the *only*
copy of the browser index — never fails.  Directory-based cooperative
caches identify exactly that index loss as their dominant failure mode:
a proxy restart comes back with a cold cache and no idea which browser
holds what.

:class:`ProxyFaultModel` describes when crashes happen; the companion
:class:`ProxyFaultSchedule` materialises them for one replay.  Like
:class:`~repro.core.churn.ChurnProcess`, the schedule is:

* **virtual-time driven** — crash times live on the trace clock, never
  wall time, so a replay is reproducible and worker-count independent;
* **deterministic** — rate-based schedules draw inter-crash gaps from a
  seeded stream (``derive_seed(master, "proxy-faults")``); explicit
  schedules construct no RNG at all;
* **lazy** — the next crash time is drawn only when the engine asks,
  so crashes past the end of the trace cost nothing.

What a crash *does* — cold proxy cache, destroyed index, restore from
the last checkpoint, rebuild from client re-announcements, degraded
service meanwhile — is the engine's job (see
:mod:`repro.core.simulator` and :mod:`repro.index.checkpoint`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.util.rng import derive_seed
from repro.util.validation import check_crash_rate, check_crash_schedule

__all__ = ["ProxyFaultModel", "ProxyFaultSchedule"]

#: supported inter-crash gap distributions for rate-based schedules.
DISTRIBUTIONS = ("exponential", "pareto")


@dataclass(frozen=True)
class ProxyFaultModel:
    """When the proxy crashes.

    Either ``crash_times`` lists explicit crash instants (virtual
    seconds into the trace; the reproducible choice for experiments and
    tests) or ``crash_rate`` draws inter-crash gaps with mean
    ``1 / crash_rate`` from ``distribution`` — ``"exponential"`` for
    memoryless failures, ``"pareto"`` (shape ``pareto_alpha`` > 1) for
    heavy-tailed ones where long stable stretches separate crash
    bursts.  The two sources are mutually exclusive.
    """

    crash_rate: float = 0.0
    crash_times: tuple[float, ...] | None = None
    distribution: str = "exponential"
    pareto_alpha: float = 1.5

    def __post_init__(self) -> None:
        check_crash_rate(self.crash_rate)
        if self.crash_times is not None:
            object.__setattr__(
                self, "crash_times", tuple(sorted(float(t) for t in self.crash_times))
            )
        check_crash_schedule(self.crash_rate, self.crash_times)
        if self.distribution not in DISTRIBUTIONS:
            raise ValueError(
                f"distribution must be one of {DISTRIBUTIONS}, "
                f"got {self.distribution!r}"
            )
        if self.distribution == "pareto" and self.pareto_alpha <= 1.0:
            raise ValueError(
                f"pareto_alpha must be > 1 for a finite mean inter-crash "
                f"gap, got {self.pareto_alpha}"
            )

    @property
    def is_explicit(self) -> bool:
        """True when the schedule is a literal crash-time list (no RNG)."""
        return self.crash_times is not None


class ProxyFaultSchedule:
    """Crash times of one replay, consumed in order.

    ``peek(now)`` returns the earliest unconsumed crash time that has
    already passed (<= *now*), or ``None``; ``pop()`` consumes it.  The
    engine interleaves these with checkpoint deadlines so events apply
    in virtual-time order between requests.
    """

    def __init__(self, model: ProxyFaultModel, seed: int = 0) -> None:
        self.model = model
        if model.is_explicit:
            self._times = model.crash_times
            self._pos = 0
            self._rng = None
            self._next: float | None = self._times[0] if self._times else None
        else:
            self._times = None
            self._rng = random.Random(derive_seed(seed, "proxy-faults"))
            self._next = self._draw_after(0.0)

    def _draw_after(self, last: float) -> float:
        """Absolute time of the crash following the one at *last*."""
        model = self.model
        assert self._rng is not None
        if model.distribution == "pareto":
            # Scale so the gap's mean matches 1 / crash_rate, mirroring
            # churn.ChurnProcess session-length draws.
            mean = 1.0 / model.crash_rate
            scale = mean * (model.pareto_alpha - 1.0) / model.pareto_alpha
            gap = scale * self._rng.paretovariate(model.pareto_alpha)
        else:
            gap = self._rng.expovariate(model.crash_rate)
        return last + gap

    def peek(self, now: float) -> float | None:
        """The earliest pending crash time <= *now*, without consuming it."""
        if self._next is not None and self._next <= now:
            return self._next
        return None

    def pop(self) -> float:
        """Consume the pending crash time and schedule the next one."""
        assert self._next is not None
        crashed_at = self._next
        if self._times is not None:
            self._pos += 1
            self._next = (
                self._times[self._pos] if self._pos < len(self._times) else None
            )
        else:
            self._next = self._draw_after(crashed_at)
        return crashed_at
