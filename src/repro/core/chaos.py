"""Composed chaos schedules and the mid-replay invariant monitor.

Every fault model in the library — proxy crash schedules
(:mod:`repro.core.proxy_faults`), client churn
(:mod:`repro.core.churn`), adversarial peer profiles
(:mod:`repro.adversarial`), inter-proxy link partitions
(:mod:`repro.federation.linkfaults`) — was built to run alone.  Real
outages compose: a proxy crashes *during* a partition while flappers
churn.  :class:`ChaosPlan` is the one seeded spec that installs several
models at once, deriving every stochastic sub-stream from one master
seed via namespaced :func:`~repro.util.rng.derive_seed`, so a composed
scenario is exactly as reproducible (and worker-count independent) as
each model alone.

Long chaos soaks have a debugging problem: a counter corrupted at
request 40 000 surfaces as a nonsense ledger at finalise, two million
requests later.  :class:`InvariantMonitor` (opt-in via
``check_invariants_every``) asserts the engine's conservation laws
mid-replay — hits + misses == requests served, the
:class:`~repro.core.overhead.OverheadReport` ledger non-negative and
internally consistent, gated counters zero while their knob is off —
raising :class:`InvariantViolation` naming the violated law and the
request index, so a soak fails at the violating request, not at
finalise.

With ``SimulationConfig.chaos = None`` (the default) nothing here
executes, no RNG is constructed, and every existing result is
bit-identical.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.core.events import HitLocation
from repro.core.metrics import SimulationResult
from repro.core.overhead import OverheadReport
from repro.util.rng import derive_seed

if TYPE_CHECKING:
    from repro.adversarial import AdversarialConfig
    from repro.core.churn import ChurnModel
    from repro.core.config import SimulationConfig
    from repro.core.proxy_faults import ProxyFaultModel
    from repro.federation.linkfaults import LinkFaultModel

__all__ = ["ChaosPlan", "InvariantMonitor", "InvariantViolation"]

#: relative slack for comparing independently accumulated float sums.
_REL_TOL = 1e-9
_ABS_TOL = 1e-9


@dataclass(frozen=True)
class ChaosPlan:
    """One seeded spec composing several fault models.

    Any subset of the sub-models may be set; each is installed verbatim
    on the config by :meth:`compose` (a sub-model also set directly on
    the config is a validation error — the plan owns what it composes).
    ``seed`` folds into the config's ``availability_seed`` through the
    ``"chaos"`` namespace — ``derive_seed(availability_seed, "chaos",
    seed)`` — so composed runs draw streams independent of any plain
    run with the same master seed while sweep cells (whose engine
    derives a per-cell ``availability_seed``) stay uncorrelated;
    ``None`` keeps the config's own seed untouched.
    ``check_invariants_every`` > 0 arms the :class:`InvariantMonitor`
    at that request cadence.
    """

    proxy_faults: "ProxyFaultModel | None" = None
    churn: "ChurnModel | None" = None
    adversarial: "AdversarialConfig | None" = None
    link_faults: "LinkFaultModel | None" = None
    seed: int | None = None
    check_invariants_every: int = 0

    def __post_init__(self) -> None:
        if self.check_invariants_every < 0:
            raise ValueError(
                f"check_invariants_every must be >= 0 requests, "
                f"got {self.check_invariants_every!r}"
            )

    @property
    def monitored(self) -> bool:
        return self.check_invariants_every > 0

    def compose(self, config: "SimulationConfig") -> "SimulationConfig":
        """Install the plan's sub-models on *config*.

        Returns a config whose fault knobs carry the composed models
        and whose ``chaos`` field retains only the monitor cadence (or
        ``None`` when unmonitored), so composing is idempotent — the
        engines resolve at construction and a pre-resolved config
        passes through unchanged.
        """
        updates: dict = {}
        if self.proxy_faults is not None:
            updates["proxy_faults"] = self.proxy_faults
        if self.churn is not None:
            updates["churn"] = self.churn
        if self.adversarial is not None:
            updates["adversarial"] = self.adversarial
        if self.link_faults is not None:
            # Validated by SimulationConfig.__post_init__: link faults
            # require a federation to have links to cut.
            updates["federation"] = replace(
                config.federation, link_faults=self.link_faults
            )
        if self.seed is not None:
            updates["availability_seed"] = derive_seed(
                config.availability_seed, "chaos", self.seed
            )
        updates["chaos"] = (
            ChaosPlan(check_invariants_every=self.check_invariants_every)
            if self.monitored
            else None
        )
        return config.with_(**updates)


class InvariantViolation(AssertionError):
    """A conservation law failed mid-replay (or at finalise)."""


class InvariantMonitor:
    """Asserts the engine's conservation laws against a live result.

    Constructed from the *resolved* config (after
    :meth:`ChaosPlan.compose`), because the gated-counter laws depend
    on which knobs are actually armed.  The replay loops call
    :meth:`tick` (live-result loops) or :meth:`tick_fast` (the
    optimized loop, whose per-location counters are batched locally)
    once per request; a check runs every ``check_every`` requests.
    :meth:`check_final` runs the full battery once more after finalise.
    """

    def __init__(self, config: "SimulationConfig", check_every: int) -> None:
        if check_every <= 0:
            raise ValueError(
                f"check_every must be > 0 requests, got {check_every!r}"
            )
        self.config = config
        self.check_every = check_every
        self.checks_run = 0
        self._next = check_every

    # -- engine-facing hooks ------------------------------------------------

    def tick(self, result: SimulationResult) -> None:
        """Per-request hook for loops that record into *result* live."""
        if result.n_requests >= self._next:
            at = result.n_requests
            self._check_conservation(
                result.n_requests, result.hits, self._misses(result), at
            )
            self._check_ledger(result, at)
            self._check_gates(result, at)
            self.checks_run += 1
            self._next = result.n_requests + self.check_every

    def tick_fast(
        self, result: SimulationResult, n_requests: int, hits: int, misses: int
    ) -> None:
        """Per-request hook for the optimized loop.

        The fast loop batches its per-location counters in locals and
        flushes once at the end, so conservation is checked against the
        caller's local tallies; the ledger and gate laws still read the
        live result (those counters are charged unbatched).
        """
        if n_requests >= self._next:
            self._check_conservation(n_requests, hits, misses, n_requests)
            self._check_ledger(result, n_requests)
            self._check_gates(result, n_requests)
            self.checks_run += 1
            self._next = n_requests + self.check_every

    def check_final(self, result: SimulationResult) -> None:
        """The full battery against the finalised result."""
        at = result.n_requests
        self._check_conservation(
            result.n_requests, result.hits, self._misses(result), at
        )
        self._check_ledger(result, at)
        self._check_gates(result, at)
        self.checks_run += 1

    # -- the laws -----------------------------------------------------------

    def _fail(self, law: str, at: int, detail: str) -> None:
        raise InvariantViolation(
            f"invariant {law!r} violated at request {at}: {detail}"
        )

    @staticmethod
    def _misses(result: SimulationResult) -> int:
        return result.by_location[HitLocation.ORIGIN].misses

    def _check_conservation(
        self, n_requests: int, hits: int, misses: int, at: int
    ) -> None:
        if hits + misses != n_requests:
            self._fail(
                "hits + misses == requests served",
                at,
                f"hits={hits} misses={misses} n_requests={n_requests}",
            )
        if n_requests < 0 or hits < 0 or misses < 0:
            self._fail(
                "request counters non-negative",
                at,
                f"hits={hits} misses={misses} n_requests={n_requests}",
            )

    def _check_ledger(self, result: SimulationResult, at: int) -> None:
        overhead = result.overhead
        for f in dataclasses.fields(OverheadReport):
            value = getattr(overhead, f.name)
            if value < 0 or not math.isfinite(value):
                self._fail(
                    "overhead ledger components non-negative and finite",
                    at,
                    f"overhead.{f.name}={value!r}",
                )
        total = overhead.total_service_time
        if not math.isfinite(total):
            self._fail(
                "total_service_time finite", at, f"total={total!r}"
            )
        breakdown = overhead.wasted_offline_time + overhead.wasted_false_hit_time
        budget = overhead.wasted_round_trip_time
        if breakdown > budget * (1.0 + _REL_TOL) + _ABS_TOL:
            self._fail(
                "wasted_round_trip_time covers its breakdown",
                at,
                f"offline={overhead.wasted_offline_time!r} + "
                f"false_hit={overhead.wasted_false_hit_time!r} > "
                f"total={budget!r}",
            )
        if result.wasted_partition_time > budget * (1.0 + _REL_TOL) + _ABS_TOL:
            self._fail(
                "wasted_round_trip_time covers wasted_partition_time",
                at,
                f"partition={result.wasted_partition_time!r} > "
                f"total={budget!r}",
            )

    def _check_gates(self, result: SimulationResult, at: int) -> None:
        cfg = self.config
        gates: list[tuple[bool, tuple[str, ...]]] = []
        fed = cfg.federation
        gates.append(
            (
                fed is None,
                (
                    "interproxy_hits",
                    "digest_false_hits",
                    "digest_missed_hits",
                    "digest_bytes_exchanged",
                    "interproxy_bandwidth_time",
                ),
            )
        )
        gates.append(
            (
                fed is None or fed.link_faults is None,
                (
                    "digest_exchanges_lost",
                    "partition_windows",
                    "wasted_partition_time",
                    "antientropy_bytes",
                ),
            )
        )
        gates.append(
            (
                cfg.proxy_faults is None,
                (
                    "proxy_crashes",
                    "recovery_time",
                    "degraded_window_requests",
                    "hits_lost_to_recovery",
                ),
            )
        )
        gates.append((cfg.checkpoint is None, ("checkpoint_bytes_written",)))
        gates.append((cfg.quarantine_threshold == 0, ("quarantined_peers",)))
        gates.append(
            (
                cfg.quarantine_threshold == 0 and not cfg.static_blacklist,
                ("quarantine_rescued_hits",),
            )
        )
        gates.append(
            (
                cfg.adversarial is None,
                ("corrupt_deliveries", "poisoned_requests"),
            )
        )
        gates.append(
            (
                cfg.corruption_rate == 0.0 and cfg.adversarial is None,
                ("integrity_failures",),
            )
        )
        gates.append(
            (
                cfg.churn is None
                and cfg.holder_availability >= 1.0
                and cfg.adversarial is None,
                ("holder_unavailable",),
            )
        )
        gates.append(
            (
                cfg.max_holder_retries == 0,
                ("failover_attempts", "failover_rescued_hits"),
            )
        )
        for gated_off, names in gates:
            if not gated_off:
                continue
            for name in names:
                value = getattr(result, name)
                if value != 0:
                    self._fail(
                        f"{name} stays zero while its knob is off",
                        at,
                        f"{name}={value!r}",
                    )
