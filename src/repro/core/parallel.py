"""Parallel sweep execution engine.

Every paper figure is a cross product of (organization, relative cache
size, trace); this module fans those *cells* out over a process pool
while keeping the results bit-identical to a one-process replay:

* each cell is fully self-contained — trace, organization, config, and
  a seed derived (via :func:`repro.util.rng.derive_seed`) from the
  cell's *identity*, never from worker assignment, completion order, or
  attempt number;
* results are collected keyed by cell index, so callers see submission
  order regardless of which worker finished first;
* ``workers=0`` executes cells in-process with no pickling at all —
  the deterministic fallback the golden-result harness pins;
* a crashing cell is captured as a :class:`CellFailure` carrying its
  config and traceback instead of killing the sweep.

The engine also survives *infrastructure* failure, mirroring how the
paper routes around unreliable peers (§5/§6):

* a dead worker process (OOM, SIGKILL) breaks the pool; the engine
  rebuilds it and requeues only the unfinished cells.  After
  ``EngineOptions.isolate_after_crashes`` rebuilds, remaining cells run
  one-per-pool so the culprit is pinpointed instead of taking
  bystanders down with it;
* each cell gets ``EngineOptions.retries`` extra attempts with capped
  exponential backoff and an optional per-cell wall-clock timeout;
  a cell that exhausts its attempts is quarantined as a
  :class:`CellFailure` and the sweep continues;
* every attempt is journalled to JSONL (see :mod:`repro.core.journal`)
  and a journal replays via ``EngineOptions.resume`` — completed cells
  are restored bit-identically instead of re-simulated;
* failures are injectable at exact (cell, attempt) coordinates
  (:mod:`repro.core.faults`), so every recovery path above is testable.

Traces are shipped to each worker process once (pool initializer), not
per cell, so fan-out cost is independent of the grid size.
"""

from __future__ import annotations

import logging
import os
import signal
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.config import SimulationConfig
from repro.core.faults import FaultPlan, InjectedFailure, WorkerKilled
from repro.core.journal import (
    JournalWriter,
    cell_key,
    config_digest,
    load_completed_results,
)
from repro.core.metrics import SimulationResult, SweepTiming
from repro.core.policies import Organization
from repro.core.simulator import simulate
from repro.traces.record import Trace
from repro.util.memory import peak_rss_bytes, tracemalloc_peak_bytes
from repro.util.profiling import ReplayProfile
from repro.util.rng import derive_seed

__all__ = [
    "SweepCell",
    "CellFailure",
    "CellEvent",
    "CellTimeout",
    "EngineOptions",
    "SweepRun",
    "build_cells",
    "run_cells",
    "resolve_workers",
    "timeout_enforceable",
]

log = logging.getLogger(__name__)


class CellTimeout(Exception):
    """A cell exceeded its per-cell wall-clock budget."""


@dataclass(frozen=True)
class EngineOptions:
    """Fault-tolerance knobs for one engine invocation.

    The defaults reproduce the original fail-fast engine exactly: no
    retries, no timeout, no journal — and, critically, no change to any
    simulated number (seeds are identity-derived and attempt-
    independent, so a retried cell produces the same result bits as a
    first-try success).
    """

    #: extra attempts per cell after the first (0 = fail immediately).
    retries: int = 0
    #: per-cell wall-clock budget in seconds; ``None`` = unlimited.
    #: Enforced inside the executing process via ``SIGALRM`` (skipped
    #: off the main thread, where signals cannot be delivered).
    cell_timeout: float | None = None
    #: backoff before retry N is ``min(cap, base * 2**(N-1))`` seconds.
    backoff_base: float = 0.5
    backoff_cap: float = 30.0
    #: JSONL journal path; one record per attempt plus results.
    journal: str | Path | None = None
    #: path to a prior journal; cells it completed are restored, not run.
    resume: str | Path | None = None
    #: deterministic fault injection (tests / smoke runs only).
    faults: FaultPlan | None = None
    #: after this many pool crashes, remaining cells run one-per-pool.
    isolate_after_crashes: int = 2
    #: collect per-phase replay timers (see
    #: :mod:`repro.util.profiling`) aggregated across cells into
    #: ``SweepRun.timing.phase_seconds``.  Honoured on the serial path
    #: only — pool workers cannot ship their timers back, so pooled
    #: runs leave ``phase_seconds`` empty.  Results stay bit-identical
    #: either way (the instrumented loops only add observation).
    profile: bool = False

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError(f"cell_timeout must be > 0, got {self.cell_timeout}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be >= 0")
        if self.isolate_after_crashes < 1:
            raise ValueError(
                f"isolate_after_crashes must be >= 1, got {self.isolate_after_crashes}"
            )

    def backoff_delay(self, attempt: int) -> float:
        """Seconds to wait before executing attempt ``attempt`` (>= 1)."""
        if attempt <= 0 or self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))


@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work: a single (trace, organization, fraction)
    simulation with a fully resolved config and deterministic seed."""

    index: int
    trace_name: str
    organization: Organization
    fraction: float
    config: SimulationConfig
    seed: int

    def describe(self) -> str:
        return (
            f"cell {self.index}: {self.organization.value} @ "
            f"{self.fraction * 100:g}% on {self.trace_name!r}"
        )

    @property
    def key(self):
        """Journal identity: what resume matches on."""
        return cell_key(
            self.trace_name,
            self.organization.value,
            self.fraction,
            self.seed,
            config_digest(self.config),
        )


@dataclass(frozen=True)
class CellFailure:
    """A cell that failed for good: its identity, the last error, the
    traceback, and how many attempts it consumed."""

    cell: SweepCell
    error: str
    traceback: str
    attempts: int = 1

    def __str__(self) -> str:
        note = f" after {self.attempts} attempts" if self.attempts > 1 else ""
        return f"{self.cell.describe()} failed{note}: {self.error}"


@dataclass(frozen=True)
class CellEvent:
    """Progress callback payload, emitted once per *resolved* cell
    (success, quarantine, or restore-from-journal)."""

    cell: SweepCell
    ok: bool
    elapsed: float
    completed: int
    total: int
    #: number of execution attempts consumed (0 for a resumed cell).
    attempts: int = 1
    #: True when the result was restored from a resume journal.
    resumed: bool = False


@dataclass
class SweepRun:
    """Everything one engine invocation produced.

    ``results`` and ``failures`` are keyed/ordered by cell index, so a
    run's output is a pure function of its cells — never of scheduling,
    retries, or pool crashes.
    """

    cells: tuple[SweepCell, ...]
    results: dict[int, SimulationResult] = field(default_factory=dict)
    failures: list[CellFailure] = field(default_factory=list)
    timing: SweepTiming | None = None
    #: execution attempts per cell index (0 for resumed cells).
    attempts: dict[int, int] = field(default_factory=dict)
    #: cell indices restored from a resume journal instead of executed.
    resumed: set[int] = field(default_factory=set)
    #: process-pool crashes survived during the run.
    pool_crashes: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def result_for(self, cell: SweepCell) -> SimulationResult:
        try:
            return self.results[cell.index]
        except KeyError:
            for failure in self.failures:
                if failure.cell.index == cell.index:
                    raise KeyError(str(failure)) from None
            raise KeyError(f"no result for {cell.describe()}") from None


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``--workers`` value: ``None`` means all CPUs."""
    if workers is None:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def build_cells(
    trace_name: str,
    organizations: Iterable[Organization],
    fractions: Sequence[float],
    config_for: Callable[[float], SimulationConfig],
    base_seed: int = 0,
) -> list[SweepCell]:
    """Expand an (organizations x fractions) grid into sweep cells.

    ``config_for(fraction)`` resolves the simulation config for one
    relative cache size (cache capacities depend on the fraction, not
    the organization).  Cells with stochastic behaviour (Bernoulli
    availability, session churn, or corruption draws) get an
    ``availability_seed`` derived from the cell identity, so every cell
    draws an independent, reproducible stream no matter how the grid is
    scheduled.
    """
    organizations = tuple(organizations)
    cells: list[SweepCell] = []
    for frac in fractions:
        config = config_for(frac)
        for org in organizations:
            seed = derive_seed(base_seed, trace_name, org.value, repr(frac))
            cell_config = config
            if (
                config.holder_availability < 1.0
                or config.churn is not None
                or config.corruption_rate > 0.0
                or config.proxy_faults is not None
                or config.adversarial is not None
                or config.chaos is not None
                or (
                    config.federation is not None
                    and config.federation.link_faults is not None
                )
            ):
                cell_config = config.with_(availability_seed=seed)
            cells.append(
                SweepCell(
                    index=len(cells),
                    trace_name=trace_name,
                    organization=org,
                    fraction=frac,
                    config=cell_config,
                    seed=seed,
                )
            )
    return cells


# -- worker-side execution ---------------------------------------------------

#: per-process state, populated once by the pool initializer.
_WORKER_TRACES: dict[str, Trace] = {}
_WORKER_FAULTS: FaultPlan | None = None
_WORKER_TIMEOUT: float | None = None


def _init_worker(
    traces: dict[str, Trace],
    faults: FaultPlan | None = None,
    cell_timeout: float | None = None,
) -> None:
    global _WORKER_FAULTS, _WORKER_TIMEOUT
    _WORKER_TRACES.clear()
    _WORKER_TRACES.update(traces)
    _WORKER_FAULTS = faults
    _WORKER_TIMEOUT = cell_timeout


#: one warning per process when a requested timeout cannot be armed.
_TIMEOUT_DEGRADED_WARNED = False


def timeout_enforceable() -> bool:
    """Can a per-cell timeout be armed *here*?  Requires ``SIGALRM``
    (absent on Windows) and the main thread (signal handlers cannot be
    installed elsewhere)."""
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def _deadline(timeout: float | None):
    """Raise :class:`CellTimeout` if the block runs past ``timeout``.

    Uses ``SIGALRM``, so it only arms on the main thread of the
    executing process (always true for pool workers; true for the
    serial path unless the caller runs the engine off-thread).  Where
    it cannot arm — Windows has no ``SIGALRM``, worker threads cannot
    install handlers — the timeout degrades to a logged no-op instead
    of crashing the sweep.
    """
    if timeout is None:
        yield
        return
    if not timeout_enforceable():
        global _TIMEOUT_DEGRADED_WARNED
        if not _TIMEOUT_DEGRADED_WARNED:
            _TIMEOUT_DEGRADED_WARNED = True
            log.warning(
                "per-cell timeout (%gs) cannot be enforced here (no SIGALRM "
                "or not on the main thread); cells run unbounded",
                timeout,
            )
        yield
        return

    def _on_alarm(signum, frame):
        raise CellTimeout(f"cell exceeded its {timeout:g}s timeout")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _maybe_inject(
    faults: FaultPlan | None, cell: SweepCell, attempt: int, in_worker: bool
) -> None:
    if faults is None:
        return
    fault = faults.fault_for(cell.index, attempt)
    if fault is None:
        return
    if fault.kind == "kill":
        if in_worker:
            os._exit(86)  # hard worker death: breaks the pool, like OOM/SIGKILL
        raise WorkerKilled(f"injected worker kill: {fault.describe()}")
    if fault.kind == "hang":
        time.sleep(fault.hang_seconds)
        return
    raise InjectedFailure(f"injected fault: {fault.describe()}")


def _execute_cell(
    cell: SweepCell,
    trace: Trace,
    attempt: int = 0,
    timeout: float | None = None,
    faults: FaultPlan | None = None,
    in_worker: bool = False,
    profile: ReplayProfile | None = None,
):
    """Run one attempt of one cell; never raises.  Returns
    ``(index, ok, payload, elapsed, outcome, peak_rss)`` where payload
    is a result or an ``(error, traceback)`` pair, outcome is
    ``"ok"`` / ``"error"`` / ``"timeout"``, and peak_rss is the
    executing process's lifetime RSS high-water mark in bytes (so the
    sweep can report its memory footprint across workers).  When
    *profile* is given the replay accumulates its per-phase timers
    into it."""
    t0 = time.perf_counter()
    try:
        with _deadline(timeout):
            _maybe_inject(faults, cell, attempt, in_worker)
            result = simulate(trace, cell.organization, cell.config, profile=profile)
    except Exception as exc:  # a crashing cell must not kill the sweep
        elapsed = time.perf_counter() - t0
        error = f"{type(exc).__name__}: {exc}"
        outcome = "timeout" if isinstance(exc, CellTimeout) else "error"
        return (
            cell.index,
            False,
            (error, traceback.format_exc()),
            elapsed,
            outcome,
            peak_rss_bytes(),
        )
    return cell.index, True, result, time.perf_counter() - t0, "ok", peak_rss_bytes()


def _run_cell_in_worker(cell: SweepCell, attempt: int = 0):
    return _execute_cell(
        cell,
        _WORKER_TRACES[cell.trace_name],
        attempt=attempt,
        timeout=_WORKER_TIMEOUT,
        faults=_WORKER_FAULTS,
        in_worker=True,
    )


# -- the engine --------------------------------------------------------------


class _Engine:
    """State for one :func:`run_cells` invocation."""

    def __init__(
        self,
        cells: tuple[SweepCell, ...],
        traces: Mapping[str, Trace],
        progress: Callable[[CellEvent], None] | None,
        options: EngineOptions,
    ) -> None:
        self.cells = cells
        self.traces = traces
        self.progress = progress
        self.options = options
        self.run = SweepRun(cells=cells)
        self.cell_seconds = {cell.index: 0.0 for cell in cells}
        self.attempt_of = {cell.index: 0 for cell in cells}
        #: max per-process RSS high-water mark observed across attempts
        #: (engine process and workers alike).
        self.peak_rss = 0
        self.unresolved: set[int] = set()
        self.completed = 0
        #: shared per-phase timers (serial path only; see EngineOptions).
        self.profile: ReplayProfile | None = (
            ReplayProfile() if options.profile else None
        )
        self.journal: JournalWriter | None = (
            JournalWriter(options.journal) if options.journal is not None else None
        )

    # -- observation ------------------------------------------------------

    def emit(self, cell: SweepCell, ok: bool, elapsed: float, resumed: bool = False) -> None:
        """Fire the progress callback; a raising observer must not kill
        the sweep (it used to abort mid-``as_completed`` and leak the
        executor's pending futures)."""
        if self.progress is None:
            return
        event = CellEvent(
            cell=cell,
            ok=ok,
            elapsed=elapsed,
            completed=self.completed,
            total=len(self.cells),
            attempts=self.run.attempts.get(cell.index, 0),
            resumed=resumed,
        )
        try:
            self.progress(event)
        except Exception:
            log.warning(
                "progress callback raised for %s; continuing", cell.describe(),
                exc_info=True,
            )

    def journal_attempt(
        self, cell: SweepCell, attempt: int, outcome: str, elapsed: float,
        error: str | None = None,
    ) -> None:
        if self.journal is not None:
            self.journal.write_attempt(cell, attempt, outcome, elapsed, error)

    # -- resolution -------------------------------------------------------

    def resolve_success(self, index: int, result: SimulationResult) -> None:
        cell = self.cells[index]
        self.run.results[index] = result
        self.unresolved.discard(index)
        self.completed += 1
        if self.journal is not None:
            self.journal.write_result(cell, result)
        self.emit(cell, True, self.cell_seconds[index])

    def resolve_failure(self, index: int, error: str, tb: str) -> None:
        cell = self.cells[index]
        self.run.failures.append(
            CellFailure(
                cell=cell, error=error, traceback=tb,
                attempts=self.run.attempts[index],
            )
        )
        self.unresolved.discard(index)
        self.completed += 1
        self.emit(cell, False, self.cell_seconds[index])

    def resolve_resumed(self, index: int, result: SimulationResult) -> None:
        cell = self.cells[index]
        self.run.results[index] = result
        self.run.resumed.add(index)
        self.run.attempts[index] = 0
        self.completed += 1
        self.journal_attempt(cell, 0, "resumed", 0.0)
        if self.journal is not None:
            self.journal.write_result(cell, result)
        self.emit(cell, True, 0.0, resumed=True)

    def absorb_attempt(
        self,
        index: int,
        ok: bool,
        payload,
        elapsed: float,
        outcome: str,
        peak_rss: int = 0,
    ) -> bool:
        """Bookkeep one finished attempt.  Returns True if the cell is
        now resolved, False if it goes back in the retry queue."""
        if peak_rss > self.peak_rss:
            self.peak_rss = peak_rss
        cell = self.cells[index]
        attempt = self.attempt_of[index]
        self.run.attempts[index] = attempt + 1
        self.cell_seconds[index] += elapsed
        if ok:
            self.journal_attempt(cell, attempt, "ok", elapsed)
            self.resolve_success(index, payload)
            return True
        error, tb = payload
        self.journal_attempt(cell, attempt, outcome, elapsed, error)
        if attempt < self.options.retries:
            self.attempt_of[index] = attempt + 1
            log.warning("%s attempt %d failed (%s); retrying", cell.describe(), attempt, error)
            return False
        self.resolve_failure(index, error, tb)
        return True

    def absorb_pool_crash(self, index: int) -> None:
        """One cell was in flight (or queued) when the pool died."""
        cell = self.cells[index]
        attempt = self.attempt_of[index]
        self.run.attempts[index] = attempt + 1
        self.journal_attempt(cell, attempt, "pool-crash", 0.0,
                             "worker process died; process pool crashed")
        if attempt < self.options.retries:
            self.attempt_of[index] = attempt + 1
        else:
            self.resolve_failure(
                index,
                "BrokenProcessPool: worker process died while the cell was "
                "in flight (quarantined after repeated pool crashes)",
                "(no traceback: the worker process terminated abruptly)",
            )

    # -- execution paths --------------------------------------------------

    def run_serial(self, pending: Sequence[int]) -> None:
        options = self.options
        for index in pending:
            cell = self.cells[index]
            while index in self.unresolved:
                attempt = self.attempt_of[index]
                delay = options.backoff_delay(attempt)
                if delay:
                    time.sleep(delay)
                self.absorb_attempt(
                    *_execute_cell(
                        cell,
                        self.traces[cell.trace_name],
                        attempt=attempt,
                        timeout=options.cell_timeout,
                        faults=options.faults,
                        in_worker=False,
                        profile=self.profile,
                    )
                )

    def _make_pool(self, max_workers: int) -> ProcessPoolExecutor:
        needed = {name: self.traces[name] for name in {c.trace_name for c in self.cells}}
        return ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_worker,
            initargs=(needed, self.options.faults, self.options.cell_timeout),
        )

    def run_pooled(self, workers: int) -> None:
        options = self.options
        pool: ProcessPoolExecutor | None = None
        try:
            while self.unresolved:
                if self.run.pool_crashes >= options.isolate_after_crashes:
                    if pool is not None:
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = None
                    self._run_isolated()
                    return
                if pool is None:
                    pool = self._make_pool(workers)
                batch = sorted(self.unresolved)
                delay = max((options.backoff_delay(self.attempt_of[i]) for i in batch), default=0.0)
                if delay:
                    time.sleep(delay)
                seen: set[int] = set()
                futures: dict = {}
                try:
                    for i in batch:
                        futures[pool.submit(_run_cell_in_worker, self.cells[i], self.attempt_of[i])] = i
                    for future in as_completed(futures):
                        index = futures[future]
                        # mark seen only after a good result: if result()
                        # raises BrokenProcessPool this cell was in flight
                        # when the pool died and must be implicated below.
                        self.absorb_attempt(*future.result())
                        seen.add(index)
                except BrokenProcessPool:
                    self.run.pool_crashes += 1
                    log.warning(
                        "process pool crashed (#%d); rebuilding and requeueing "
                        "%d unfinished cells",
                        self.run.pool_crashes, len(self.unresolved),
                    )
                    # Completed-but-unseen futures still carry good results;
                    # only truly unfinished cells are implicated in the crash.
                    for future, index in futures.items():
                        if index in seen or index not in self.unresolved:
                            continue
                        if future.done() and not future.cancelled():
                            try:
                                outcome = future.result()
                            except Exception:
                                continue
                            seen.add(index)
                            self.absorb_attempt(*outcome)
                    for index in sorted(self.unresolved - seen):
                        self.absorb_pool_crash(index)
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None
        finally:
            if pool is not None:
                pool.shutdown()

    def _run_isolated(self) -> None:
        """Post-crash endgame: one fresh single-worker pool per cell, so
        a cell that keeps killing workers implicates only itself."""
        log.warning(
            "switching to isolation mode: %d cells run one-per-pool",
            len(self.unresolved),
        )
        options = self.options
        for index in sorted(self.unresolved):
            cell = self.cells[index]
            while index in self.unresolved:
                attempt = self.attempt_of[index]
                delay = options.backoff_delay(attempt)
                if delay:
                    time.sleep(delay)
                solo = self._make_pool(1)
                try:
                    future = solo.submit(_run_cell_in_worker, cell, attempt)
                    self.absorb_attempt(*future.result())
                except BrokenProcessPool:
                    self.run.pool_crashes += 1
                    self.absorb_pool_crash(index)
                    solo.shutdown(wait=False, cancel_futures=True)
                else:
                    solo.shutdown()


def run_cells(
    cells: Iterable[SweepCell],
    traces: Mapping[str, Trace],
    workers: int | None = 0,
    progress: Callable[[CellEvent], None] | None = None,
    options: EngineOptions | None = None,
) -> SweepRun:
    """Execute sweep cells, serially or over a process pool.

    ``workers=0`` replays every cell in this process, in cell order —
    the deterministic reference path.  ``workers>=1`` fans cells out
    over a :class:`~concurrent.futures.ProcessPoolExecutor`
    (``workers=None`` uses every CPU).  Either way the returned
    :class:`SweepRun` holds bit-identical results keyed by cell index;
    only the order in which ``progress`` events fire may differ.

    ``options`` (an :class:`EngineOptions`) adds the fault-tolerance
    layer: per-cell retries with capped exponential backoff, a per-cell
    timeout, pool-crash recovery with quarantine, a JSONL attempt
    journal, resume-from-journal, and deterministic fault injection.
    The defaults keep the engine fail-fast and journal-free, and no
    option changes any simulated number.
    """
    cells = tuple(cells)
    options = options or EngineOptions()
    requested = resolve_workers(workers)
    missing = sorted({c.trace_name for c in cells} - set(traces))
    if missing:
        raise KeyError(f"cells reference traces not provided: {', '.join(missing)}")

    engine = _Engine(cells, traces, progress, options)
    run = engine.run
    t0 = time.perf_counter()
    try:
        if engine.journal is not None:
            engine.journal.write_header(
                n_cells=len(cells),
                workers=requested,
                retries=options.retries,
                cell_timeout=options.cell_timeout,
            )

        prior = (
            load_completed_results(options.resume)
            if options.resume is not None
            else {}
        )
        pending: list[int] = []
        for cell in cells:
            restored = prior.get(cell.key)
            if restored is not None:
                engine.resolve_resumed(cell.index, restored)
            else:
                pending.append(cell.index)
        engine.unresolved = set(pending)

        effective_workers = 0 if requested == 0 or len(pending) <= 1 else min(
            requested, len(pending)
        )
        if effective_workers == 0:
            engine.run_serial(pending)
        else:
            engine.run_pooled(effective_workers)
    finally:
        if engine.journal is not None:
            engine.journal.close()

    run.failures.sort(key=lambda f: f.cell.index)
    if options.cell_timeout is None:
        timeout_supported = True
    elif effective_workers > 0:
        # pool workers enforce the deadline on their own main threads,
        # but only on platforms that have SIGALRM at all.
        timeout_supported = hasattr(signal, "SIGALRM")
    else:
        timeout_supported = timeout_enforceable()
    run.timing = SweepTiming(
        workers=effective_workers,
        n_cells=len(cells),
        wall_seconds=time.perf_counter() - t0,
        cell_seconds=tuple(engine.cell_seconds[i] for i in range(len(cells))),
        requested_workers=requested,
        timeout_supported=timeout_supported,
        phase_seconds=(
            engine.profile.as_pairs() if engine.profile is not None else ()
        ),
        peak_rss_bytes=max(engine.peak_rss, peak_rss_bytes()),
        peak_traced_bytes=tracemalloc_peak_bytes(),
    )
    return run
