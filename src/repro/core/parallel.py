"""Parallel sweep execution engine.

Every paper figure is a cross product of (organization, relative cache
size, trace); this module fans those *cells* out over a process pool
while keeping the results bit-identical to a one-process replay:

* each cell is fully self-contained — trace, organization, config, and
  a seed derived (via :func:`repro.util.rng.derive_seed`) from the
  cell's *identity*, never from worker assignment or completion order;
* results are collected keyed by cell index, so callers see submission
  order regardless of which worker finished first;
* ``workers=0`` executes cells in-process with no pickling at all —
  the deterministic fallback the golden-result harness pins;
* a crashing cell is captured as a :class:`CellFailure` carrying its
  config and traceback instead of killing the sweep.

Traces are shipped to each worker process once (pool initializer), not
per cell, so fan-out cost is independent of the grid size.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.config import SimulationConfig
from repro.core.metrics import SimulationResult, SweepTiming
from repro.core.policies import Organization
from repro.core.simulator import simulate
from repro.traces.record import Trace
from repro.util.rng import derive_seed

__all__ = [
    "SweepCell",
    "CellFailure",
    "CellEvent",
    "SweepRun",
    "build_cells",
    "run_cells",
    "resolve_workers",
]


@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work: a single (trace, organization, fraction)
    simulation with a fully resolved config and deterministic seed."""

    index: int
    trace_name: str
    organization: Organization
    fraction: float
    config: SimulationConfig
    seed: int

    def describe(self) -> str:
        return (
            f"cell {self.index}: {self.organization.value} @ "
            f"{self.fraction * 100:g}% on {self.trace_name!r}"
        )


@dataclass(frozen=True)
class CellFailure:
    """A cell that raised: its identity, the error, and the traceback."""

    cell: SweepCell
    error: str
    traceback: str

    def __str__(self) -> str:
        return f"{self.cell.describe()} failed: {self.error}"


@dataclass(frozen=True)
class CellEvent:
    """Progress callback payload, emitted once per finished cell."""

    cell: SweepCell
    ok: bool
    elapsed: float
    completed: int
    total: int


@dataclass
class SweepRun:
    """Everything one engine invocation produced.

    ``results`` and ``failures`` are keyed/ordered by cell index, so a
    run's output is a pure function of its cells — never of scheduling.
    """

    cells: tuple[SweepCell, ...]
    results: dict[int, SimulationResult] = field(default_factory=dict)
    failures: list[CellFailure] = field(default_factory=list)
    timing: SweepTiming | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def result_for(self, cell: SweepCell) -> SimulationResult:
        try:
            return self.results[cell.index]
        except KeyError:
            for failure in self.failures:
                if failure.cell.index == cell.index:
                    raise KeyError(str(failure)) from None
            raise KeyError(f"no result for {cell.describe()}") from None


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``--workers`` value: ``None`` means all CPUs."""
    if workers is None:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def build_cells(
    trace_name: str,
    organizations: Iterable[Organization],
    fractions: Sequence[float],
    config_for: Callable[[float], SimulationConfig],
    base_seed: int = 0,
) -> list[SweepCell]:
    """Expand an (organizations x fractions) grid into sweep cells.

    ``config_for(fraction)`` resolves the simulation config for one
    relative cache size (cache capacities depend on the fraction, not
    the organization).  Cells with stochastic behaviour
    (``holder_availability < 1``) get an ``availability_seed`` derived
    from the cell identity, so every cell draws an independent,
    reproducible stream no matter how the grid is scheduled.
    """
    organizations = tuple(organizations)
    cells: list[SweepCell] = []
    for frac in fractions:
        config = config_for(frac)
        for org in organizations:
            seed = derive_seed(base_seed, trace_name, org.value, repr(frac))
            cell_config = config
            if config.holder_availability < 1.0:
                cell_config = config.with_(availability_seed=seed)
            cells.append(
                SweepCell(
                    index=len(cells),
                    trace_name=trace_name,
                    organization=org,
                    fraction=frac,
                    config=cell_config,
                    seed=seed,
                )
            )
    return cells


# -- worker-side execution ---------------------------------------------------

#: per-process trace registry, populated once by the pool initializer.
_WORKER_TRACES: dict[str, Trace] = {}


def _init_worker(traces: dict[str, Trace]) -> None:
    _WORKER_TRACES.clear()
    _WORKER_TRACES.update(traces)


def _execute_cell(cell: SweepCell, trace: Trace):
    """Run one cell; never raises.  Returns
    ``(index, ok, payload, elapsed)`` where payload is a result or an
    ``(error, traceback)`` pair."""
    t0 = time.perf_counter()
    try:
        result = simulate(trace, cell.organization, cell.config)
    except Exception as exc:  # a crashing cell must not kill the sweep
        elapsed = time.perf_counter() - t0
        error = f"{type(exc).__name__}: {exc}"
        return cell.index, False, (error, traceback.format_exc()), elapsed
    return cell.index, True, result, time.perf_counter() - t0


def _run_cell_in_worker(cell: SweepCell):
    return _execute_cell(cell, _WORKER_TRACES[cell.trace_name])


# -- the engine --------------------------------------------------------------


def run_cells(
    cells: Iterable[SweepCell],
    traces: Mapping[str, Trace],
    workers: int | None = 0,
    progress: Callable[[CellEvent], None] | None = None,
) -> SweepRun:
    """Execute sweep cells, serially or over a process pool.

    ``workers=0`` replays every cell in this process, in cell order —
    the deterministic reference path.  ``workers>=1`` fans cells out
    over a :class:`~concurrent.futures.ProcessPoolExecutor`
    (``workers=None`` uses every CPU).  Either way the returned
    :class:`SweepRun` holds bit-identical results keyed by cell index;
    only the order in which ``progress`` events fire may differ.
    """
    cells = tuple(cells)
    workers = resolve_workers(workers)
    missing = sorted({c.trace_name for c in cells} - set(traces))
    if missing:
        raise KeyError(f"cells reference traces not provided: {', '.join(missing)}")

    run = SweepRun(cells=cells)
    cell_seconds: dict[int, float] = {}
    completed = 0
    t0 = time.perf_counter()

    def absorb(index: int, ok: bool, payload, elapsed: float) -> None:
        nonlocal completed
        completed += 1
        cell = cells[index]
        if ok:
            run.results[index] = payload
        else:
            error, tb = payload
            run.failures.append(CellFailure(cell=cell, error=error, traceback=tb))
        cell_seconds[index] = elapsed
        if progress is not None:
            progress(
                CellEvent(
                    cell=cell,
                    ok=ok,
                    elapsed=elapsed,
                    completed=completed,
                    total=len(cells),
                )
            )

    if workers == 0 or len(cells) <= 1:
        for cell in cells:
            absorb(*_execute_cell(cell, traces[cell.trace_name]))
        effective_workers = 0
    else:
        needed = {name: traces[name] for name in {c.trace_name for c in cells}}
        effective_workers = min(workers, len(cells))
        with ProcessPoolExecutor(
            max_workers=effective_workers,
            initializer=_init_worker,
            initargs=(needed,),
        ) as pool:
            futures = [pool.submit(_run_cell_in_worker, cell) for cell in cells]
            for future in as_completed(futures):
                absorb(*future.result())

    run.failures.sort(key=lambda f: f.cell.index)
    run.timing = SweepTiming(
        workers=effective_workers,
        n_cells=len(cells),
        wall_seconds=time.perf_counter() - t0,
        cell_seconds=tuple(cell_seconds[i] for i in range(len(cells))),
    )
    return run
