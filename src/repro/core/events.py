"""Request outcome taxonomy.

The paper's Figure 3 breaks hits down into "hits in the local browser
cache, hits in the proxy cache, and hits in remote browser caches";
everything else is a miss served by the origin (or an upper-level
proxy, which the simulation treats identically).
"""

from __future__ import annotations

from enum import Enum

__all__ = ["HitLocation"]


class HitLocation(Enum):
    """Where a request was served from.

    ``SIBLING_PROXY`` and ``PARENT_PROXY`` are used by the cooperative
    proxy hierarchy substrate (:mod:`repro.hierarchy`); the core BAPS
    organizations never produce them.
    """

    LOCAL_BROWSER = "local-browser"
    PROXY = "proxy"
    REMOTE_BROWSER = "remote-browser"
    SIBLING_PROXY = "sibling-proxy"
    PARENT_PROXY = "parent-proxy"
    ORIGIN = "origin"

    @property
    def is_hit(self) -> bool:
        """The paper's hit ratio counts browser-cache and proxy-cache
        hits; origin fetches are misses."""
        return self is not HitLocation.ORIGIN
