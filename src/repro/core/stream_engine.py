"""Streaming replay engine: flat per-client state, any row source.

:class:`~repro.core.simulator.Simulator` allocates one cache *object*
per client — an ``LRUCache`` instance wrapping an ``OrderedDict``, plus
per-client bound-method handle lists built by the fast loops.  At the
paper's scales (tens to hundreds of clients) that is free; at a million
clients the per-object overhead alone costs hundreds of megabytes
before a single document is cached.

:func:`simulate_stream` replays the same request path with the
per-client hot state held in **flat preallocated arrays keyed by dense
client id**: one slot pool of parallel Python lists (doc, size,
version, prev/next links) shared by every browser cache, one packed
``(client, doc) -> slot`` dict, and per-client capacity/usage/head/tail
arrays.  Per-client memory is a few machine words, and the input can be
any **row source** — a materialised :class:`~repro.traces.record.Trace`
or a :class:`~repro.traces.streaming.TraceStream` — so a
million-client, ten-million-request cell replays out-of-core.

The replay semantics mirror the optimized engine operation for
operation (same LRU order, same eviction/index event sequence, same
inlined timing arithmetic), so for every supported configuration the
returned :class:`~repro.core.metrics.SimulationResult` is **bit
identical** to ``simulate(trace, organization, config)`` on the
materialised trace; property tests pin this.

Supported configuration subset
------------------------------
The streaming path covers the paper's core §3–§5 machinery: all five
organizations, LRU browser caches (heterogeneous capacities included),
LRU/FIFO proxy caches, the exact invalidation-mode browser index with
optional entry TTLs, holder failover, and the security transfer-cost
model.  Knobs that require per-client *stochastic* state or whole-trace
coordination — tiered caches, consistency policies, churn/Bernoulli
availability, corruption, proxy crash faults, checkpointing, periodic
index updates, bloom indexes (whose lookups scan every client), and
federation — raise :class:`ValueError` naming the knob; use the
materialised engine for those.
"""

from __future__ import annotations

from array import array

from repro.cache import make_cache
from repro.core.config import SimulationConfig
from repro.core.events import HitLocation
from repro.core.metrics import SimulationResult
from repro.core.policies import Organization
from repro.index.browser_index import BrowserIndex, UpdateMode
from repro.network.ethernet import SharedBus
from repro.util.units import BITS_PER_BYTE

__all__ = ["StreamSimulator", "simulate_stream"]

#: bits reserved for the document id in the packed (client, doc) key.
_DOC_BITS = 40
_DOC_LIMIT = 1 << _DOC_BITS


class _FlatBrowsers:
    """Every browser cache in one flat slot pool.

    Replicates :class:`repro.cache.lru.LRUCache` semantics exactly —
    insertion at the MRU end, touch via move-to-end, eviction from the
    LRU end excluding the just-put key, refresh-in-place with size
    delta, oversized inserts refused, the oversized-refresh corner
    evicting the key itself — over parallel ``array('q')`` columns
    linked into one doubly-linked LRU list per client.  The
    ``OrderedDict`` each ``LRUCache`` wraps iterates LRU to MRU; so
    does each linked list, so eviction *order* (and therefore every
    index event) matches.

    ``array('q')`` stores raw 8-byte machine ints: per-client cost is
    five words and per-cached-entry cost five words plus one
    ``slot_of`` dict entry — no boxed-int or pointer-per-element
    overhead, which at a million clients is the difference between
    megabytes and gigabytes.
    """

    __slots__ = (
        "caps",
        "used",
        "head",
        "tail",
        "count",
        "slot_of",
        "e_doc",
        "e_size",
        "e_ver",
        "e_prev",
        "e_next",
        "free",
    )

    def __init__(self, capacities: list[int]) -> None:
        n = len(capacities)
        self.caps = array("q", capacities)
        self.used = array("q", bytes(8 * n))  # zeros
        self.head = array("q", [-1]) * n  # LRU end
        self.tail = array("q", [-1]) * n  # MRU end
        self.count = array("q", bytes(8 * n))
        self.slot_of: dict[int, int] = {}
        self.e_doc = array("q")
        self.e_size = array("q")
        self.e_ver = array("q")
        self.e_prev = array("q")
        self.e_next = array("q")
        self.free: list[int] = []

    # -- linked-list plumbing -----------------------------------------

    def _unlink(self, slot: int, c: int) -> None:
        prev_ = self.e_prev[slot]
        next_ = self.e_next[slot]
        if prev_ >= 0:
            self.e_next[prev_] = next_
        else:
            self.head[c] = next_
        if next_ >= 0:
            self.e_prev[next_] = prev_
        else:
            self.tail[c] = prev_

    def _append(self, slot: int, c: int) -> None:
        tl = self.tail[c]
        self.e_prev[slot] = tl
        self.e_next[slot] = -1
        if tl >= 0:
            self.e_next[tl] = slot
        else:
            self.head[c] = slot
        self.tail[c] = slot

    def _drop(self, slot: int, c: int, key: int) -> int:
        """Remove *slot* from client *c*; returns the freed size."""
        self._unlink(slot, c)
        del self.slot_of[key]
        self.free.append(slot)
        self.count[c] -= 1
        return self.e_size[slot]

    # -- cache operations ---------------------------------------------

    def probe(self, c: int, d: int) -> int:
        """LRU get: returns the slot (touched to MRU) or -1."""
        key = (c << _DOC_BITS) | d
        slot = self.slot_of.get(key)
        if slot is None:
            return -1
        if self.tail[c] != slot:
            self._unlink(slot, c)
            self._append(slot, c)
        return slot

    def peek(self, c: int, d: int) -> int:
        """Membership probe without touching recency; slot or -1."""
        slot = self.slot_of.get((c << _DOC_BITS) | d)
        return -1 if slot is None else slot

    def put(self, c: int, d: int, s: int, v: int) -> list[int]:
        """Insert/refresh (doc, size, version); returns evicted docs in
        eviction order — exactly ``LRUCache.put``."""
        key = (c << _DOC_BITS) | d
        slot = self.slot_of.get(key)
        used = self.used[c]
        cap = self.caps[c]
        if slot is not None:
            used += s - self.e_size[slot]
            self.e_size[slot] = s
            self.e_ver[slot] = v
            if self.tail[c] != slot:
                self._unlink(slot, c)
                self._append(slot, c)
        elif s > cap:
            return []
        else:
            free = self.free
            if free:
                slot = free.pop()
                self.e_doc[slot] = d
                self.e_size[slot] = s
                self.e_ver[slot] = v
            else:
                slot = len(self.e_doc)
                self.e_doc.append(d)
                self.e_size.append(s)
                self.e_ver.append(v)
                self.e_prev.append(-1)
                self.e_next.append(-1)
            self.slot_of[key] = slot
            self._append(slot, c)
            self.count[c] += 1
            used += s
        if used <= cap:
            self.used[c] = used
            return []
        evicted: list[int] = []
        while used > cap:
            victim = self.head[c]
            if victim == slot:
                # Only the just-refreshed oversized entry remains.
                used -= self._drop(slot, c, key)
                evicted.append(d)
                break
            vdoc = self.e_doc[victim]
            used -= self._drop(victim, c, (c << _DOC_BITS) | vdoc)
            evicted.append(vdoc)
        self.used[c] = used
        return evicted


def _reject(knob: str, why: str) -> ValueError:
    return ValueError(
        f"simulate_stream does not support {knob} ({why}); "
        "replay a materialised Trace through repro.core.simulate instead"
    )


def check_stream_config(config: SimulationConfig) -> None:
    """Raise :class:`ValueError` for knobs outside the streaming subset."""
    if config.memory_fraction is not None or config.browser_memory_fraction is not None:
        raise _reject("the tiered memory model", "per-entry tier state")
    if config.browser_policy != "lru":
        raise _reject(
            f"browser_policy={config.browser_policy!r}",
            "the flat slot pool implements LRU order",
        )
    if config.consistency is not None:
        raise _reject("consistency policies", "per-entry expiry state")
    if config.churn is not None or config.holder_availability < 1.0:
        raise _reject("holder availability models", "per-client stochastic state")
    if config.corruption_rate > 0.0:
        raise _reject("transfer corruption", "per-transfer stochastic draws")
    if config.adversarial is not None:
        raise _reject(
            "adversarial peer profiles", "per-holder stochastic draws"
        )
    if config.quarantine_threshold > 0 or config.static_blacklist:
        raise _reject(
            "holder quarantine", "per-holder reputation state"
        )
    if config.proxy_faults is not None or config.checkpoint is not None:
        raise _reject("proxy crash/checkpoint models", "whole-index snapshots")
    if config.chaos is not None:
        raise _reject(
            "chaos plans", "composed fault models and mid-replay invariants"
        )
    if config.federation is not None:
        if config.federation.link_faults is not None:
            raise _reject(
                "link_faults", "time-varying inter-proxy connectivity"
            )
        raise _reject("federation", "multi-proxy replay")
    if config.index_kind != "exact":
        raise _reject("bloom indexes", "lookups scan every client filter")
    if config.index_update_policy is not None:
        raise _reject(
            "periodic index updates", "false-miss checks scan every browser"
        )


class StreamSimulator:
    """One organization, one configuration, one request *source*.

    *source* is anything with ``name``, ``n_clients``,
    ``has_dense_clients``, ``__len__`` and ``iter_rows()`` — a
    :class:`~repro.traces.record.Trace` or a
    :class:`~repro.traces.streaming.TraceStream`.
    """

    def __init__(
        self,
        source,
        organization: Organization,
        config: SimulationConfig,
    ) -> None:
        check_stream_config(config)
        self.source = source
        self.organization = organization
        self.config = config
        self.features = organization.features

        if len(source) == 0:
            n_clients = 1
        elif not source.has_dense_clients:
            raise ValueError(
                f"source {source.name!r} has sparse client ids: the "
                "streaming engine requires dense ids 0..n_clients-1"
            )
        else:
            n_clients = source.n_clients
        self.n_clients = n_clients

        if self.features.has_browsers:
            caps = config.browser_capacities
            if caps is None:
                capacities = [config.browser_capacity] * n_clients
            elif len(caps) < n_clients:
                raise ValueError(
                    f"browser_capacities covers {len(caps)} clients but the "
                    f"trace has {n_clients}"
                )
            else:
                capacities = list(caps[:n_clients])
            self.flat = _FlatBrowsers(capacities)
        else:
            self.flat = None

        self.proxy = (
            make_cache(config.proxy_policy, config.proxy_capacity)
            if self.features.has_proxy
            else None
        )
        self.index = (
            BrowserIndex(n_clients, UpdateMode.INVALIDATION)
            if self.features.has_index
            else None
        )
        self.bus = SharedBus(config.lan)
        self.result = SimulationResult(
            trace_name=source.name,
            organization=organization.value,
        )

    # -- browser put with index bookkeeping ---------------------------

    def _bput(self, c: int, d: int, s: int, v: int, t: float) -> None:
        """Insert into a browser cache, keeping the index in sync —
        the flat-state equivalent of ``Simulator._browser_put`` (same
        event order: evict hooks during the put, then insert/evict)."""
        flat = self.flat
        index = self.index
        if index is None:
            flat.put(c, d, s, v)
            return
        already = flat.peek(c, d) >= 0
        evicted = flat.put(c, d, s, v)
        for doc in evicted:
            index.record_evict(c, doc, t)
        if flat.peek(c, d) >= 0:
            index.record_insert(
                c, d, v, s, t, ttl=self.config.index_entry_ttl, replace=already
            )
        elif already:
            index.record_evict(c, d, t)

    # -- resilient remote delivery ------------------------------------

    def _probe_holder(self, holder: int, d: int, s: int, v: int, t: float) -> bool:
        """One fetch attempt from *holder* — the streaming subset has no
        churn or corruption, so the only failure mode is a stale index
        entry (possible through TTL'd entries racing evictions)."""
        flat = self.flat
        if self.config.remote_hit_refreshes_holder:
            slot = flat.probe(holder, d)
        else:
            slot = flat.peek(holder, d)
        if slot < 0 or flat.e_ver[slot] != v:
            self.index.record_false_hit(holder, d)
            self.result.index_false_hits += 1
            setup = self.config.lan.connection_setup
            overhead = self.result.overhead
            overhead.wasted_round_trip_time += setup
            overhead.wasted_false_hit_time += setup
            return False
        self.bus.submit(t, s)
        return True

    def _failover_deliver(self, hit, c: int, d: int, s: int, v: int, t: float) -> bool:
        index = self.index
        result = self.result
        tried = {hit.client}
        holder = hit.client
        retries_left = self.config.max_holder_retries
        candidates: list[int] | None = None
        while True:
            if self._probe_holder(holder, d, s, v, t):
                if len(tried) > 1:
                    result.failover_rescued_hits += 1
                return True
            if retries_left <= 0:
                return False
            if candidates is None:
                candidates = index.candidate_holders(
                    d, exclude_client=c, now=t, version=v
                )
            backup = next((x for x in candidates if x not in tried), None)
            if backup is None:
                return False
            tried.add(backup)
            holder = backup
            retries_left -= 1
            result.failover_attempts += 1

    # -- the replay loop ----------------------------------------------

    def run(self) -> SimulationResult:
        features = self.features
        config = self.config
        result = self.result
        flat = self.flat
        proxy = self.proxy
        index = self.index

        has_browsers = features.has_browsers
        caches_remote = features.caches_remote_fetches
        cache_remote_at_proxy = config.cache_remote_hits_at_proxy

        # Inlined timing models — identical arithmetic to _run_fast so
        # the accumulated floats match the materialised engine exactly.
        lan = config.lan
        wan = config.wan
        storage = config.storage
        lan_setup = lan.connection_setup
        lan_bw = lan.bandwidth_bps
        wan_setup = wan.connection_setup
        wan_bw = wan.bandwidth_bps
        disk_page = storage.disk_page_bytes
        disk_pt = storage.disk_page_time
        BITS = BITS_PER_BYTE

        # Flat-state handles.
        probe = flat.probe if flat is not None else None
        e_ver = flat.e_ver if flat is not None else None
        bput = self._bput
        lru_p = proxy is not None and config.proxy_policy == "lru"
        proxy_entries = proxy._entries if lru_p else None
        proxy_get = proxy.get if proxy is not None else None
        proxy_put = proxy.put if proxy is not None else None
        index_lookup = index.lookup if index is not None else None
        failover = self._failover_deliver
        security = config.security
        sec_transfer = security.transfer_cost if security is not None else None

        # Batched counters, flushed once (same discipline as _run_fast).
        n_requests = 0
        total_bytes = 0
        lb_hits = lb_bytes = 0
        px_hits = px_bytes = 0
        rb_hits = rb_bytes = 0
        og_misses = og_bytes = 0
        local_hit_time = 0.0
        proxy_hit_time = 0.0
        origin_miss_time = 0.0
        remote_storage_time = 0.0
        security_time = 0.0
        peak_entries = 0
        peak_footprint = 0

        for t, c, d, s, v in self.source.iter_rows():
            if d >= _DOC_LIMIT:
                raise ValueError(
                    f"document id {d} exceeds the packed-key limit "
                    f"({_DOC_LIMIT})"
                )

            # 1. local browser cache
            if has_browsers:
                slot = probe(c, d)
                if slot >= 0 and e_ver[slot] == v:
                    n_requests += 1
                    total_bytes += s
                    lb_hits += 1
                    lb_bytes += s
                    local_hit_time += -(-s // disk_page) * disk_pt
                    continue

            # 2. proxy cache
            if proxy is not None:
                if lru_p:
                    entry = proxy_entries.get(d)
                    if entry is not None:
                        proxy_entries.move_to_end(d)
                else:
                    entry = proxy_get(d)
                if entry is not None and entry.version == v:
                    n_requests += 1
                    total_bytes += s
                    px_hits += 1
                    px_bytes += s
                    proxy_hit_time += -(-s // disk_page) * disk_pt + (
                        lan_setup + s * BITS / lan_bw
                    )
                    if has_browsers:
                        bput(c, d, s, v, t)
                    continue

            # 3. browser index -> remote browser cache (with failover)
            if index is not None:
                hit = index_lookup(d, c, t, v)
                if hit is not None and failover(hit, c, d, s, v, t):
                    n_requests += 1
                    total_bytes += s
                    rb_hits += 1
                    rb_bytes += s
                    remote_storage_time += -(-s // disk_page) * disk_pt
                    if sec_transfer is not None:
                        security_time += sec_transfer(s)
                    if caches_remote:
                        bput(c, d, s, v, t)
                        if cache_remote_at_proxy and proxy_put is not None:
                            proxy_put(d, s, v)
                    n = index.n_entries
                    if n > peak_entries:
                        peak_entries = n
                        peak_footprint = index.footprint_bytes()
                    continue

            # 4. origin server
            n_requests += 1
            total_bytes += s
            og_misses += 1
            og_bytes += s
            origin_miss_time += (wan_setup + s * BITS / wan_bw) + (
                lan_setup + s * BITS / lan_bw
            )
            if proxy_put is not None:
                proxy_put(d, s, v)
            if has_browsers:
                bput(c, d, s, v, t)
            if index is not None:
                n = index.n_entries
                if n > peak_entries:
                    peak_entries = n
                    peak_footprint = index.footprint_bytes()

        # -- flush the batched counters --------------------------------
        overhead = result.overhead
        result.n_requests += n_requests
        result.total_bytes += total_bytes
        by_location = result.by_location
        stats = by_location[HitLocation.LOCAL_BROWSER]
        stats.hits += lb_hits
        stats.hit_bytes += lb_bytes
        stats = by_location[HitLocation.PROXY]
        stats.hits += px_hits
        stats.hit_bytes += px_bytes
        stats = by_location[HitLocation.REMOTE_BROWSER]
        stats.hits += rb_hits
        stats.hit_bytes += rb_bytes
        stats = by_location[HitLocation.ORIGIN]
        stats.misses += og_misses
        stats.miss_bytes += og_bytes
        overhead.local_hit_time += local_hit_time
        overhead.proxy_hit_time += proxy_hit_time
        overhead.origin_miss_time += origin_miss_time
        overhead.remote_storage_time += remote_storage_time
        overhead.security_time += security_time
        result.index_peak_entries = peak_entries
        result.index_peak_footprint_bytes = peak_footprint

        overhead.absorb_bus(self.bus.stats)
        if index is not None:
            result.index_stats = index.stats
            result.index_lookups = index.n_lookups
            overhead.index_update_messages = index.update_messages
        return result


def simulate_stream(
    source,
    organization: Organization,
    config: SimulationConfig,
) -> SimulationResult:
    """Replay any row source through the flat-state streaming engine.

    Bit-identical to ``simulate(trace, organization, config)`` on the
    materialised trace for every supported configuration; raises
    :class:`ValueError` for knobs outside the streaming subset (see
    module docstring).
    """
    return StreamSimulator(source, organization, config).run()
