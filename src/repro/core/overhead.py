"""Overhead accounting (paper §5).

The engine accumulates estimated service time for every request class
while it replays the trace; :class:`OverheadReport` then answers the
paper's questions:

* what fraction of total workload service time is spent transferring
  documents between browser caches (paper: "less than 1.2%"),
* what fraction of that communication time is bus contention
  (paper: "up to 0.12%"),
* how much §6 cryptography adds per remote hit (paper: "trivial").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.ethernet import BusStats

__all__ = ["OverheadReport"]


@dataclass
class OverheadReport:
    """Service-time totals accumulated over one simulation run."""

    local_hit_time: float = 0.0
    proxy_hit_time: float = 0.0
    remote_transfer_time: float = 0.0
    remote_contention_time: float = 0.0
    remote_storage_time: float = 0.0
    origin_miss_time: float = 0.0
    security_time: float = 0.0
    #: If-Modified-Since revalidation round trips (consistency mode).
    validation_time: float = 0.0
    #: §5 wasted round trips: a false index hit or an offline holder
    #: costs a LAN connection setup before the request escalates (the
    #: sum of the two per-failure-mode components below).
    wasted_round_trip_time: float = 0.0
    #: component of ``wasted_round_trip_time`` spent probing offline
    #: holders (client churn).  Informational breakdown — already
    #: included in the total, so excluded from ``total_service_time``.
    wasted_offline_time: float = 0.0
    #: component of ``wasted_round_trip_time`` spent on stale-index
    #: probes (the holder no longer has the document/version).
    wasted_false_hit_time: float = 0.0
    #: time lost to remote transfers that failed the §6 integrity
    #: check: the discarded transfer itself plus the MD5/watermark
    #: verification that caught it.  The retransmission (next holder or
    #: origin) is charged normally on top.
    integrity_retransmission_time: float = 0.0
    #: serialising browser-index checkpoints plus reading the restore
    #: chain back after a proxy crash (crash-recovery mode only).
    checkpoint_time: float = 0.0
    index_update_messages: int = 0

    @property
    def remote_communication_time(self) -> float:
        """Transfer plus contention: what the paper calls the
        "communication among browser caches"."""
        return self.remote_transfer_time + self.remote_contention_time

    @property
    def total_service_time(self) -> float:
        return (
            self.local_hit_time
            + self.proxy_hit_time
            + self.remote_storage_time
            + self.remote_communication_time
            + self.origin_miss_time
            + self.security_time
            + self.validation_time
            + self.wasted_round_trip_time
            + self.integrity_retransmission_time
            + self.checkpoint_time
        )

    @property
    def communication_fraction(self) -> float:
        """Remote-browser communication as a fraction of total service
        time (the paper's headline <1.2%)."""
        total = self.total_service_time
        return self.remote_communication_time / total if total else 0.0

    @property
    def contention_fraction_of_communication(self) -> float:
        """Bus contention as a fraction of communication time (the
        paper's <0.12% — remote hits are not bursty)."""
        comm = self.remote_communication_time
        return self.remote_contention_time / comm if comm else 0.0

    @property
    def security_fraction_of_communication(self) -> float:
        """Crypto CPU time relative to the communication it protects."""
        comm = self.remote_communication_time
        return self.security_time / comm if comm else 0.0

    def absorb_bus(self, bus: BusStats) -> None:
        """Fold a shared bus's totals into this report."""
        self.remote_transfer_time += bus.total_service_time
        self.remote_contention_time += bus.total_contention_time
