"""The trace-driven simulation engine.

Replays a :class:`~repro.traces.record.Trace` through one of the five
caching organizations and produces a
:class:`~repro.core.metrics.SimulationResult`.

Request path (matching paper §2/§3.2):

1. the requesting client's **browser cache** (if the organization has
   browser caches) — a resident copy with a stale version counts as a
   miss, per the paper's size-change rule;
2. the **proxy cache** (if present); a proxy hit also populates the
   requesting browser;
3. the **browser index** (if present) — on an index hit the document is
   validated against the *true* holder cache (a stale index yields a
   false hit, which costs a wasted round trip), then transferred over
   the shared LAN bus; BAPS caches the document at the requesting
   browser, global-browsers-cache-only does not.  Delivery is
   *resilient*: when the chosen holder is offline (Bernoulli or
   session-based churn), stale, or serves a transfer that fails the §6
   integrity check, up to ``config.max_holder_retries`` further
   replicas from the index's candidate list are probed — each failed
   probe charging a wasted LAN round trip — before the request
   escalates;
4. otherwise the **origin server** over the WAN; the response populates
   the proxy and/or the browser per organization.

Every leg is priced by the §4.2/§5 timing models into the result's
:class:`~repro.core.overhead.OverheadReport`.

The replay loops are the throughput bottleneck of every sweep, so they
are written as *optimized fast paths*: per-request counters accumulate
in local variables and flush into the result once at finalise, the
timing arithmetic of the §4.2/§5 models is inlined (same operations in
the same order, so the floats are bit-identical), per-client cache
handles are precomputed, and config/feature reads are hoisted out of
the loop.  :mod:`repro.core.reference` keeps a frozen copy of the
straight-line engine; the differential suite
(``tests/test_differential.py``) replays randomized configurations
through both and asserts the results are exactly equal, field for
field.  Passing a :class:`~repro.util.profiling.ReplayProfile` switches
to instrumented loops that additionally time each phase
(results stay bit-identical; only observation is added).
"""

from __future__ import annotations

import random
from time import perf_counter

from repro.adversarial import PeerPopulation
from repro.cache import TieredLRUCache, make_cache
from repro.cache.base import CacheEntry
from repro.core.chaos import InvariantMonitor
from repro.core.churn import ChurnProcess
from repro.core.config import SimulationConfig
from repro.core.events import HitLocation
from repro.core.metrics import SimulationResult
from repro.core.policies import Organization
from repro.core.proxy_faults import ProxyFaultSchedule
from repro.index.browser_index import BrowserIndex, UpdateMode
from repro.index.checkpoint import IndexCheckpointer
from repro.index.engine_bloom import BloomBrowserIndex
from repro.index.staleness import StalenessStats
from repro.network.ethernet import SharedBus
from repro.security.protocols import SecurityOverheadModel
from repro.traces.record import Trace
from repro.util.profiling import ReplayProfile
from repro.util.rng import derive_seed
from repro.util.units import BITS_PER_BYTE

__all__ = ["Simulator", "simulate", "bloom_expected_docs", "dense_client_count"]


def _dense_client_count(trace: Trace) -> int:
    """Validate the dense-client-id contract and return the count.

    Per-client state is indexed by client id, so ids must be exactly
    ``0..n_clients-1`` (the :class:`~repro.traces.record.Trace`
    contract).  Sparse ids are rejected instead of silently allocating
    ``max_id + 1`` slots, which is both a memory bug (state for ids
    that never occur) and an aliasing hazard.  Empty traces replay
    against a single idle client, as before.
    """
    if len(trace) == 0:
        return 1
    if not trace.has_dense_clients:
        n_distinct, max_id = trace._client_id_info()
        raise ValueError(
            f"trace {trace.name!r} has sparse client ids ({n_distinct} "
            f"distinct ids, max id {max_id}): the simulator requires dense "
            "ids 0..n_clients-1; renumber with Trace.renumbered() or "
            "repro.traces.filters.select_clients() first"
        )
    return trace.n_clients


#: public alias (kept out of the hot path's way).
dense_client_count = _dense_client_count


def bloom_expected_docs(
    trace: Trace, capacities, fallback_capacity: int
) -> int:
    """Expected documents per client for bloom-filter sizing.

    The single sizing rule shared by the per-client summary filters of
    :class:`~repro.index.engine_bloom.BloomBrowserIndex` and the
    federation's inter-proxy digests
    (:mod:`repro.federation.digest`).  Both layers validating the same
    claim must budget false positives from the same arithmetic — a
    digest sized differently from the index it summarises would hide
    (or invent) cross-proxy false hits the per-proxy accounting never
    sees.
    """
    avg_doc = max(1, int(trace.mean_request_size)) if len(trace) else 1
    capacities = list(capacities)
    mean_capacity = (
        int(sum(capacities) / len(capacities)) if capacities else fallback_capacity
    )
    return max(8, mean_capacity // avg_doc)


class Simulator:
    """One organization, one configuration, one trace replay.

    ``profile`` opts into the instrumented loops: per-phase wall-clock
    timers accumulated into the given
    :class:`~repro.util.profiling.ReplayProfile`.  It is a constructor
    argument rather than a config knob so journal identity digests
    (``config_digest``) are unaffected.
    """

    def __init__(
        self,
        trace: Trace,
        organization: Organization,
        config: SimulationConfig,
        profile: ReplayProfile | None = None,
    ) -> None:
        if config.chaos is not None:
            # Resolve a composed chaos plan once, up front, so every
            # knob below sees the installed fault models; compose() is
            # idempotent, leaving only the monitor cadence behind.
            config = config.chaos.compose(config)
        self.trace = trace
        self.organization = organization
        self.config = config
        self.profile = profile
        self.features = organization.features
        if config.memory_fraction is not None and (
            config.browser_policy != "lru" or config.proxy_policy != "lru"
        ):
            raise ValueError("the tiered memory model supports only LRU caches")

        # Client ids index per-client state (browser caches, index
        # filters, churn sessions) directly, so the trace must honour
        # its documented contract: dense ids 0..n_clients-1.  Sizing by
        # the raw maximum id instead used to allocate per-client state
        # for every id *below* the maximum — a 2-request trace with
        # client id 2,999,999 cost ~2.7 GB of peak RSS.
        n_clients = _dense_client_count(trace)
        self._tiered = config.memory_fraction is not None

        browser_mem = (
            config.browser_memory_fraction
            if config.browser_memory_fraction is not None
            else config.memory_fraction
        )
        if self.features.has_browsers:
            capacities = self._browser_capacities(n_clients)
            self.browsers = [
                self._new_cache(config.browser_policy, capacities[c], browser_mem)
                for c in range(n_clients)
            ]
        else:
            self.browsers = []

        self.proxy = (
            self._new_cache(config.proxy_policy, config.proxy_capacity, config.memory_fraction)
            if self.features.has_proxy
            else None
        )

        if self.features.has_index:
            self.index = self._new_index(n_clients)
            self._now = 0.0
            for cid, cache in enumerate(self.browsers):
                cache.on_evict = self._make_evict_hook(cid)
        else:
            self.index = None

        self._churn = (
            ChurnProcess(config.churn, seed=config.availability_seed)
            if config.churn is not None
            else None
        )
        if self._churn is None and config.holder_availability < 1.0:
            self._avail_rng = random.Random(config.availability_seed)
        else:
            self._avail_rng = None
        self._corrupt_rng = (
            random.Random(derive_seed(config.availability_seed, "integrity"))
            if config.corruption_rate > 0.0
            else None
        )
        # Adversarial peer profiles (repro.adversarial).  None — the
        # default — constructs nothing and keeps the single global
        # corruption draw above, so every golden stays bit-identical.
        adversarial = config.adversarial
        if adversarial is not None:
            self._population = PeerPopulation.for_simulation(
                adversarial, n_clients, config.availability_seed
            )
            self._flap_schedule = adversarial.flap_schedule
        else:
            self._population = None
            self._flap_schedule = None
        #: lazy per-holder integrity RNG streams (adversarial mode only).
        self._holder_corrupt_rngs: dict[int, random.Random] = {}
        # A nonzero corruption rate implies the §6 integrity machinery
        # is active: price it even when no explicit model was given.
        # Polluters likewise: their corrupted transfers are only
        # detectable — and chargeable, on every failed probe — with the
        # integrity layer on.
        self._security = config.security
        if self._security is None and (
            config.corruption_rate > 0.0
            or (
                adversarial is not None
                and adversarial.polluter_fraction > 0.0
                and adversarial.polluter_corruption_rate > 0.0
            )
        ):
            self._security = SecurityOverheadModel()

        # Reputation/quarantine defense.  The blacklist starts from the
        # oracle static_blacklist (if any); learned quarantines join it
        # when a holder crosses quarantine_threshold integrity failures.
        self._quarantine_active = (
            config.quarantine_threshold > 0 or bool(config.static_blacklist)
        )
        self._banned_set: set[int] = set(config.static_blacklist or ())
        self._quarantined_at: dict[int, float] = {}
        self._integrity_strikes: dict[int, int] = {}
        self._lookup_skipped_banned = False
        self._request_poisoned = False

        # Proxy crash recovery.  Nothing below constructs an RNG unless
        # a rate-based fault model is actually configured; the default
        # (always-up proxy) leaves the replay loops untouched.
        self._fault_schedule = (
            ProxyFaultSchedule(config.proxy_faults, seed=config.availability_seed)
            if config.proxy_faults is not None
            and (self.features.has_proxy or self.features.has_index)
            else None
        )
        self._checkpointer = (
            IndexCheckpointer(config.checkpoint)
            if config.checkpoint is not None and self.features.has_index
            else None
        )
        self._recovering = False
        self._window_start = 0.0
        self._window_end = 0.0
        #: (due time, client) re-announcements of the open window, ascending.
        self._pending_reannounce: list[tuple[float, int]] = []
        self._reannounce_pos = 0
        self._last_t = 0.0
        # Index counters accumulated from generations destroyed by
        # crashes; _finalise folds them into the final result.
        self._prior_stats = StalenessStats()
        self._prior_lookups = 0
        self._prior_update_messages = 0

        # Opt-in mid-replay invariant monitor (repro.core.chaos).  The
        # default (chaos=None) adds one never-taken branch per request
        # to each replay loop and constructs nothing.
        chaos = config.chaos
        self._monitor = (
            InvariantMonitor(config, chaos.check_invariants_every)
            if chaos is not None and chaos.monitored
            else None
        )

        self.bus = SharedBus(config.lan)
        self.result = SimulationResult(
            trace_name=trace.name,
            organization=organization.value,
            uses_memory_tier=self._tiered,
        )

    # -- construction helpers ------------------------------------------------

    def _browser_capacities(self, n_clients: int) -> list[int]:
        caps = self.config.browser_capacities
        if caps is None:
            return [self.config.browser_capacity] * n_clients
        if len(caps) < n_clients:
            raise ValueError(
                f"browser_capacities covers {len(caps)} clients but the trace "
                f"has {n_clients}"
            )
        return list(caps[:n_clients])

    def _new_cache(self, policy: str, capacity: int, memory_fraction: float | None):
        if self._tiered:
            return TieredLRUCache(capacity, memory_fraction)
        return make_cache(policy, capacity)

    def _new_index(self, n_clients: int):
        config = self.config
        if config.index_kind == "bloom":
            # Size filters from the capacities actually deployed: with
            # heterogeneous ``browser_capacities`` the uniform
            # ``browser_capacity`` may be wildly off, skewing the bloom
            # false-positive rate for fig-8-style runs.
            expected = bloom_expected_docs(
                self.trace, self._browser_capacities(n_clients), config.browser_capacity
            )
            return BloomBrowserIndex(
                n_clients,
                expected_docs_per_client=expected,
                bits_per_doc=config.bloom_bits_per_doc,
                rebuild_threshold=config.bloom_rebuild_threshold,
            )
        if config.index_update_policy is None:
            return BrowserIndex(n_clients, UpdateMode.INVALIDATION)
        return BrowserIndex(
            n_clients, UpdateMode.PERIODIC, policy=config.index_update_policy
        )

    def _make_evict_hook(self, client: int):
        def hook(doc: int) -> None:
            self.index.record_evict(client, doc, self._now)

        return hook

    # -- cache access helpers (uniform over plain / tiered caches) ----------

    def _get(self, cache, key: int):
        """Returns ``(entry, served_from_memory: bool | None)``."""
        if self._tiered:
            entry, tier = cache.get(key)
            if entry is None:
                return None, None
            return entry, tier.value == "memory"
        return cache.get(key), None

    def _peek_tier(self, cache, key: int):
        if self._tiered:
            tier = cache.tier_of(key)
            return None if tier is None else tier.value == "memory"
        return None

    def _holder_online(self, holder: int, now: float) -> bool:
        """Client churn: is *holder* reachable at virtual time *now*?"""
        population = self._population
        if (
            population is not None
            and self._flap_schedule is not None
            and population.is_flapper(holder)
            and self._flap_schedule.offline_at(now)
        ):
            # Correlated mass churn: the flapper cohort is down together
            # during a wave window, regardless of its session state.
            return False
        if self._churn is not None:
            return self._churn.online(holder, now)
        if self._avail_rng is None:
            return True
        return self._avail_rng.random() < self.config.holder_availability

    def _transfer_corrupted(self, holder: int) -> bool:
        """Integrity draw: does *holder*'s transfer arrive corrupted?

        Without an adversarial population every transfer shares one
        global stream — the original engine's draw, kept verbatim for
        bit-identical goldens.  With profiles configured the draw is
        per-holder: polluters corrupt at ``polluter_corruption_rate``,
        honest peers at the background ``corruption_rate``, each from
        its own lazily-seeded stream (so a population reshuffle never
        perturbs another holder's draws).
        """
        population = self._population
        if population is None:
            return (
                self._corrupt_rng is not None
                and self._corrupt_rng.random() < self.config.corruption_rate
            )
        if population.is_polluter(holder):
            rate = self.config.adversarial.polluter_corruption_rate
        else:
            rate = self.config.corruption_rate
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        rng = self._holder_corrupt_rngs.get(holder)
        if rng is None:
            rng = self._holder_corrupt_rngs[holder] = random.Random(
                derive_seed(self.config.availability_seed, "integrity", holder)
            )
        return rng.random() < rate

    # -- reputation / quarantine defense -------------------------------------

    def _record_integrity_failure(self, holder: int, t: float) -> None:
        """One more strike against *holder*; quarantine at the threshold."""
        strikes = self._integrity_strikes.get(holder, 0) + 1
        if strikes >= self.config.quarantine_threshold:
            if holder not in self._banned_set:
                self._banned_set.add(holder)
                self._quarantined_at[holder] = t
                self.result.quarantined_peers += 1
            # Re-admission after decay starts from a clean slate.
            self._integrity_strikes[holder] = 0
        else:
            self._integrity_strikes[holder] = strikes

    def _active_banned(self, t: float):
        """The blacklist at time *t*, purging decayed quarantines."""
        decay = self.config.quarantine_decay
        if decay is not None and self._quarantined_at:
            expired = [
                h for h, at in self._quarantined_at.items() if t >= at + decay
            ]
            for h in expired:
                del self._quarantined_at[h]
                self._banned_set.discard(h)
        return self._banned_set

    def _guarded_lookup_fn(self, index):
        """The ``index.lookup`` binding for the replay loops.

        Quarantine off — the raw bound method, so the hot path is
        untouched.  Quarantine armed — a wrapper filtering blacklisted
        holders out of candidacy and flagging *rescues* (lookups where
        the filter actually removed a qualifying candidate), which
        :meth:`_failover_deliver` converts into
        ``quarantine_rescued_hits`` on successful delivery.  Must be
        re-invoked whenever ``self.index`` is replaced (proxy crash).
        """
        if not self._quarantine_active:
            return index.lookup
        lookup = index.lookup

        def guarded(d, c, t, v):
            self._lookup_skipped_banned = False
            banned = self._active_banned(t)
            if not banned:
                return lookup(d, c, t, v)
            before = index.banned_candidates_skipped
            hit = lookup(d, c, t, v, banned)
            if index.banned_candidates_skipped != before:
                self._lookup_skipped_banned = True
            return hit

        return guarded

    # -- resilient remote-hit delivery --------------------------------------

    def _probe_holder(
        self, holder: int, d: int, s: int, v: int, t: float
    ) -> tuple[bool, bool | None]:
        """One attempt to fetch (doc, version) from *holder*.

        Returns ``(served, memory_tier)``.  A failed probe charges its
        own waste — a LAN round trip for an offline or stale holder, a
        discarded transfer plus verification for an integrity failure —
        and leaves escalation to the caller.  A successful probe only
        submits the bus transfer; the *caller* accounts the remote hit
        (so the replay loops can batch those counters).
        """
        config = self.config
        result = self.result
        overhead = result.overhead
        lan = config.lan
        if not self._holder_online(holder, t):
            result.holder_unavailable += 1
            setup = lan.connection_setup
            overhead.wasted_round_trip_time += setup
            overhead.wasted_offline_time += setup
            return False, None
        holder_cache = self.browsers[holder]
        if config.remote_hit_refreshes_holder:
            held, memory = self._get(holder_cache, d)
        else:
            held = holder_cache.peek(d)
            memory = self._peek_tier(holder_cache, d)
        if held is None or held.version != v:
            # Stale index: the holder no longer has this document.
            self.index.record_false_hit(holder, d)
            result.index_false_hits += 1
            setup = lan.connection_setup
            overhead.wasted_round_trip_time += setup
            overhead.wasted_false_hit_time += setup
            return False, None
        if self._transfer_corrupted(holder):
            # The transfer completes but fails the §6 watermark/MD5
            # check: pay for the discarded transfer and the verify CPU,
            # then let the caller retransmit from the next candidate
            # (or the origin).
            result.integrity_failures += 1
            population = self._population
            if population is not None:
                self._request_poisoned = True
                if population.is_polluter(holder):
                    result.corrupt_deliveries += 1
            if config.quarantine_threshold > 0:
                self._record_integrity_failure(holder, t)
            cost = lan.transfer_time(s)
            if self._security is not None:
                cost += self._security.verify_cost(s)
            overhead.integrity_retransmission_time += cost
            return False, None
        self.bus.submit(t, s)
        return True, memory

    def _remote_delivery(
        self, c: int, d: int, s: int, v: int, t: float, prof: ReplayProfile | None = None
    ) -> tuple[bool, bool | None]:
        """The resilient remote-hit path shared by both replay loops.

        Looks up a holder, then fails over across the index's replica
        list — bounded by ``config.max_holder_retries`` — until one
        probe serves the document or the candidates are exhausted.
        Returns ``(served, memory_tier)``; on ``True`` the caller
        accounts the remote hit, on ``False`` the request escalates to
        the origin.  ``prof`` (instrumented loops only) times the index
        lookup as its own sub-phase.
        """
        index = self.index
        result = self.result
        lookup = self._guarded_lookup_fn(index)
        if prof is None:
            hit = lookup(d, c, t, v)
        else:
            t0 = perf_counter()
            hit = lookup(d, c, t, v)
            prof.add("index_lookup", perf_counter() - t0)
        if hit is None:
            # Was this a lost opportunity?  Check the truth.
            if self._recovering:
                # During rebuild a miss on the partial index is not an
                # error — but a browser the index has not re-learned yet
                # could have served it: a hit lost to recovery.
                if self._truth_holds(d, v, exclude=c):
                    result.hits_lost_to_recovery += 1
            elif index.is_stale and self._truth_holds(d, v, exclude=c):
                index.record_false_miss()
            return False, None
        return self._failover_deliver(hit, c, d, s, v, t)

    def _failover_deliver(
        self, hit, c: int, d: int, s: int, v: int, t: float
    ) -> tuple[bool, bool | None]:
        """Probe the looked-up holder, failing over across the index's
        replica list until one probe serves or candidates run out.

        Split from :meth:`_remote_delivery` so the optimized loops can
        inline the (far more common) lookup-miss path and only pay this
        call on an index hit.
        """
        index = self.index
        result = self.result
        self._request_poisoned = False
        quarantine = self._quarantine_active
        tried = {hit.client}
        holder = hit.client
        retries_left = self.config.max_holder_retries
        candidates: list[int] | None = None
        served = False
        memory: bool | None = None
        while True:
            served, memory = self._probe_holder(holder, d, s, v, t)
            if served:
                if len(tried) > 1:
                    result.failover_rescued_hits += 1
                break
            if retries_left <= 0:
                break
            if candidates is None:
                if quarantine:
                    candidates = index.candidate_holders(
                        d, exclude_client=c, now=t, version=v,
                        banned=self._banned_set or None,
                    )
                else:
                    candidates = index.candidate_holders(
                        d, exclude_client=c, now=t, version=v
                    )
            if quarantine:
                # A strike during *this* request may have quarantined a
                # candidate after the list was built — skip it too.
                banned_set = self._banned_set
                backup = next(
                    (
                        x
                        for x in candidates
                        if x not in tried and x not in banned_set
                    ),
                    None,
                )
            else:
                backup = next((x for x in candidates if x not in tried), None)
            if backup is None:
                break
            tried.add(backup)
            holder = backup
            retries_left -= 1
            result.failover_attempts += 1
        if self._request_poisoned:
            result.poisoned_requests += 1
            self._request_poisoned = False
        if served and quarantine and self._lookup_skipped_banned:
            result.quarantine_rescued_hits += 1
            self._lookup_skipped_banned = False
        return (True, memory) if served else (False, None)

    def _storage_time(self, n_bytes: int, memory: bool | None) -> float:
        storage = self.config.storage
        if memory:
            return storage.memory_time(n_bytes)
        return storage.disk_time(n_bytes)

    def _browser_put(self, client: int, doc: int, size: int, version: int, now: float) -> None:
        """Insert into a browser cache, keeping the index in sync."""
        cache = self.browsers[client]
        index = self.index
        if index is not None:
            already = doc in cache
            self._now = now
            cache.put(doc, size, version)
            # An oversized object is refused; only index what is cached.
            if doc in cache:
                index.record_insert(
                    client,
                    doc,
                    version,
                    size,
                    now,
                    ttl=self.config.index_entry_ttl,
                    replace=already,
                )
            elif already:
                index.record_evict(client, doc, now)
        else:
            cache.put(doc, size, version)

    # -- proxy crash recovery ------------------------------------------------

    def _advance_recovery(self, t: float) -> bool:
        """Process checkpoint deadlines and crashes due by virtual time
        *t*, in time order, and advance any open rebuild window.

        Returns True when a crash replaced the proxy/index objects —
        the replay loops must refresh their local bindings.  Called
        before each request is served, so index state seen by a
        checkpoint or crash is exactly the state at its virtual time
        (index state only changes at requests).
        """
        self._last_t = t
        checkpointer = self._checkpointer
        faults = self._fault_schedule
        result = self.result
        crashed = False
        while True:
            ck_at = checkpointer.next_due(t) if checkpointer is not None else None
            crash_at = faults.peek(t) if faults is not None else None
            if ck_at is None and crash_at is None:
                break
            if crash_at is None or (ck_at is not None and ck_at <= crash_at):
                # Re-announcements due before this snapshot are part of
                # the state it captures.
                if self._recovering:
                    self._apply_reannouncements(ck_at)
                    if ck_at >= self._window_end:
                        self._close_window(self._window_end)
                result.overhead.checkpoint_time += checkpointer.take(
                    self.index, ck_at
                )
                result.checkpoint_bytes_written = checkpointer.bytes_written
            else:
                faults.pop()
                self._handle_crash(crash_at)
                crashed = True
        if self._recovering:
            self._apply_reannouncements(t)
            if t >= self._window_end:
                self._close_window(self._window_end)
            else:
                result.degraded_window_requests += 1
        return crashed

    def _handle_crash(self, tc: float) -> None:
        """Cold-restart the proxy at virtual time *tc*.

        The proxy cache empties; the in-memory index is destroyed, the
        last checkpoint (if any) restored, and every client with a
        non-empty browser cache is scheduled to re-announce its
        contents at ``config.reannounce_rate`` announcements/second.
        Until the last announcement lands the run is *degraded*.
        """
        result = self.result
        result.proxy_crashes += 1
        if self._recovering:
            # A crash preempted the previous rebuild: land what was
            # announced before the lights went out, then close early.
            self._apply_reannouncements(tc)
            self._close_window(tc)
        if self.proxy is not None:
            self.proxy.clear()
        if self.index is None:
            return
        old = self.index
        self._prior_stats = self._prior_stats.merged(old.stats)
        self._prior_lookups += old.n_lookups
        self._prior_update_messages += old.update_messages
        self.index = self._new_index(old.n_clients)
        if self._checkpointer is not None:
            snapshot = self._checkpointer.latest()
            if snapshot is not None:
                self.index.restore_snapshot(snapshot.payload)
                result.overhead.checkpoint_time += self._checkpointer.restore_time()
            self._checkpointer.reset_after_crash(tc)
        rate = self.config.reannounce_rate
        announcers = [
            cid for cid, cache in enumerate(self.browsers) if len(cache) > 0
        ]
        self._pending_reannounce = [
            (tc + (i + 1) / rate, cid) for i, cid in enumerate(announcers)
        ]
        self._reannounce_pos = 0
        self._recovering = True
        self._window_start = tc
        if self._pending_reannounce:
            self._window_end = self._pending_reannounce[-1][0]
        else:
            # Nothing to rebuild from: recovery completes instantly.
            self._window_end = tc
            self._close_window(tc)

    def _apply_reannouncements(self, t: float) -> None:
        """Land every scheduled re-announcement due by time *t*.

        Contents are read at processing time; browser caches only
        change at requests, so this equals the contents at the due
        instant as long as events are processed before the request is
        served (which :meth:`_advance_recovery` guarantees).
        """
        pending = self._pending_reannounce
        pos = self._reannounce_pos
        ttl = self.config.index_entry_ttl
        while pos < len(pending) and pending[pos][0] <= t:
            due, cid = pending[pos]
            cache = self.browsers[cid]
            items = []
            for doc in cache:
                entry = cache.peek(doc)
                items.append((doc, entry.version, entry.size))
            self.index.reannounce(cid, items, due, ttl=ttl)
            pos += 1
        self._reannounce_pos = pos

    def _close_window(self, end: float) -> None:
        self.result.recovery_time += end - self._window_start
        self._recovering = False

    # -- the replay loop ----------------------------------------------------

    def run(self) -> SimulationResult:
        """Replay the whole trace; returns the accumulated result.

        With ``config.consistency`` set the replay honours
        expiration-based coherence (stale deliveries, validations);
        otherwise the paper's perfect-coherence fast path runs.  With a
        profile attached the instrumented (but result-identical) loop
        variants run instead.
        """
        profile = self.profile
        if profile is None:
            if self.config.consistency is not None:
                return self._run_coherent()
            return self._run_fast()
        t0 = perf_counter()
        if self.config.consistency is not None:
            result = self._run_coherent_profiled()
        else:
            result = self._run_fast_profiled()
        profile.wall_seconds += perf_counter() - t0
        profile.n_requests += result.n_requests
        return result

    def _run_fast(self) -> SimulationResult:
        features = self.features
        config = self.config
        result = self.result
        browsers = self.browsers
        proxy = self.proxy
        index = self.index

        # Hoisted feature/config reads — loop-invariant.
        tiered = self._tiered
        has_browsers = features.has_browsers
        caches_remote = features.caches_remote_fetches
        cache_remote_at_proxy = config.cache_remote_hits_at_proxy

        # Inlined timing models.  The arithmetic below replicates
        # EthernetModel.transfer_time, WANModel.fetch_time, and
        # MemoryDiskModel.{memory,disk}_time operation-for-operation so
        # the accumulated floats are bit-identical to the method calls.
        lan = config.lan
        wan = config.wan
        storage = config.storage
        lan_setup = lan.connection_setup
        lan_bw = lan.bandwidth_bps
        wan_setup = wan.connection_setup
        wan_bw = wan.bandwidth_bps
        mem_block = storage.memory_block_bytes
        mem_bt = storage.memory_block_time
        disk_page = storage.disk_page_bytes
        disk_pt = storage.disk_page_time
        BITS = BITS_PER_BYTE

        # Precomputed per-client handles (plain caches only; the tiered
        # model keeps the uniform _get wrapper).
        self_get = self._get
        browser_gets = (
            [b.get for b in browsers] if has_browsers and not tiered else None
        )
        # Inlined _browser_put (plain caches): per-client bound `put`s
        # and direct entry-table views for the membership probes, plus
        # the index event methods bound once (rebound after a crash).
        browser_puts = (
            [b.put for b in browsers] if has_browsers and not tiered else None
        )
        browser_entries = (
            [b._entries for b in browsers] if has_browsers and not tiered else None
        )
        # LRU probes bypass the Python-level Cache.get frame entirely:
        # the merged-OrderedDict layout makes a probe one C-level
        # dict.get plus (on residency) one C-level move_to_end — the
        # exact semantics of LRUCache.get.
        lru_b = browser_entries is not None and config.browser_policy == "lru"
        lru_p = proxy is not None and not tiered and config.proxy_policy == "lru"
        proxy_entries = proxy._entries if lru_p else None
        # Where no eviction hook can fire, LRUCache.put itself is
        # inlined at the populate sites below: browser caches only get
        # an ``on_evict`` when an index exists (evictions must then be
        # reported), and the proxy cache never gets one.
        inline_bput = lru_b and index is None
        index_ttl = config.index_entry_ttl
        record_insert = index.record_insert if index is not None else None
        record_evict = index.record_evict if index is not None else None
        # Inlined _remote_delivery: the lookup (and its far more common
        # miss outcome) runs in the loop; only an index hit pays the
        # _failover_deliver call.
        index_lookup = self._guarded_lookup_fn(index) if index is not None else None
        index_stale = index.is_stale if index is not None else False
        failover = self._failover_deliver
        truth_holds = self._truth_holds
        proxy_get = proxy.get if proxy is not None and not tiered else None
        proxy_put = proxy.put if proxy is not None else None
        browser_put = self._browser_put
        security = self._security
        sec_transfer = security.transfer_cost if security is not None else None
        recovery = (
            self._advance_recovery
            if self._fault_schedule is not None or self._checkpointer is not None
            else None
        )

        # Batched counters: accumulated locally, flushed into the result
        # once after the loop.  Each target field is written *only* by
        # this loop and starts at zero, so a single flush of locals
        # accumulated in request order is bit-identical to per-request
        # `+=` on the field itself.
        n_requests = 0
        total_bytes = 0
        lb_hits = lb_bytes = lb_mem_hits = lb_mem_bytes = lb_disk_hits = lb_disk_bytes = 0
        px_hits = px_bytes = px_mem_hits = px_mem_bytes = px_disk_hits = px_disk_bytes = 0
        rb_hits = rb_bytes = rb_mem_hits = rb_mem_bytes = rb_disk_hits = rb_disk_bytes = 0
        og_misses = og_bytes = 0
        local_hit_time = 0.0
        proxy_hit_time = 0.0
        origin_miss_time = 0.0
        remote_storage_time = 0.0
        security_time = 0.0
        peak_entries = result.index_peak_entries
        peak_footprint = result.index_peak_footprint_bytes

        monitor = self._monitor

        for t, c, d, s, v in self.trace.iter_rows():
            if recovery is not None and recovery(t):
                # a crash replaced the proxy/index objects
                proxy = self.proxy
                index = self.index
                proxy_get = proxy.get if proxy is not None and not tiered else None
                proxy_put = proxy.put if proxy is not None else None
                record_insert = index.record_insert if index is not None else None
                record_evict = index.record_evict if index is not None else None
                index_lookup = self._guarded_lookup_fn(index) if index is not None else None
                index_stale = index.is_stale if index is not None else False
                proxy_entries = proxy._entries if lru_p else None
            if monitor is not None:
                # Conservation is checked from the loop's batched local
                # tallies (the result's per-location counters flush
                # only at the end); ledger/gate laws read live state.
                monitor.tick_fast(
                    result, n_requests, lb_hits + px_hits + rb_hits, og_misses
                )

            # 1. local browser cache
            if has_browsers:
                if lru_b:
                    bce = browser_entries[c]
                    entry = bce.get(d)
                    if entry is not None:
                        bce.move_to_end(d)
                        if entry.version == v:
                            n_requests += 1
                            total_bytes += s
                            lb_hits += 1
                            lb_bytes += s
                            local_hit_time += -(-s // disk_page) * disk_pt
                            continue
                else:
                    if tiered:
                        entry, memory = self_get(browsers[c], d)
                    else:
                        entry = browser_gets[c](d)
                        memory = None
                    if entry is not None and entry.version == v:
                        n_requests += 1
                        total_bytes += s
                        lb_hits += 1
                        lb_bytes += s
                        if memory is None:
                            local_hit_time += -(-s // disk_page) * disk_pt
                        elif memory:
                            lb_mem_hits += 1
                            lb_mem_bytes += s
                            local_hit_time += -(-s // mem_block) * mem_bt
                        else:
                            lb_disk_hits += 1
                            lb_disk_bytes += s
                            local_hit_time += -(-s // disk_page) * disk_pt
                        continue

            # 2. proxy cache
            if proxy is not None:
                if lru_p:
                    entry = proxy_entries.get(d)
                    if entry is not None:
                        proxy_entries.move_to_end(d)
                        if entry.version == v:
                            n_requests += 1
                            total_bytes += s
                            px_hits += 1
                            px_bytes += s
                            proxy_hit_time += -(-s // disk_page) * disk_pt + (
                                lan_setup + s * BITS / lan_bw
                            )
                            if has_browsers:
                                # inlined _browser_put
                                if inline_bput:
                                    # inlined LRUCache.put (no evict hook)
                                    bcache = browsers[c]
                                    bce = browser_entries[c]
                                    old = bce.get(d)
                                    if old is not None:
                                        bused = bcache.used + s - old.size
                                        old.size = s
                                        old.version = v
                                        bce.move_to_end(d)
                                    elif s <= bcache.capacity:
                                        bce[d] = CacheEntry(d, s, v)
                                        bused = bcache.used + s
                                    else:
                                        bused = -1  # refused: no change
                                    if bused >= 0:
                                        cap = bcache.capacity
                                        if bused <= cap:
                                            bcache.used = bused
                                        else:
                                            while bused > cap:
                                                victim = None
                                                for k in bce:
                                                    if k != d:
                                                        victim = k
                                                        break
                                                if victim is None:
                                                    bused -= bce.pop(d).size
                                                    break
                                                bused -= bce.pop(victim).size
                                            bcache.used = bused
                                elif record_insert is None:
                                    browser_puts[c](d, s, v)
                                else:
                                    bce = browser_entries[c]
                                    already = d in bce
                                    self._now = t
                                    browser_puts[c](d, s, v)
                                    if d in bce:
                                        record_insert(c, d, v, s, t, index_ttl, already)
                                    elif already:
                                        record_evict(c, d, t)
                            continue
                else:
                    if tiered:
                        entry, memory = self_get(proxy, d)
                    else:
                        entry = proxy_get(d)
                        memory = None
                    if entry is not None and entry.version == v:
                        n_requests += 1
                        total_bytes += s
                        px_hits += 1
                        px_bytes += s
                        if memory is None:
                            stime = -(-s // disk_page) * disk_pt
                        elif memory:
                            px_mem_hits += 1
                            px_mem_bytes += s
                            stime = -(-s // mem_block) * mem_bt
                        else:
                            px_disk_hits += 1
                            px_disk_bytes += s
                            stime = -(-s // disk_page) * disk_pt
                        proxy_hit_time += stime + (lan_setup + s * BITS / lan_bw)
                        if has_browsers:
                            # inlined _browser_put
                            if inline_bput:
                                # inlined LRUCache.put (no evict hook)
                                bcache = browsers[c]
                                bce = browser_entries[c]
                                old = bce.get(d)
                                if old is not None:
                                    bused = bcache.used + s - old.size
                                    old.size = s
                                    old.version = v
                                    bce.move_to_end(d)
                                elif s <= bcache.capacity:
                                    bce[d] = CacheEntry(d, s, v)
                                    bused = bcache.used + s
                                else:
                                    bused = -1  # refused: no change
                                if bused >= 0:
                                    cap = bcache.capacity
                                    if bused <= cap:
                                        bcache.used = bused
                                    else:
                                        while bused > cap:
                                            victim = None
                                            for k in bce:
                                                if k != d:
                                                    victim = k
                                                    break
                                            if victim is None:
                                                bused -= bce.pop(d).size
                                                break
                                            bused -= bce.pop(victim).size
                                        bcache.used = bused
                            elif browser_puts is None:
                                browser_put(c, d, s, v, t)
                            elif record_insert is None:
                                browser_puts[c](d, s, v)
                            else:
                                bce = browser_entries[c]
                                already = d in bce
                                self._now = t
                                browser_puts[c](d, s, v)
                                if d in bce:
                                    record_insert(c, d, v, s, t, index_ttl, already)
                                elif already:
                                    record_evict(c, d, t)
                        continue

            # 3. browser index -> remote browser cache (with failover);
            # inlined _remote_delivery lookup-miss fast path
            if index is not None:
                hit = index_lookup(d, c, t, v)
                if hit is None:
                    if recovery is not None and self._recovering:
                        if truth_holds(d, v, c):
                            result.hits_lost_to_recovery += 1
                    elif index_stale and truth_holds(d, v, c):
                        index.record_false_miss()
                    remote_served = False
                else:
                    remote_served, memory = failover(hit, c, d, s, v, t)
                if remote_served:
                    n_requests += 1
                    total_bytes += s
                    rb_hits += 1
                    rb_bytes += s
                    if memory is None:
                        remote_storage_time += -(-s // disk_page) * disk_pt
                    elif memory:
                        rb_mem_hits += 1
                        rb_mem_bytes += s
                        remote_storage_time += -(-s // mem_block) * mem_bt
                    else:
                        rb_disk_hits += 1
                        rb_disk_bytes += s
                        remote_storage_time += -(-s // disk_page) * disk_pt
                    if sec_transfer is not None:
                        security_time += sec_transfer(s)
                    if caches_remote:
                        # inlined _browser_put
                        if browser_puts is None:
                            browser_put(c, d, s, v, t)
                        else:
                            bce = browser_entries[c]
                            already = d in bce
                            self._now = t
                            browser_puts[c](d, s, v)
                            if d in bce:
                                record_insert(c, d, v, s, t, index_ttl, already)
                            elif already:
                                record_evict(c, d, t)
                        if cache_remote_at_proxy and proxy_put is not None:
                            proxy_put(d, s, v)
                    n = index.n_entries
                    if n > peak_entries:
                        peak_entries = n
                        peak_footprint = index.footprint_bytes()
                    continue

            # 4. origin server
            n_requests += 1
            total_bytes += s
            og_misses += 1
            og_bytes += s
            origin_miss_time += (wan_setup + s * BITS / wan_bw) + (
                lan_setup + s * BITS / lan_bw
            )
            if lru_p:
                # inlined LRUCache.put (proxy caches have no evict hook)
                old = proxy_entries.get(d)
                if old is not None:
                    pused = proxy.used + s - old.size
                    old.size = s
                    old.version = v
                    proxy_entries.move_to_end(d)
                elif s <= proxy.capacity:
                    proxy_entries[d] = CacheEntry(d, s, v)
                    pused = proxy.used + s
                else:
                    pused = -1  # refused: no change
                if pused >= 0:
                    cap = proxy.capacity
                    if pused <= cap:
                        proxy.used = pused
                    else:
                        while pused > cap:
                            victim = None
                            for k in proxy_entries:
                                if k != d:
                                    victim = k
                                    break
                            if victim is None:
                                pused -= proxy_entries.pop(d).size
                                break
                            pused -= proxy_entries.pop(victim).size
                        proxy.used = pused
            elif proxy_put is not None:
                proxy_put(d, s, v)
            if has_browsers:
                # inlined _browser_put
                if inline_bput:
                    # inlined LRUCache.put (no evict hook)
                    bcache = browsers[c]
                    bce = browser_entries[c]
                    old = bce.get(d)
                    if old is not None:
                        bused = bcache.used + s - old.size
                        old.size = s
                        old.version = v
                        bce.move_to_end(d)
                    elif s <= bcache.capacity:
                        bce[d] = CacheEntry(d, s, v)
                        bused = bcache.used + s
                    else:
                        bused = -1  # refused: no change
                    if bused >= 0:
                        cap = bcache.capacity
                        if bused <= cap:
                            bcache.used = bused
                        else:
                            while bused > cap:
                                victim = None
                                for k in bce:
                                    if k != d:
                                        victim = k
                                        break
                                if victim is None:
                                    bused -= bce.pop(d).size
                                    break
                                bused -= bce.pop(victim).size
                            bcache.used = bused
                elif browser_puts is None:
                    browser_put(c, d, s, v, t)
                elif record_insert is None:
                    browser_puts[c](d, s, v)
                else:
                    bce = browser_entries[c]
                    already = d in bce
                    self._now = t
                    browser_puts[c](d, s, v)
                    if d in bce:
                        record_insert(c, d, v, s, t, index_ttl, already)
                    elif already:
                        record_evict(c, d, t)
            if index is not None:
                n = index.n_entries
                if n > peak_entries:
                    peak_entries = n
                    peak_footprint = index.footprint_bytes()

        # -- flush the batched counters --------------------------------
        overhead = result.overhead
        result.n_requests += n_requests
        result.total_bytes += total_bytes
        by_location = result.by_location
        stats = by_location[HitLocation.LOCAL_BROWSER]
        stats.hits += lb_hits
        stats.hit_bytes += lb_bytes
        stats.memory_hits += lb_mem_hits
        stats.memory_hit_bytes += lb_mem_bytes
        stats.disk_hits += lb_disk_hits
        stats.disk_hit_bytes += lb_disk_bytes
        stats = by_location[HitLocation.PROXY]
        stats.hits += px_hits
        stats.hit_bytes += px_bytes
        stats.memory_hits += px_mem_hits
        stats.memory_hit_bytes += px_mem_bytes
        stats.disk_hits += px_disk_hits
        stats.disk_hit_bytes += px_disk_bytes
        stats = by_location[HitLocation.REMOTE_BROWSER]
        stats.hits += rb_hits
        stats.hit_bytes += rb_bytes
        stats.memory_hits += rb_mem_hits
        stats.memory_hit_bytes += rb_mem_bytes
        stats.disk_hits += rb_disk_hits
        stats.disk_hit_bytes += rb_disk_bytes
        stats = by_location[HitLocation.ORIGIN]
        stats.misses += og_misses
        stats.miss_bytes += og_bytes
        overhead.local_hit_time += local_hit_time
        overhead.proxy_hit_time += proxy_hit_time
        overhead.origin_miss_time += origin_miss_time
        overhead.remote_storage_time += remote_storage_time
        overhead.security_time += security_time
        result.index_peak_entries = peak_entries
        result.index_peak_footprint_bytes = peak_footprint

        return self._finalise()

    # -- coherent replay (expiration-based consistency) ----------------------

    def _run_coherent(self) -> SimulationResult:
        """Replay honouring the configured consistency policy.

        Browser and proxy copies are served without question while
        fresh-by-policy (even if actually outdated: a *stale
        delivery*); once expired they are revalidated against the
        origin (an If-Modified-Since round trip).  A validation that
        finds the document changed receives the new body from the
        origin directly — it does not retry lower cache levels.
        Remote-browser hits still require an exact version match: the
        §6 watermark verification would reject a stale peer copy.
        """
        features = self.features
        config = self.config
        result = self.result
        overhead = result.overhead
        cstats = result.consistency_stats
        browsers = self.browsers
        proxy = self.proxy
        index = self.index
        policy = config.consistency

        tiered = self._tiered
        has_browsers = features.has_browsers
        caches_remote = features.caches_remote_fetches
        cache_remote_at_proxy = config.cache_remote_hits_at_proxy

        lan = config.lan
        wan = config.wan
        storage = config.storage
        lan_setup = lan.connection_setup
        lan_bw = lan.bandwidth_bps
        wan_setup = wan.connection_setup
        wan_bw = wan.bandwidth_bps
        wan_conn = wan.connection_setup
        mem_block = storage.memory_block_bytes
        mem_bt = storage.memory_block_time
        disk_page = storage.disk_page_bytes
        disk_pt = storage.disk_page_time
        BITS = BITS_PER_BYTE

        self_get = self._get
        browser_gets = (
            [b.get for b in browsers] if has_browsers and not tiered else None
        )
        # Inlined _browser_put handles (see _run_fast).
        browser_puts = (
            [b.put for b in browsers] if has_browsers and not tiered else None
        )
        browser_entries = (
            [b._entries for b in browsers] if has_browsers and not tiered else None
        )
        # Direct C-level LRU probes (see _run_fast).
        lru_b = browser_entries is not None and config.browser_policy == "lru"
        lru_p = proxy is not None and not tiered and config.proxy_policy == "lru"
        proxy_entries = proxy._entries if lru_p else None
        index_ttl = config.index_entry_ttl
        record_insert = index.record_insert if index is not None else None
        record_evict = index.record_evict if index is not None else None
        # Inlined _remote_delivery handles (see _run_fast).
        index_lookup = self._guarded_lookup_fn(index) if index is not None else None
        index_stale = index.is_stale if index is not None else False
        failover = self._failover_deliver
        truth_holds = self._truth_holds
        proxy_get = proxy.get if proxy is not None and not tiered else None
        proxy_put = proxy.put if proxy is not None else None
        browser_put = self._browser_put
        security = self._security
        sec_transfer = security.transfer_cost if security is not None else None
        recovery = (
            self._advance_recovery
            if self._fault_schedule is not None or self._checkpointer is not None
            else None
        )
        expires_at = policy.expires_at

        # Batched counters (same flush-once discipline as _run_fast;
        # validation_time and the consistency counters stay direct —
        # they are exclusively written by coherence_action, so order is
        # preserved either way and the closure stays simple).
        n_requests = 0
        total_bytes = 0
        lb_hits = lb_bytes = lb_mem_hits = lb_mem_bytes = lb_disk_hits = lb_disk_bytes = 0
        px_hits = px_bytes = px_mem_hits = px_mem_bytes = px_disk_hits = px_disk_bytes = 0
        rb_hits = rb_bytes = rb_mem_hits = rb_mem_bytes = rb_disk_hits = rb_disk_bytes = 0
        og_misses = og_bytes = 0
        local_hit_time = 0.0
        proxy_hit_time = 0.0
        origin_miss_time = 0.0
        remote_storage_time = 0.0
        security_time = 0.0
        peak_entries = result.index_peak_entries
        peak_footprint = result.index_peak_footprint_bytes

        #: first time each version was observed ~ modification time.
        last_modified: dict[int, float] = {}
        seen_version: dict[int, int] = {}

        def coherence_action(entry, v: int, t: float, last_mod: float) -> str:
            if t <= entry.expires_at:
                return "serve"
            cstats.validations += 1
            overhead.validation_time += wan_conn
            if entry.version == v:
                cstats.validated_hits += 1
                entry.expires_at = expires_at(t, last_mod)
                return "validated"
            cstats.validation_misses += 1
            return "changed"

        def stamp(cache, d: int, t: float, last_mod: float) -> None:
            entry = cache.peek(d)
            if entry is not None:
                entry.expires_at = expires_at(t, last_mod)

        monitor = self._monitor

        for t, c, d, s, v in self.trace.iter_rows():
            if recovery is not None and recovery(t):
                # a crash replaced the proxy/index objects
                proxy = self.proxy
                index = self.index
                proxy_get = proxy.get if proxy is not None and not tiered else None
                proxy_put = proxy.put if proxy is not None else None
                record_insert = index.record_insert if index is not None else None
                record_evict = index.record_evict if index is not None else None
                index_lookup = self._guarded_lookup_fn(index) if index is not None else None
                index_stale = index.is_stale if index is not None else False
                proxy_entries = proxy._entries if lru_p else None
            if monitor is not None:
                # Same batched-locals conservation check as _run_fast.
                monitor.tick_fast(
                    result, n_requests, lb_hits + px_hits + rb_hits, og_misses
                )

            sv = seen_version.get(d)
            if sv is None or v > sv:
                seen_version[d] = v
                last_modified[d] = t
            last_mod = last_modified[d]
            served = False
            go_origin = False

            # 1. local browser cache
            if has_browsers:
                if lru_b:
                    bce = browser_entries[c]
                    entry = bce.get(d)
                    if entry is not None:
                        bce.move_to_end(d)
                    memory = None
                elif tiered:
                    entry, memory = self_get(browsers[c], d)
                else:
                    entry = browser_gets[c](d)
                    memory = None
                if entry is not None:
                    action = coherence_action(entry, v, t, last_mod)
                    if action == "serve" or action == "validated":
                        if action == "serve" and entry.version != v:
                            cstats.stale_deliveries += 1
                            cstats.stale_bytes += s
                        n_requests += 1
                        total_bytes += s
                        lb_hits += 1
                        lb_bytes += s
                        if memory is None:
                            local_hit_time += -(-s // disk_page) * disk_pt
                        elif memory:
                            lb_mem_hits += 1
                            lb_mem_bytes += s
                            local_hit_time += -(-s // mem_block) * mem_bt
                        else:
                            lb_disk_hits += 1
                            lb_disk_bytes += s
                            local_hit_time += -(-s // disk_page) * disk_pt
                        served = True
                    elif action == "changed":
                        go_origin = True

            # 2. proxy cache
            if not served and not go_origin and proxy is not None:
                if lru_p:
                    entry = proxy_entries.get(d)
                    if entry is not None:
                        proxy_entries.move_to_end(d)
                    memory = None
                elif tiered:
                    entry, memory = self_get(proxy, d)
                else:
                    entry = proxy_get(d)
                    memory = None
                if entry is not None:
                    action = coherence_action(entry, v, t, last_mod)
                    if action == "serve" or action == "validated":
                        if action == "serve" and entry.version != v:
                            cstats.stale_deliveries += 1
                            cstats.stale_bytes += s
                        n_requests += 1
                        total_bytes += s
                        px_hits += 1
                        px_bytes += s
                        if memory is None:
                            stime = -(-s // disk_page) * disk_pt
                        elif memory:
                            px_mem_hits += 1
                            px_mem_bytes += s
                            stime = -(-s // mem_block) * mem_bt
                        else:
                            px_disk_hits += 1
                            px_disk_bytes += s
                            stime = -(-s // disk_page) * disk_pt
                        proxy_hit_time += stime + (lan_setup + s * BITS / lan_bw)
                        if has_browsers:
                            ev = entry.version
                            # inlined _browser_put
                            if browser_puts is None:
                                browser_put(c, d, s, ev, t)
                            elif record_insert is None:
                                browser_puts[c](d, s, ev)
                            else:
                                bce = browser_entries[c]
                                already = d in bce
                                self._now = t
                                browser_puts[c](d, s, ev)
                                if d in bce:
                                    record_insert(c, d, ev, s, t, index_ttl, already)
                                elif already:
                                    record_evict(c, d, t)
                            stamp(browsers[c], d, t, last_mod)
                        served = True
                    elif action == "changed":
                        go_origin = True

            # 3. browser index -> remote browser cache (exact match only,
            #    with failover); inlined _remote_delivery fast path
            if not served and not go_origin and index is not None:
                hit = index_lookup(d, c, t, v)
                if hit is None:
                    if recovery is not None and self._recovering:
                        if truth_holds(d, v, c):
                            result.hits_lost_to_recovery += 1
                    elif index_stale and truth_holds(d, v, c):
                        index.record_false_miss()
                    remote_served = False
                else:
                    remote_served, memory = failover(hit, c, d, s, v, t)
                if remote_served:
                    n_requests += 1
                    total_bytes += s
                    rb_hits += 1
                    rb_bytes += s
                    if memory is None:
                        remote_storage_time += -(-s // disk_page) * disk_pt
                    elif memory:
                        rb_mem_hits += 1
                        rb_mem_bytes += s
                        remote_storage_time += -(-s // mem_block) * mem_bt
                    else:
                        rb_disk_hits += 1
                        rb_disk_bytes += s
                        remote_storage_time += -(-s // disk_page) * disk_pt
                    if sec_transfer is not None:
                        security_time += sec_transfer(s)
                    if caches_remote:
                        # inlined _browser_put
                        if browser_puts is None:
                            browser_put(c, d, s, v, t)
                        else:
                            bce = browser_entries[c]
                            already = d in bce
                            self._now = t
                            browser_puts[c](d, s, v)
                            if d in bce:
                                record_insert(c, d, v, s, t, index_ttl, already)
                            elif already:
                                record_evict(c, d, t)
                        stamp(browsers[c], d, t, last_mod)
                        if cache_remote_at_proxy and proxy_put is not None:
                            proxy_put(d, s, v)
                            stamp(proxy, d, t, last_mod)
                    served = True
                    n = index.n_entries
                    if n > peak_entries:
                        peak_entries = n
                        peak_footprint = index.footprint_bytes()

            # 4. origin server
            if not served:
                n_requests += 1
                total_bytes += s
                og_misses += 1
                og_bytes += s
                origin_miss_time += (wan_setup + s * BITS / wan_bw) + (
                    lan_setup + s * BITS / lan_bw
                )
                if proxy_put is not None:
                    proxy_put(d, s, v)
                    stamp(proxy, d, t, last_mod)
                if has_browsers:
                    # inlined _browser_put
                    if browser_puts is None:
                        browser_put(c, d, s, v, t)
                    elif record_insert is None:
                        browser_puts[c](d, s, v)
                    else:
                        bce = browser_entries[c]
                        already = d in bce
                        self._now = t
                        browser_puts[c](d, s, v)
                        if d in bce:
                            record_insert(c, d, v, s, t, index_ttl, already)
                        elif already:
                            record_evict(c, d, t)
                    stamp(browsers[c], d, t, last_mod)
                if index is not None:
                    n = index.n_entries
                    if n > peak_entries:
                        peak_entries = n
                        peak_footprint = index.footprint_bytes()

        # -- flush the batched counters --------------------------------
        result.n_requests += n_requests
        result.total_bytes += total_bytes
        by_location = result.by_location
        stats = by_location[HitLocation.LOCAL_BROWSER]
        stats.hits += lb_hits
        stats.hit_bytes += lb_bytes
        stats.memory_hits += lb_mem_hits
        stats.memory_hit_bytes += lb_mem_bytes
        stats.disk_hits += lb_disk_hits
        stats.disk_hit_bytes += lb_disk_bytes
        stats = by_location[HitLocation.PROXY]
        stats.hits += px_hits
        stats.hit_bytes += px_bytes
        stats.memory_hits += px_mem_hits
        stats.memory_hit_bytes += px_mem_bytes
        stats.disk_hits += px_disk_hits
        stats.disk_hit_bytes += px_disk_bytes
        stats = by_location[HitLocation.REMOTE_BROWSER]
        stats.hits += rb_hits
        stats.hit_bytes += rb_bytes
        stats.memory_hits += rb_mem_hits
        stats.memory_hit_bytes += rb_mem_bytes
        stats.disk_hits += rb_disk_hits
        stats.disk_hit_bytes += rb_disk_bytes
        stats = by_location[HitLocation.ORIGIN]
        stats.misses += og_misses
        stats.miss_bytes += og_bytes
        overhead.local_hit_time += local_hit_time
        overhead.proxy_hit_time += proxy_hit_time
        overhead.origin_miss_time += origin_miss_time
        overhead.remote_storage_time += remote_storage_time
        overhead.security_time += security_time
        result.index_peak_entries = peak_entries
        result.index_peak_footprint_bytes = peak_footprint

        return self._finalise()

    # -- instrumented loop variants ------------------------------------------

    def _run_fast_profiled(self) -> SimulationResult:
        """The fast loop with per-phase timers (results bit-identical).

        Written in the straight-line style of the reference engine —
        direct counter updates in request order produce the same float
        accumulation sequence as the batched fast path, so only the
        wall-clock observation differs.
        """
        features = self.features
        config = self.config
        result = self.result
        overhead = result.overhead
        browsers = self.browsers
        proxy = self.proxy
        index = self.index
        lan = config.lan
        wan = config.wan
        prof = self.profile
        pc = perf_counter
        security = self._security
        recovery = (
            self._advance_recovery
            if self._fault_schedule is not None or self._checkpointer is not None
            else None
        )

        for t, c, d, s, v in self.trace.iter_rows():
            if recovery is not None:
                t0 = pc()
                crashed = recovery(t)
                prof.add("recovery", pc() - t0)
                if crashed:
                    proxy = self.proxy
                    index = self.index

            # 1. local browser cache
            if features.has_browsers:
                t0 = pc()
                entry, memory = self._get(browsers[c], d)
                hit = entry is not None and entry.version == v
                if hit:
                    result.record(HitLocation.LOCAL_BROWSER, s, memory)
                    overhead.local_hit_time += self._storage_time(s, memory)
                prof.add("browser_probe", pc() - t0)
                if hit:
                    continue

            # 2. proxy cache
            if proxy is not None:
                t0 = pc()
                entry, memory = self._get(proxy, d)
                hit = entry is not None and entry.version == v
                if hit:
                    result.record(HitLocation.PROXY, s, memory)
                    overhead.proxy_hit_time += self._storage_time(
                        s, memory
                    ) + lan.transfer_time(s)
                    if features.has_browsers:
                        self._browser_put(c, d, s, v, t)
                prof.add("proxy_probe", pc() - t0)
                if hit:
                    continue

            # 3. browser index -> remote browser cache (with failover)
            if index is not None:
                t0 = pc()
                remote_served, memory = self._remote_delivery(c, d, s, v, t, prof=prof)
                if remote_served:
                    result.record(HitLocation.REMOTE_BROWSER, s, memory)
                    overhead.remote_storage_time += self._storage_time(s, memory)
                    if security is not None:
                        overhead.security_time += security.transfer_cost(s)
                    if features.caches_remote_fetches:
                        self._browser_put(c, d, s, v, t)
                        if config.cache_remote_hits_at_proxy and proxy is not None:
                            proxy.put(d, s, v)
                    self._track_index_peak()
                prof.add("remote_delivery", pc() - t0)
                if remote_served:
                    continue

            # 4. origin server
            t0 = pc()
            result.record(HitLocation.ORIGIN, s)
            overhead.origin_miss_time += wan.fetch_time(s) + lan.transfer_time(s)
            if proxy is not None:
                proxy.put(d, s, v)
            if features.has_browsers:
                self._browser_put(c, d, s, v, t)
            if index is not None:
                self._track_index_peak()
            prof.add("origin_fetch", pc() - t0)

        return self._finalise()

    def _run_coherent_profiled(self) -> SimulationResult:
        """The coherent loop with per-phase timers (results identical)."""
        features = self.features
        config = self.config
        result = self.result
        overhead = result.overhead
        cstats = result.consistency_stats
        browsers = self.browsers
        proxy = self.proxy
        index = self.index
        lan = config.lan
        wan = config.wan
        policy = config.consistency
        prof = self.profile
        pc = perf_counter
        security = self._security
        recovery = (
            self._advance_recovery
            if self._fault_schedule is not None or self._checkpointer is not None
            else None
        )

        last_modified: dict[int, float] = {}
        seen_version: dict[int, int] = {}

        def coherence_action(entry, v: int, t: float, last_mod: float) -> str:
            if t <= entry.expires_at:
                return "serve"
            cstats.validations += 1
            overhead.validation_time += wan.connection_setup
            if entry.version == v:
                cstats.validated_hits += 1
                entry.expires_at = policy.expires_at(t, last_mod)
                return "validated"
            cstats.validation_misses += 1
            return "changed"

        def stamp(cache, d: int, t: float, last_mod: float) -> None:
            entry = cache.peek(d)
            if entry is not None:
                entry.expires_at = policy.expires_at(t, last_mod)

        for t, c, d, s, v in self.trace.iter_rows():
            if recovery is not None:
                t0 = pc()
                crashed = recovery(t)
                prof.add("recovery", pc() - t0)
                if crashed:
                    proxy = self.proxy
                    index = self.index

            sv = seen_version.get(d)
            if sv is None or v > sv:
                seen_version[d] = v
                last_modified[d] = t
            last_mod = last_modified[d]
            served = False
            go_origin = False

            # 1. local browser cache
            if features.has_browsers:
                t0 = pc()
                entry, memory = self._get(browsers[c], d)
                if entry is not None:
                    action = coherence_action(entry, v, t, last_mod)
                    if action in ("serve", "validated"):
                        if action == "serve" and entry.version != v:
                            cstats.stale_deliveries += 1
                            cstats.stale_bytes += s
                        result.record(HitLocation.LOCAL_BROWSER, s, memory)
                        overhead.local_hit_time += self._storage_time(s, memory)
                        served = True
                    elif action == "changed":
                        go_origin = True
                prof.add("browser_probe", pc() - t0)

            # 2. proxy cache
            if not served and not go_origin and proxy is not None:
                t0 = pc()
                entry, memory = self._get(proxy, d)
                if entry is not None:
                    action = coherence_action(entry, v, t, last_mod)
                    if action in ("serve", "validated"):
                        if action == "serve" and entry.version != v:
                            cstats.stale_deliveries += 1
                            cstats.stale_bytes += s
                        result.record(HitLocation.PROXY, s, memory)
                        overhead.proxy_hit_time += self._storage_time(
                            s, memory
                        ) + lan.transfer_time(s)
                        if features.has_browsers:
                            self._browser_put(c, d, s, entry.version, t)
                            stamp(browsers[c], d, t, last_mod)
                        served = True
                    elif action == "changed":
                        go_origin = True
                prof.add("proxy_probe", pc() - t0)

            # 3. browser index -> remote browser cache (exact match only,
            #    with failover)
            if not served and not go_origin and index is not None:
                t0 = pc()
                remote_served, memory = self._remote_delivery(c, d, s, v, t, prof=prof)
                if remote_served:
                    result.record(HitLocation.REMOTE_BROWSER, s, memory)
                    overhead.remote_storage_time += self._storage_time(s, memory)
                    if security is not None:
                        overhead.security_time += security.transfer_cost(s)
                    if features.caches_remote_fetches:
                        self._browser_put(c, d, s, v, t)
                        stamp(browsers[c], d, t, last_mod)
                        if config.cache_remote_hits_at_proxy and proxy is not None:
                            proxy.put(d, s, v)
                            stamp(proxy, d, t, last_mod)
                    served = True
                    self._track_index_peak()
                prof.add("remote_delivery", pc() - t0)

            # 4. origin server
            if not served:
                t0 = pc()
                result.record(HitLocation.ORIGIN, s)
                overhead.origin_miss_time += wan.fetch_time(s) + lan.transfer_time(s)
                if proxy is not None:
                    proxy.put(d, s, v)
                    stamp(proxy, d, t, last_mod)
                if features.has_browsers:
                    self._browser_put(c, d, s, v, t)
                    stamp(browsers[c], d, t, last_mod)
                if index is not None:
                    self._track_index_peak()
                prof.add("origin_fetch", pc() - t0)

        return self._finalise()

    def _truth_holds(self, doc: int, version: int, exclude: int) -> bool:
        """Does any other browser actually hold (doc, version)?"""
        for cid, cache in enumerate(self.browsers):
            if cid == exclude:
                continue
            held = cache.peek(doc)
            if held is not None and held.version == version:
                return True
        return False

    def _track_index_peak(self) -> None:
        n = self.index.n_entries
        if n > self.result.index_peak_entries:
            self.result.index_peak_entries = n
            self.result.index_peak_footprint_bytes = self.index.footprint_bytes()

    def _finalise(self) -> SimulationResult:
        result = self.result
        result.overhead.absorb_bus(self.bus.stats)
        if self._recovering:
            # The trace ended mid-rebuild: the degraded window ran to
            # the last request, not to the never-reached window end.
            self._close_window(self._last_t)
        if self.index is not None:
            stats = self.index.stats
            lookups = self.index.n_lookups
            messages = self.index.update_messages
            if self._fault_schedule is not None:
                # Fold in the generations destroyed by crashes.
                stats = self._prior_stats.merged(stats)
                lookups += self._prior_lookups
                messages += self._prior_update_messages
            result.index_stats = stats
            result.index_lookups = lookups
            result.overhead.index_update_messages = messages
        if self._checkpointer is not None:
            result.checkpoint_bytes_written = self._checkpointer.bytes_written
        if self._monitor is not None:
            self._monitor.check_final(result)
        return result


def simulate(
    trace: Trace,
    organization: Organization,
    config: SimulationConfig,
    profile: ReplayProfile | None = None,
) -> SimulationResult:
    """Convenience one-shot: build a :class:`Simulator` and run it.

    ``profile`` (a :class:`~repro.util.profiling.ReplayProfile`) opts
    into the instrumented loops; results are bit-identical either way.

    With ``config.federation`` set the replay dispatches to the
    cooperative multi-proxy engine (:mod:`repro.federation.engine`)
    instead — same entry point, so sweeps, the journal, and the
    process-pool workers need no federation-specific wiring.  The
    federated loop is straight-line (no instrumented variant);
    ``profile`` still accumulates wall clock and request counts.
    """
    if config.federation is not None:
        # Imported lazily: repro.federation imports this module.
        from repro.federation.engine import FederatedSimulator

        if profile is None:
            return FederatedSimulator(trace, organization, config).run()
        t0 = perf_counter()
        result = FederatedSimulator(trace, organization, config).run()
        profile.wall_seconds += perf_counter() - t0
        profile.n_requests += result.n_requests
        return result
    return Simulator(trace, organization, config, profile=profile).run()
