"""The trace-driven simulation engine.

Replays a :class:`~repro.traces.record.Trace` through one of the five
caching organizations and produces a
:class:`~repro.core.metrics.SimulationResult`.

Request path (matching paper §2/§3.2):

1. the requesting client's **browser cache** (if the organization has
   browser caches) — a resident copy with a stale version counts as a
   miss, per the paper's size-change rule;
2. the **proxy cache** (if present); a proxy hit also populates the
   requesting browser;
3. the **browser index** (if present) — on an index hit the document is
   validated against the *true* holder cache (a stale index yields a
   false hit, which costs a wasted round trip), then transferred over
   the shared LAN bus; BAPS caches the document at the requesting
   browser, global-browsers-cache-only does not.  Delivery is
   *resilient*: when the chosen holder is offline (Bernoulli or
   session-based churn), stale, or serves a transfer that fails the §6
   integrity check, up to ``config.max_holder_retries`` further
   replicas from the index's candidate list are probed — each failed
   probe charging a wasted LAN round trip — before the request
   escalates;
4. otherwise the **origin server** over the WAN; the response populates
   the proxy and/or the browser per organization.

Every leg is priced by the §4.2/§5 timing models into the result's
:class:`~repro.core.overhead.OverheadReport`.
"""

from __future__ import annotations

import random

from repro.cache import TieredLRUCache, make_cache
from repro.core.churn import ChurnProcess
from repro.core.config import SimulationConfig
from repro.core.events import HitLocation
from repro.core.metrics import SimulationResult
from repro.core.overhead import OverheadReport
from repro.core.policies import Organization
from repro.core.proxy_faults import ProxyFaultSchedule
from repro.index.browser_index import BrowserIndex, UpdateMode
from repro.index.checkpoint import IndexCheckpointer
from repro.index.engine_bloom import BloomBrowserIndex
from repro.index.staleness import StalenessStats
from repro.network.ethernet import SharedBus
from repro.network.latency import AccessKind
from repro.security.protocols import SecurityOverheadModel
from repro.traces.record import Trace
from repro.util.rng import derive_seed

__all__ = ["Simulator", "simulate"]


class Simulator:
    """One organization, one configuration, one trace replay."""

    def __init__(
        self,
        trace: Trace,
        organization: Organization,
        config: SimulationConfig,
    ) -> None:
        self.trace = trace
        self.organization = organization
        self.config = config
        self.features = organization.features
        if config.memory_fraction is not None and (
            config.browser_policy != "lru" or config.proxy_policy != "lru"
        ):
            raise ValueError("the tiered memory model supports only LRU caches")

        # Client ids index per-client state directly, so size arrays by
        # the highest id (ids may be sparse in filtered traces).
        n_clients = int(trace.clients.max()) + 1 if len(trace) else 1
        self._tiered = config.memory_fraction is not None

        browser_mem = (
            config.browser_memory_fraction
            if config.browser_memory_fraction is not None
            else config.memory_fraction
        )
        if self.features.has_browsers:
            capacities = self._browser_capacities(n_clients)
            self.browsers = [
                self._new_cache(config.browser_policy, capacities[c], browser_mem)
                for c in range(n_clients)
            ]
        else:
            self.browsers = []

        self.proxy = (
            self._new_cache(config.proxy_policy, config.proxy_capacity, config.memory_fraction)
            if self.features.has_proxy
            else None
        )

        if self.features.has_index:
            self.index = self._new_index(n_clients)
            self._now = 0.0
            for cid, cache in enumerate(self.browsers):
                cache.on_evict = self._make_evict_hook(cid)
        else:
            self.index = None

        self._churn = (
            ChurnProcess(config.churn, seed=config.availability_seed)
            if config.churn is not None
            else None
        )
        if self._churn is None and config.holder_availability < 1.0:
            self._avail_rng = random.Random(config.availability_seed)
        else:
            self._avail_rng = None
        self._corrupt_rng = (
            random.Random(derive_seed(config.availability_seed, "integrity"))
            if config.corruption_rate > 0.0
            else None
        )
        # A nonzero corruption rate implies the §6 integrity machinery
        # is active: price it even when no explicit model was given.
        self._security = config.security
        if self._security is None and config.corruption_rate > 0.0:
            self._security = SecurityOverheadModel()

        # Proxy crash recovery.  Nothing below constructs an RNG unless
        # a rate-based fault model is actually configured; the default
        # (always-up proxy) leaves the replay loops untouched.
        self._fault_schedule = (
            ProxyFaultSchedule(config.proxy_faults, seed=config.availability_seed)
            if config.proxy_faults is not None
            and (self.features.has_proxy or self.features.has_index)
            else None
        )
        self._checkpointer = (
            IndexCheckpointer(config.checkpoint)
            if config.checkpoint is not None and self.features.has_index
            else None
        )
        self._recovering = False
        self._window_start = 0.0
        self._window_end = 0.0
        #: (due time, client) re-announcements of the open window, ascending.
        self._pending_reannounce: list[tuple[float, int]] = []
        self._reannounce_pos = 0
        self._last_t = 0.0
        # Index counters accumulated from generations destroyed by
        # crashes; _finalise folds them into the final result.
        self._prior_stats = StalenessStats()
        self._prior_lookups = 0
        self._prior_update_messages = 0

        self.bus = SharedBus(config.lan)
        self.result = SimulationResult(
            trace_name=trace.name,
            organization=organization.value,
            uses_memory_tier=self._tiered,
        )

    # -- construction helpers ------------------------------------------------

    def _browser_capacities(self, n_clients: int) -> list[int]:
        caps = self.config.browser_capacities
        if caps is None:
            return [self.config.browser_capacity] * n_clients
        if len(caps) < n_clients:
            raise ValueError(
                f"browser_capacities covers {len(caps)} clients but the trace "
                f"has {n_clients}"
            )
        return list(caps[:n_clients])

    def _new_cache(self, policy: str, capacity: int, memory_fraction: float | None):
        if self._tiered:
            return TieredLRUCache(capacity, memory_fraction)
        return make_cache(policy, capacity)

    def _new_index(self, n_clients: int):
        config = self.config
        if config.index_kind == "bloom":
            avg_doc = max(1, int(self.trace.sizes.mean())) if len(self.trace) else 1
            # Size filters from the capacities actually deployed: with
            # heterogeneous ``browser_capacities`` the uniform
            # ``browser_capacity`` may be wildly off, skewing the bloom
            # false-positive rate for fig-8-style runs.
            capacities = self._browser_capacities(n_clients)
            mean_capacity = (
                int(sum(capacities) / len(capacities))
                if capacities
                else config.browser_capacity
            )
            expected = max(8, mean_capacity // avg_doc)
            return BloomBrowserIndex(
                n_clients,
                expected_docs_per_client=expected,
                bits_per_doc=config.bloom_bits_per_doc,
                rebuild_threshold=config.bloom_rebuild_threshold,
            )
        if config.index_update_policy is None:
            return BrowserIndex(n_clients, UpdateMode.INVALIDATION)
        return BrowserIndex(
            n_clients, UpdateMode.PERIODIC, policy=config.index_update_policy
        )

    def _make_evict_hook(self, client: int):
        def hook(doc: int) -> None:
            self.index.record_evict(client, doc, self._now)

        return hook

    # -- cache access helpers (uniform over plain / tiered caches) ----------

    def _get(self, cache, key: int):
        """Returns ``(entry, served_from_memory: bool | None)``."""
        if self._tiered:
            entry, tier = cache.get(key)
            if entry is None:
                return None, None
            return entry, tier.value == "memory"
        return cache.get(key), None

    def _peek_tier(self, cache, key: int):
        if self._tiered:
            tier = cache.tier_of(key)
            return None if tier is None else tier.value == "memory"
        return None

    def _holder_online(self, holder: int, now: float) -> bool:
        """Client churn: is *holder* reachable at virtual time *now*?"""
        if self._churn is not None:
            return self._churn.online(holder, now)
        if self._avail_rng is None:
            return True
        return self._avail_rng.random() < self.config.holder_availability

    def _transfer_corrupted(self) -> bool:
        """Integrity draw: does this remote transfer arrive corrupted?"""
        return (
            self._corrupt_rng is not None
            and self._corrupt_rng.random() < self.config.corruption_rate
        )

    # -- resilient remote-hit delivery --------------------------------------

    def _probe_holder(
        self, holder: int, d: int, s: int, v: int, t: float
    ) -> tuple[bool, bool | None]:
        """One attempt to fetch (doc, version) from *holder*.

        Returns ``(served, memory_tier)``.  A failed probe charges its
        own waste — a LAN round trip for an offline or stale holder, a
        discarded transfer plus verification for an integrity failure —
        and leaves escalation to the caller.
        """
        config = self.config
        result = self.result
        overhead = result.overhead
        lan = config.lan
        if not self._holder_online(holder, t):
            result.holder_unavailable += 1
            overhead.wasted_round_trip_time += lan.connection_setup
            overhead.wasted_offline_time += lan.connection_setup
            return False, None
        holder_cache = self.browsers[holder]
        if config.remote_hit_refreshes_holder:
            held, memory = self._get(holder_cache, d)
        else:
            held = holder_cache.peek(d)
            memory = self._peek_tier(holder_cache, d)
        if held is None or held.version != v:
            # Stale index: the holder no longer has this document.
            self.index.record_false_hit(holder, d)
            result.index_false_hits += 1
            overhead.wasted_round_trip_time += lan.connection_setup
            overhead.wasted_false_hit_time += lan.connection_setup
            return False, None
        if self._transfer_corrupted():
            # The transfer completes but fails the §6 watermark/MD5
            # check: pay for the discarded transfer and the verify CPU,
            # then let the caller retransmit from the next candidate
            # (or the origin).
            result.integrity_failures += 1
            cost = lan.transfer_time(s)
            if self._security is not None:
                cost += self._security.verify_cost(s)
            overhead.integrity_retransmission_time += cost
            return False, None
        self.bus.submit(t, s)
        result.record(HitLocation.REMOTE_BROWSER, s, memory)
        overhead.remote_storage_time += self._storage_time(s, memory)
        if self._security is not None:
            overhead.security_time += self._security.transfer_cost(s)
        return True, memory

    def _remote_delivery(
        self, c: int, d: int, s: int, v: int, t: float
    ) -> tuple[bool, bool | None]:
        """The resilient remote-hit path shared by both replay loops.

        Looks up a holder, then fails over across the index's replica
        list — bounded by ``config.max_holder_retries`` — until one
        probe serves the document or the candidates are exhausted.
        Returns ``(served, memory_tier)``; on ``False`` the request
        escalates to the origin.
        """
        index = self.index
        result = self.result
        hit = index.lookup(d, exclude_client=c, now=t, version=v)
        if hit is None:
            # Was this a lost opportunity?  Check the truth.
            if self._recovering:
                # During rebuild a miss on the partial index is not an
                # error — but a browser the index has not re-learned yet
                # could have served it: a hit lost to recovery.
                if self._truth_holds(d, v, exclude=c):
                    result.hits_lost_to_recovery += 1
            elif index.is_stale and self._truth_holds(d, v, exclude=c):
                index.record_false_miss()
            return False, None
        tried = {hit.client}
        holder = hit.client
        retries_left = self.config.max_holder_retries
        candidates: list[int] | None = None
        while True:
            served, memory = self._probe_holder(holder, d, s, v, t)
            if served:
                if len(tried) > 1:
                    result.failover_rescued_hits += 1
                return True, memory
            if retries_left <= 0:
                return False, None
            if candidates is None:
                candidates = index.candidate_holders(
                    d, exclude_client=c, now=t, version=v
                )
            backup = next((x for x in candidates if x not in tried), None)
            if backup is None:
                return False, None
            tried.add(backup)
            holder = backup
            retries_left -= 1
            result.failover_attempts += 1

    def _storage_time(self, n_bytes: int, memory: bool | None) -> float:
        storage = self.config.storage
        if memory:
            return storage.memory_time(n_bytes)
        return storage.disk_time(n_bytes)

    def _browser_put(self, client: int, doc: int, size: int, version: int, now: float) -> None:
        """Insert into a browser cache, keeping the index in sync."""
        cache = self.browsers[client]
        if self.index is not None:
            already = doc in cache
            self._now = now
            cache.put(doc, size, version)
            # An oversized object is refused; only index what is cached.
            if doc in cache:
                self.index.record_insert(
                    client,
                    doc,
                    version,
                    size,
                    now,
                    ttl=self.config.index_entry_ttl,
                    replace=already,
                )
            elif already:
                self.index.record_evict(client, doc, now)
        else:
            cache.put(doc, size, version)

    # -- proxy crash recovery ------------------------------------------------

    def _advance_recovery(self, t: float) -> bool:
        """Process checkpoint deadlines and crashes due by virtual time
        *t*, in time order, and advance any open rebuild window.

        Returns True when a crash replaced the proxy/index objects —
        the replay loops must refresh their local bindings.  Called
        before each request is served, so index state seen by a
        checkpoint or crash is exactly the state at its virtual time
        (index state only changes at requests).
        """
        self._last_t = t
        checkpointer = self._checkpointer
        faults = self._fault_schedule
        result = self.result
        crashed = False
        while True:
            ck_at = checkpointer.next_due(t) if checkpointer is not None else None
            crash_at = faults.peek(t) if faults is not None else None
            if ck_at is None and crash_at is None:
                break
            if crash_at is None or (ck_at is not None and ck_at <= crash_at):
                # Re-announcements due before this snapshot are part of
                # the state it captures.
                if self._recovering:
                    self._apply_reannouncements(ck_at)
                    if ck_at >= self._window_end:
                        self._close_window(self._window_end)
                result.overhead.checkpoint_time += checkpointer.take(
                    self.index, ck_at
                )
                result.checkpoint_bytes_written = checkpointer.bytes_written
            else:
                faults.pop()
                self._handle_crash(crash_at)
                crashed = True
        if self._recovering:
            self._apply_reannouncements(t)
            if t >= self._window_end:
                self._close_window(self._window_end)
            else:
                result.degraded_window_requests += 1
        return crashed

    def _handle_crash(self, tc: float) -> None:
        """Cold-restart the proxy at virtual time *tc*.

        The proxy cache empties; the in-memory index is destroyed, the
        last checkpoint (if any) restored, and every client with a
        non-empty browser cache is scheduled to re-announce its
        contents at ``config.reannounce_rate`` announcements/second.
        Until the last announcement lands the run is *degraded*.
        """
        result = self.result
        result.proxy_crashes += 1
        if self._recovering:
            # A crash preempted the previous rebuild: land what was
            # announced before the lights went out, then close early.
            self._apply_reannouncements(tc)
            self._close_window(tc)
        if self.proxy is not None:
            self.proxy.clear()
        if self.index is None:
            return
        old = self.index
        self._prior_stats = self._prior_stats.merged(old.stats)
        self._prior_lookups += old.n_lookups
        self._prior_update_messages += old.update_messages
        self.index = self._new_index(old.n_clients)
        if self._checkpointer is not None:
            snapshot = self._checkpointer.latest()
            if snapshot is not None:
                self.index.restore_snapshot(snapshot.payload)
                result.overhead.checkpoint_time += self._checkpointer.restore_time()
            self._checkpointer.reset_after_crash(tc)
        rate = self.config.reannounce_rate
        announcers = [
            cid for cid, cache in enumerate(self.browsers) if len(cache) > 0
        ]
        self._pending_reannounce = [
            (tc + (i + 1) / rate, cid) for i, cid in enumerate(announcers)
        ]
        self._reannounce_pos = 0
        self._recovering = True
        self._window_start = tc
        if self._pending_reannounce:
            self._window_end = self._pending_reannounce[-1][0]
        else:
            # Nothing to rebuild from: recovery completes instantly.
            self._window_end = tc
            self._close_window(tc)

    def _apply_reannouncements(self, t: float) -> None:
        """Land every scheduled re-announcement due by time *t*.

        Contents are read at processing time; browser caches only
        change at requests, so this equals the contents at the due
        instant as long as events are processed before the request is
        served (which :meth:`_advance_recovery` guarantees).
        """
        pending = self._pending_reannounce
        pos = self._reannounce_pos
        ttl = self.config.index_entry_ttl
        while pos < len(pending) and pending[pos][0] <= t:
            due, cid = pending[pos]
            cache = self.browsers[cid]
            items = []
            for doc in cache:
                entry = cache.peek(doc)
                items.append((doc, entry.version, entry.size))
            self.index.reannounce(cid, items, due, ttl=ttl)
            pos += 1
        self._reannounce_pos = pos

    def _close_window(self, end: float) -> None:
        self.result.recovery_time += end - self._window_start
        self._recovering = False

    # -- the replay loop ----------------------------------------------------

    def run(self) -> SimulationResult:
        """Replay the whole trace; returns the accumulated result.

        With ``config.consistency`` set the replay honours
        expiration-based coherence (stale deliveries, validations);
        otherwise the paper's perfect-coherence fast path runs.
        """
        if self.config.consistency is not None:
            return self._run_coherent()
        return self._run_fast()

    def _run_fast(self) -> SimulationResult:
        features = self.features
        config = self.config
        result = self.result
        overhead = result.overhead
        browsers = self.browsers
        proxy = self.proxy
        index = self.index
        lan = config.lan
        wan = config.wan
        recovery = (
            self._advance_recovery
            if self._fault_schedule is not None or self._checkpointer is not None
            else None
        )

        for t, c, d, s, v in self.trace.iter_rows():
            if recovery is not None and recovery(t):
                # a crash replaced the proxy/index objects
                proxy = self.proxy
                index = self.index

            # 1. local browser cache
            if features.has_browsers:
                entry, memory = self._get(browsers[c], d)
                if entry is not None and entry.version == v:
                    result.record(HitLocation.LOCAL_BROWSER, s, memory)
                    overhead.local_hit_time += self._storage_time(s, memory)
                    continue

            # 2. proxy cache
            if proxy is not None:
                entry, memory = self._get(proxy, d)
                if entry is not None and entry.version == v:
                    result.record(HitLocation.PROXY, s, memory)
                    overhead.proxy_hit_time += self._storage_time(
                        s, memory
                    ) + lan.transfer_time(s)
                    if features.has_browsers:
                        self._browser_put(c, d, s, v, t)
                    continue

            # 3. browser index -> remote browser cache (with failover)
            if index is not None:
                remote_served, _memory = self._remote_delivery(c, d, s, v, t)
                if remote_served:
                    if features.caches_remote_fetches:
                        self._browser_put(c, d, s, v, t)
                        if config.cache_remote_hits_at_proxy and proxy is not None:
                            proxy.put(d, s, v)
                    self._track_index_peak()
                    continue

            # 4. origin server
            result.record(HitLocation.ORIGIN, s)
            overhead.origin_miss_time += wan.fetch_time(s) + lan.transfer_time(s)
            if proxy is not None:
                proxy.put(d, s, v)
            if features.has_browsers:
                self._browser_put(c, d, s, v, t)
            if index is not None:
                self._track_index_peak()

        return self._finalise()

    # -- coherent replay (expiration-based consistency) ----------------------

    def _run_coherent(self) -> SimulationResult:
        """Replay honouring the configured consistency policy.

        Browser and proxy copies are served without question while
        fresh-by-policy (even if actually outdated: a *stale
        delivery*); once expired they are revalidated against the
        origin (an If-Modified-Since round trip).  A validation that
        finds the document changed receives the new body from the
        origin directly — it does not retry lower cache levels.
        Remote-browser hits still require an exact version match: the
        §6 watermark verification would reject a stale peer copy.
        """
        features = self.features
        config = self.config
        result = self.result
        overhead = result.overhead
        cstats = result.consistency_stats
        browsers = self.browsers
        proxy = self.proxy
        index = self.index
        lan = config.lan
        wan = config.wan
        policy = config.consistency
        recovery = (
            self._advance_recovery
            if self._fault_schedule is not None or self._checkpointer is not None
            else None
        )

        #: first time each version was observed ~ modification time.
        last_modified: dict[int, float] = {}
        seen_version: dict[int, int] = {}

        def coherence_action(entry, v: int, t: float, last_mod: float) -> str:
            if t <= entry.expires_at:
                return "serve"
            cstats.validations += 1
            overhead.validation_time += wan.connection_setup
            if entry.version == v:
                cstats.validated_hits += 1
                entry.expires_at = policy.expires_at(t, last_mod)
                return "validated"
            cstats.validation_misses += 1
            return "changed"

        def stamp(cache, d: int, t: float, last_mod: float) -> None:
            entry = cache.peek(d)
            if entry is not None:
                entry.expires_at = policy.expires_at(t, last_mod)

        for t, c, d, s, v in self.trace.iter_rows():
            if recovery is not None and recovery(t):
                # a crash replaced the proxy/index objects
                proxy = self.proxy
                index = self.index

            sv = seen_version.get(d)
            if sv is None or v > sv:
                seen_version[d] = v
                last_modified[d] = t
            last_mod = last_modified[d]
            served = False
            go_origin = False

            # 1. local browser cache
            if features.has_browsers:
                entry, memory = self._get(browsers[c], d)
                if entry is not None:
                    action = coherence_action(entry, v, t, last_mod)
                    if action in ("serve", "validated"):
                        if action == "serve" and entry.version != v:
                            cstats.stale_deliveries += 1
                            cstats.stale_bytes += s
                        result.record(HitLocation.LOCAL_BROWSER, s, memory)
                        overhead.local_hit_time += self._storage_time(s, memory)
                        served = True
                    elif action == "changed":
                        go_origin = True

            # 2. proxy cache
            if not served and not go_origin and proxy is not None:
                entry, memory = self._get(proxy, d)
                if entry is not None:
                    action = coherence_action(entry, v, t, last_mod)
                    if action in ("serve", "validated"):
                        if action == "serve" and entry.version != v:
                            cstats.stale_deliveries += 1
                            cstats.stale_bytes += s
                        result.record(HitLocation.PROXY, s, memory)
                        overhead.proxy_hit_time += self._storage_time(
                            s, memory
                        ) + lan.transfer_time(s)
                        if features.has_browsers:
                            self._browser_put(c, d, s, entry.version, t)
                            stamp(browsers[c], d, t, last_mod)
                        served = True
                    elif action == "changed":
                        go_origin = True

            # 3. browser index -> remote browser cache (exact match only,
            #    with failover)
            if not served and not go_origin and index is not None:
                remote_served, _memory = self._remote_delivery(c, d, s, v, t)
                if remote_served:
                    if features.caches_remote_fetches:
                        self._browser_put(c, d, s, v, t)
                        stamp(browsers[c], d, t, last_mod)
                        if config.cache_remote_hits_at_proxy and proxy is not None:
                            proxy.put(d, s, v)
                            stamp(proxy, d, t, last_mod)
                    served = True
                    self._track_index_peak()

            # 4. origin server
            if not served:
                result.record(HitLocation.ORIGIN, s)
                overhead.origin_miss_time += wan.fetch_time(s) + lan.transfer_time(s)
                if proxy is not None:
                    proxy.put(d, s, v)
                    stamp(proxy, d, t, last_mod)
                if features.has_browsers:
                    self._browser_put(c, d, s, v, t)
                    stamp(browsers[c], d, t, last_mod)
                if index is not None:
                    self._track_index_peak()

        return self._finalise()

    def _truth_holds(self, doc: int, version: int, exclude: int) -> bool:
        """Does any other browser actually hold (doc, version)?"""
        for cid, cache in enumerate(self.browsers):
            if cid == exclude:
                continue
            held = cache.peek(doc)
            if held is not None and held.version == version:
                return True
        return False

    def _track_index_peak(self) -> None:
        n = self.index.n_entries
        if n > self.result.index_peak_entries:
            self.result.index_peak_entries = n
            self.result.index_peak_footprint_bytes = self.index.footprint_bytes()

    def _finalise(self) -> SimulationResult:
        result = self.result
        result.overhead.absorb_bus(self.bus.stats)
        if self._recovering:
            # The trace ended mid-rebuild: the degraded window ran to
            # the last request, not to the never-reached window end.
            self._close_window(self._last_t)
        if self.index is not None:
            stats = self.index.stats
            lookups = self.index.n_lookups
            messages = self.index.update_messages
            if self._fault_schedule is not None:
                # Fold in the generations destroyed by crashes.
                stats = self._prior_stats.merged(stats)
                lookups += self._prior_lookups
                messages += self._prior_update_messages
            result.index_stats = stats
            result.index_lookups = lookups
            result.overhead.index_update_messages = messages
        if self._checkpointer is not None:
            result.checkpoint_bytes_written = self._checkpointer.bytes_written
        return result


def simulate(
    trace: Trace,
    organization: Organization,
    config: SimulationConfig,
) -> SimulationResult:
    """Convenience one-shot: build a :class:`Simulator` and run it."""
    return Simulator(trace, organization, config).run()
