"""Parameter sweeps over organizations and relative cache sizes.

The paper's figures plot hit/byte-hit ratios against the *relative
cache size* (proxy cache as a percentage of the infinite cache size,
with the browser caches scaled accordingly).  These helpers run the
cross product and collect results keyed by (organization, fraction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.config import SimulationConfig
from repro.core.metrics import SimulationResult
from repro.core.policies import Organization
from repro.core.simulator import simulate
from repro.traces.record import Trace
from repro.util.fmt import ascii_table

__all__ = ["SweepResult", "run_policy_sweep", "run_size_sweep", "PAPER_SIZE_FRACTIONS"]

#: the paper's relative proxy cache sizes: 0.5%, 5%, 10%, 20% of the
#: infinite cache size.
PAPER_SIZE_FRACTIONS = (0.005, 0.05, 0.10, 0.20)


@dataclass
class SweepResult:
    """Results of a sweep, keyed by (organization, proxy fraction)."""

    trace_name: str
    fractions: tuple[float, ...]
    organizations: tuple[Organization, ...]
    results: dict[tuple[Organization, float], SimulationResult] = field(
        default_factory=dict
    )

    def get(self, organization: Organization, fraction: float) -> SimulationResult:
        return self.results[(organization, fraction)]

    def series(
        self, organization: Organization, metric: str = "hit_ratio"
    ) -> list[tuple[float, float]]:
        """(fraction, metric) pairs for one organization, in fraction
        order — one curve of a paper figure."""
        return [
            (f, getattr(self.results[(organization, f)], metric))
            for f in self.fractions
        ]

    def table(self, metric: str = "hit_ratio", title: str | None = None) -> str:
        """Render organizations × fractions as an ASCII table."""
        headers = ["organization"] + [f"{f * 100:g}%" for f in self.fractions]
        rows = []
        for org in self.organizations:
            row: list = [org.value]
            for f in self.fractions:
                row.append(f"{getattr(self.results[(org, f)], metric) * 100:.2f}%")
            rows.append(row)
        return ascii_table(headers, rows, title=title or f"{self.trace_name}: {metric}")


def run_policy_sweep(
    trace: Trace,
    organizations: Iterable[Organization] = tuple(Organization),
    fractions: Sequence[float] = PAPER_SIZE_FRACTIONS,
    browser_sizing: str = "minimum",
    **config_overrides,
) -> SweepResult:
    """Run every organization at every relative cache size.

    ``config_overrides`` are forwarded to
    :meth:`SimulationConfig.relative` (e.g. ``memory_fraction=0.1``).
    """
    organizations = tuple(organizations)
    fractions = tuple(fractions)
    sweep = SweepResult(
        trace_name=trace.name, fractions=fractions, organizations=organizations
    )
    for frac in fractions:
        config = SimulationConfig.relative(
            trace, proxy_frac=frac, browser_sizing=browser_sizing, **config_overrides
        )
        for org in organizations:
            sweep.results[(org, frac)] = simulate(trace, org, config)
    return sweep


def run_size_sweep(
    trace: Trace,
    organization: Organization,
    fractions: Sequence[float] = PAPER_SIZE_FRACTIONS,
    browser_sizing: str = "minimum",
    **config_overrides,
) -> SweepResult:
    """Sweep relative cache sizes for a single organization."""
    return run_policy_sweep(
        trace,
        organizations=(organization,),
        fractions=fractions,
        browser_sizing=browser_sizing,
        **config_overrides,
    )
