"""Parameter sweeps over organizations and relative cache sizes.

The paper's figures plot hit/byte-hit ratios against the *relative
cache size* (proxy cache as a percentage of the infinite cache size,
with the browser caches scaled accordingly).  These helpers run the
cross product and collect results keyed by (organization, fraction).

Execution goes through :mod:`repro.core.parallel`: ``workers=0`` (the
default) replays cells serially in-process, ``workers=N`` fans them out
over a process pool.  Both paths produce bit-identical results — the
golden-result tests in ``tests/test_golden_figures.py`` pin this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.config import SimulationConfig
from repro.core.metrics import SimulationResult, SweepTiming
from repro.core.parallel import (
    CellEvent,
    CellFailure,
    EngineOptions,
    build_cells,
    run_cells,
)
from repro.core.policies import Organization
from repro.traces.record import Trace
from repro.util.fmt import ascii_table

__all__ = ["SweepResult", "run_policy_sweep", "run_size_sweep", "PAPER_SIZE_FRACTIONS"]

#: the paper's relative proxy cache sizes: 0.5%, 5%, 10%, 20% of the
#: infinite cache size.
PAPER_SIZE_FRACTIONS = (0.005, 0.05, 0.10, 0.20)


@dataclass
class SweepResult:
    """Results of a sweep, keyed by (organization, proxy fraction)."""

    trace_name: str
    fractions: tuple[float, ...]
    organizations: tuple[Organization, ...]
    results: dict[tuple[Organization, float], SimulationResult] = field(
        default_factory=dict
    )
    #: cells that failed for good — crashed, timed out, or were
    #: quarantined after repeated worker deaths; empty on a clean sweep.
    failures: list[CellFailure] = field(default_factory=list)
    #: execution timing of the sweep that produced this result.
    timing: SweepTiming | None = None
    #: execution attempts per (organization, fraction); 0 = restored
    #: from a resume journal without re-simulating.
    attempts: dict[tuple[Organization, float], int] = field(default_factory=dict)
    #: process-pool crashes the engine survived while producing this.
    pool_crashes: int = 0

    def get(self, organization: Organization, fraction: float) -> SimulationResult:
        try:
            return self.results[(organization, fraction)]
        except KeyError:
            for failure in self.failures:
                cell = failure.cell
                if cell.organization is organization and cell.fraction == fraction:
                    raise KeyError(
                        f"cell ({organization.value}, {fraction:g}) failed "
                        f"during the sweep: {failure.error}"
                    ) from None
            orgs = ", ".join(o.value for o in self.organizations)
            fracs = ", ".join(f"{f:g}" for f in self.fractions)
            raise KeyError(
                f"no result for organization {getattr(organization, 'value', organization)!r} "
                f"at fraction {fraction!r}; available organizations: [{orgs}]; "
                f"available fractions: [{fracs}]"
            ) from None

    def series(
        self, organization: Organization, metric: str = "hit_ratio"
    ) -> list[tuple[float, float]]:
        """(fraction, metric) pairs for one organization, in fraction
        order — one curve of a paper figure."""
        return [
            (f, getattr(self.get(organization, f), metric)) for f in self.fractions
        ]

    def table(self, metric: str = "hit_ratio", title: str | None = None) -> str:
        """Render organizations × fractions as an ASCII table."""
        headers = ["organization"] + [f"{f * 100:g}%" for f in self.fractions]
        rows = []
        for org in self.organizations:
            row: list = [org.value]
            for f in self.fractions:
                row.append(f"{getattr(self.get(org, f), metric) * 100:.2f}%")
            rows.append(row)
        return ascii_table(headers, rows, title=title or f"{self.trace_name}: {metric}")


def run_policy_sweep(
    trace: Trace,
    organizations: Iterable[Organization] = tuple(Organization),
    fractions: Sequence[float] = PAPER_SIZE_FRACTIONS,
    browser_sizing: str = "minimum",
    workers: int | None = 0,
    progress: Callable[[CellEvent], None] | None = None,
    options: EngineOptions | None = None,
    mrc: bool = False,
    sample_rate: float = 1.0,
    sample_seed: int = 0,
    **config_overrides,
) -> SweepResult:
    """Run every organization at every relative cache size.

    ``config_overrides`` are forwarded to
    :meth:`SimulationConfig.relative` (e.g. ``memory_fraction=0.1``).
    ``workers`` selects the execution mode (0 = in-process serial,
    N = process pool, None = all CPUs); the numbers are identical
    either way.  A crashing cell is recorded in ``failures`` instead of
    aborting the sweep; ``options`` adds the engine's fault-tolerance
    layer (retries, per-cell timeout, attempt journal, resume).

    ``mrc=True`` takes the one-pass fast path
    (:mod:`repro.analysis.mrc`): a single trace traversal predicts
    every cell, exactly for the pure-LRU organizations and with a
    documented approximation elsewhere.  ``sample_rate`` < 1 further
    runs that pass on a deterministic spatial sample
    (:mod:`repro.traces.sampling`) seeded by ``sample_seed``.  The MRC
    path runs in-process (there is nothing to fan out — ``workers`` is
    recorded as requested but unused) and is incompatible with
    ``options``/``progress``, which configure the per-cell replay
    engine.
    """
    organizations = tuple(organizations)
    fractions = tuple(fractions)
    if mrc:
        return _run_mrc_sweep(
            trace,
            organizations,
            fractions,
            browser_sizing,
            workers,
            progress,
            options,
            sample_rate,
            sample_seed,
            config_overrides,
        )
    if sample_rate != 1.0:
        raise ValueError(
            "sample_rate applies to the one-pass analysis; pass mrc=True "
            "(the per-cell replay engine always consumes the full trace)"
        )

    def config_for(frac: float) -> SimulationConfig:
        return SimulationConfig.relative(
            trace, proxy_frac=frac, browser_sizing=browser_sizing, **config_overrides
        )

    cells = build_cells(trace.name, organizations, fractions, config_for)
    run = run_cells(
        cells, {trace.name: trace}, workers=workers, progress=progress, options=options
    )
    sweep = SweepResult(
        trace_name=trace.name,
        fractions=fractions,
        organizations=organizations,
        failures=run.failures,
        timing=run.timing,
        pool_crashes=run.pool_crashes,
    )
    for cell in cells:
        if cell.index in run.results:
            sweep.results[(cell.organization, cell.fraction)] = run.results[cell.index]
        if cell.index in run.attempts:
            sweep.attempts[(cell.organization, cell.fraction)] = run.attempts[cell.index]
    return sweep


def _run_mrc_sweep(
    trace: Trace,
    organizations: tuple[Organization, ...],
    fractions: tuple[float, ...],
    browser_sizing: str,
    workers: int | None,
    progress: Callable[[CellEvent], None] | None,
    options: EngineOptions | None,
    sample_rate: float,
    sample_seed: int,
    config_overrides: dict,
) -> SweepResult:
    """One trace traversal predicts the whole organizations × fractions
    grid; every cell is an MRC-derived point, not a replay."""
    # Imported lazily: repro.analysis.mrc imports repro.core modules.
    from repro.analysis.mrc import capacity_grid, compute_mrc

    if options is not None:
        raise ValueError(
            "mrc=True computes the whole grid in one in-process pass; "
            "EngineOptions (retries/timeout/journal/resume) configure the "
            "per-cell replay engine and do not apply — pass options=None "
            "or drop mrc"
        )
    if progress is not None:
        raise ValueError(
            "mrc=True emits no per-cell progress events (there are no "
            "cells to replay); pass progress=None or drop mrc"
        )
    grid = capacity_grid(
        trace, fractions, browser_sizing=browser_sizing, **config_overrides
    )
    analysis = compute_mrc(
        trace,
        grid,
        organizations=organizations,
        sample_rate=sample_rate,
        sample_seed=sample_seed,
    )
    n_cells = len(organizations) * len(fractions)
    sweep = SweepResult(
        trace_name=trace.name,
        fractions=fractions,
        organizations=organizations,
        timing=SweepTiming(
            workers=0,
            n_cells=n_cells,
            wall_seconds=analysis.wall_seconds,
            requested_workers=workers if workers != 0 else None,
            mrc_points=n_cells,
        ),
    )
    for org in organizations:
        for frac in fractions:
            sweep.results[(org, frac)] = analysis.to_simulation_result(org, frac)
            sweep.attempts[(org, frac)] = 0
    return sweep


def run_size_sweep(
    trace: Trace,
    organization: Organization,
    fractions: Sequence[float] = PAPER_SIZE_FRACTIONS,
    browser_sizing: str = "minimum",
    workers: int | None = 0,
    progress: Callable[[CellEvent], None] | None = None,
    options: EngineOptions | None = None,
    mrc: bool = False,
    sample_rate: float = 1.0,
    sample_seed: int = 0,
    **config_overrides,
) -> SweepResult:
    """Sweep relative cache sizes for a single organization.

    ``mrc=True`` derives every size from one pass — see
    :func:`run_policy_sweep`; ``SweepTiming.mrc_points`` /
    ``replays_avoided`` report the distinction.
    """
    return run_policy_sweep(
        trace,
        organizations=(organization,),
        fractions=fractions,
        browser_sizing=browser_sizing,
        workers=workers,
        progress=progress,
        options=options,
        mrc=mrc,
        sample_rate=sample_rate,
        sample_seed=sample_seed,
        **config_overrides,
    )
