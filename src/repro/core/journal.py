"""JSONL run journal: durable per-attempt records and resume support.

A sweep that dies halfway — machine reboot, OOM kill, ctrl-C — used to
discard every completed cell.  The journal makes sweep execution
*restartable*: the engine appends one JSON line per event as it runs,
and a later invocation pointed at the journal (``--resume``) replays
completed cells from their recorded results instead of re-simulating
them.  Restored results are bit-identical to fresh ones: every counter
of :class:`~repro.core.metrics.SimulationResult` round-trips through
JSON exactly (Python serialises floats by ``repr``, which is lossless).

Record kinds (each line is one JSON object with a ``kind`` field):

* ``run`` — header: engine settings and grid size, written once;
* ``attempt`` — one per execution attempt: cell identity (index,
  trace, organization, fraction, seed), attempt number, elapsed
  seconds, outcome (``ok`` / ``error`` / ``timeout`` / ``pool-crash``
  / ``resumed``), and the error string for failures;
* ``result`` — the full serialised :class:`SimulationResult` of a
  completed cell (what resume restores).

Cells are identified for resume by ``(trace, organization, fraction,
seed)`` — never by grid position — so a journal survives grid
reordering and a resumed run can safely add or drop cells.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
from pathlib import Path
from typing import IO, Any, Iterator

from repro.cache.stats import CacheStats
from repro.consistency.policies import ConsistencyStats
from repro.core.events import HitLocation
from repro.core.metrics import SimulationResult
from repro.core.overhead import OverheadReport
from repro.index.staleness import StalenessStats

__all__ = [
    "JournalWriter",
    "result_to_jsonable",
    "result_from_jsonable",
    "read_journal",
    "load_completed_results",
    "cell_key",
    "config_digest",
]

log = logging.getLogger(__name__)

JOURNAL_VERSION = 1

#: identity of a cell as recorded in the journal: what resume matches on.
CellKey = tuple[str, str, float, int, str]


def config_digest(config) -> str:
    """A short stable fingerprint of a :class:`SimulationConfig`.

    Part of the resume identity: two cells at the same grid coordinate
    but different configurations (say, ``minimum`` vs ``average``
    browser sizing) must never satisfy each other's resume lookup.
    ``repr`` of the frozen config dataclass is deterministic — every
    field is a number, string, tuple, or nested frozen dataclass.
    """
    return hashlib.sha1(repr(config).encode("utf-8")).hexdigest()[:12]


def cell_key(
    trace_name: str, organization: str, fraction: float, seed: int, digest: str = ""
) -> CellKey:
    return (trace_name, organization, float(fraction), int(seed), digest)


# -- SimulationResult <-> JSON ----------------------------------------------


def _from_fields(cls, data: dict):
    """Build a dataclass from a dict, ignoring unknown keys so old
    journals stay readable after the schema grows."""
    names = {f.name for f in dataclasses.fields(cls)}
    return cls(**{k: v for k, v in data.items() if k in names})


def result_to_jsonable(result: SimulationResult) -> dict[str, Any]:
    """Serialise a result to plain JSON types, losslessly."""
    return {
        "trace_name": result.trace_name,
        "organization": result.organization,
        "n_requests": result.n_requests,
        "total_bytes": result.total_bytes,
        "by_location": {
            loc.name: dataclasses.asdict(stats)
            for loc, stats in result.by_location.items()
        },
        "overhead": dataclasses.asdict(result.overhead),
        "index_stats": dataclasses.asdict(result.index_stats),
        "consistency_stats": dataclasses.asdict(result.consistency_stats),
        "index_lookups": result.index_lookups,
        "index_false_hits": result.index_false_hits,
        "holder_unavailable": result.holder_unavailable,
        "failover_attempts": result.failover_attempts,
        "failover_rescued_hits": result.failover_rescued_hits,
        "integrity_failures": result.integrity_failures,
        "corrupt_deliveries": result.corrupt_deliveries,
        "poisoned_requests": result.poisoned_requests,
        "quarantined_peers": result.quarantined_peers,
        "quarantine_rescued_hits": result.quarantine_rescued_hits,
        "proxy_crashes": result.proxy_crashes,
        "recovery_time": result.recovery_time,
        "degraded_window_requests": result.degraded_window_requests,
        "hits_lost_to_recovery": result.hits_lost_to_recovery,
        "checkpoint_bytes_written": result.checkpoint_bytes_written,
        "interproxy_hits": result.interproxy_hits,
        "digest_false_hits": result.digest_false_hits,
        "digest_missed_hits": result.digest_missed_hits,
        "digest_bytes_exchanged": result.digest_bytes_exchanged,
        "digest_exchanges_lost": result.digest_exchanges_lost,
        "partition_windows": result.partition_windows,
        "wasted_partition_time": result.wasted_partition_time,
        "antientropy_bytes": result.antientropy_bytes,
        "interproxy_bandwidth_time": result.interproxy_bandwidth_time,
        "index_peak_entries": result.index_peak_entries,
        "index_peak_footprint_bytes": result.index_peak_footprint_bytes,
        "uses_memory_tier": result.uses_memory_tier,
    }


def result_from_jsonable(data: dict[str, Any]) -> SimulationResult:
    """Rebuild a result from :func:`result_to_jsonable` output."""
    result = SimulationResult(
        trace_name=data["trace_name"],
        organization=data["organization"],
        n_requests=data["n_requests"],
        total_bytes=data["total_bytes"],
        by_location={
            HitLocation[name]: _from_fields(CacheStats, stats)
            for name, stats in data["by_location"].items()
        },
        overhead=_from_fields(OverheadReport, data["overhead"]),
        index_stats=_from_fields(StalenessStats, data["index_stats"]),
        consistency_stats=_from_fields(ConsistencyStats, data["consistency_stats"]),
        index_lookups=data["index_lookups"],
        index_false_hits=data["index_false_hits"],
        holder_unavailable=data["holder_unavailable"],
        # journals written before the resilience counters existed load
        # with zeros, matching what those engines measured.
        failover_attempts=data.get("failover_attempts", 0),
        failover_rescued_hits=data.get("failover_rescued_hits", 0),
        integrity_failures=data.get("integrity_failures", 0),
        # journals written before the adversarial counters existed load
        # with zeros, matching what those engines measured.
        corrupt_deliveries=data.get("corrupt_deliveries", 0),
        poisoned_requests=data.get("poisoned_requests", 0),
        quarantined_peers=data.get("quarantined_peers", 0),
        quarantine_rescued_hits=data.get("quarantine_rescued_hits", 0),
        proxy_crashes=data.get("proxy_crashes", 0),
        recovery_time=data.get("recovery_time", 0.0),
        degraded_window_requests=data.get("degraded_window_requests", 0),
        hits_lost_to_recovery=data.get("hits_lost_to_recovery", 0),
        checkpoint_bytes_written=data.get("checkpoint_bytes_written", 0),
        # journals written before the federation counters existed load
        # with zeros, matching what those single-proxy engines measured.
        interproxy_hits=data.get("interproxy_hits", 0),
        digest_false_hits=data.get("digest_false_hits", 0),
        digest_missed_hits=data.get("digest_missed_hits", 0),
        digest_bytes_exchanged=data.get("digest_bytes_exchanged", 0),
        # journals written before the partition counters existed load
        # with zeros, matching what those perfect-fabric engines measured.
        digest_exchanges_lost=data.get("digest_exchanges_lost", 0),
        partition_windows=data.get("partition_windows", 0),
        wasted_partition_time=data.get("wasted_partition_time", 0.0),
        antientropy_bytes=data.get("antientropy_bytes", 0),
        interproxy_bandwidth_time=data.get("interproxy_bandwidth_time", 0.0),
        index_peak_entries=data["index_peak_entries"],
        index_peak_footprint_bytes=data["index_peak_footprint_bytes"],
        uses_memory_tier=data["uses_memory_tier"],
    )
    # locations absent from an old journal keep fresh zero counters.
    for loc in HitLocation:
        result.by_location.setdefault(loc, CacheStats())
    return result


# -- writing ----------------------------------------------------------------


class JournalWriter:
    """Appends journal records as JSON lines, flushing after each so a
    killed run leaves every finished attempt on disk."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] = self.path.open("a", encoding="utf-8")

    def _write(self, record: dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()

    def write_header(
        self,
        n_cells: int,
        workers: int,
        retries: int,
        cell_timeout: float | None,
    ) -> None:
        self._write(
            {
                "kind": "run",
                "version": JOURNAL_VERSION,
                "n_cells": n_cells,
                "workers": workers,
                "retries": retries,
                "cell_timeout": cell_timeout,
            }
        )

    def write_attempt(
        self,
        cell,
        attempt: int,
        outcome: str,
        elapsed: float,
        error: str | None = None,
    ) -> None:
        """One line per execution attempt (``cell`` is a SweepCell)."""
        self._write(
            {
                "kind": "attempt",
                "cell": cell.index,
                "trace": cell.trace_name,
                "organization": cell.organization.value,
                "fraction": cell.fraction,
                "seed": cell.seed,
                "config": config_digest(cell.config),
                "attempt": attempt,
                "outcome": outcome,
                "elapsed": elapsed,
                "error": error,
            }
        )

    def write_result(self, cell, result: SimulationResult) -> None:
        self._write(
            {
                "kind": "result",
                "cell": cell.index,
                "trace": cell.trace_name,
                "organization": cell.organization.value,
                "fraction": cell.fraction,
                "seed": cell.seed,
                "config": config_digest(cell.config),
                "result": result_to_jsonable(result),
            }
        )

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- reading ----------------------------------------------------------------


def read_journal(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield journal records; skips blank and truncated/corrupt lines
    with a warning (a crash mid-write must not make the journal
    unreadable — the torn trailing record is simply re-simulated)."""
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                log.warning(
                    "journal %s: discarding corrupt record at line %d "
                    "(likely a crash mid-write); the cell will be re-run",
                    path,
                    lineno,
                )
                continue


def load_completed_results(path: str | Path) -> dict[CellKey, SimulationResult]:
    """The resume set: completed cells keyed by identity.

    Later records win, so a journal that was itself produced by a
    resumed run (containing both ``resumed`` re-records and fresh
    results) loads cleanly.
    """
    completed: dict[CellKey, SimulationResult] = {}
    for record in read_journal(path):
        if record.get("kind") != "result":
            continue
        key = cell_key(
            record["trace"],
            record["organization"],
            record["fraction"],
            record["seed"],
            record.get("config", ""),
        )
        completed[key] = result_from_jsonable(record["result"])
    return completed
