"""Simulation configuration and the paper's cache-sizing rules.

Cache sizes are expressed relative to trace footprints, exactly as in
the paper:

* The **proxy cache** is a fraction (0.5 %, 5 %, 10 %, 20 %) of the
  *infinite proxy cache size* — the storage needed to hold every unique
  requested document.
* The **minimum browser cache** is ``S_proxy / n`` for *n* clients
  ("based on real-world proxy configurations reported in [Rousskov &
  Soloviev]"), i.e. the aggregate of all browser caches equals the
  proxy cache — the 2000-era reality of ~8 MB default browser caches
  against a proxy of a few GB serving hundreds of clients.  (The
  scanned formula is unreadable; DESIGN.md §3 documents this reading
  and the sensitivity benchmark ``bench_ablation_sizing`` sweeps the
  divisor.)
* The **average browser cache** scales each client's cache as a
  fraction of the *average infinite browser cache size* — the mean over
  clients of the storage needed for each client's own unique documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.adversarial import AdversarialConfig
from repro.consistency.policies import ConsistencyPolicy
from repro.core.churn import ChurnModel
from repro.core.proxy_faults import ProxyFaultModel
from repro.index.checkpoint import CheckpointPolicy
from repro.index.staleness import PeriodicUpdatePolicy
from repro.network.ethernet import EthernetModel
from repro.network.latency import MemoryDiskModel
from repro.network.topology import WANModel
from repro.security.protocols import SecurityOverheadModel
from repro.traces.record import Trace
from repro.util.units import BITS_PER_BYTE
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_quarantine,
    check_reannounce_rate,
)

if TYPE_CHECKING:  # imported lazily to avoid a package cycle at runtime
    from repro.core.chaos import ChaosPlan
    from repro.federation.linkfaults import LinkFaultModel

__all__ = [
    "FederationConfig",
    "SimulationConfig",
    "minimum_browser_capacity",
    "average_browser_capacity",
]


def minimum_browser_capacity(
    proxy_capacity: int, n_clients: int, divisor: float = 1.0
) -> int:
    """The paper's minimum browser cache: S_proxy / (divisor · n).

    With the default ``divisor=1`` the aggregate browser capacity
    equals the proxy cache.  The sizing-sensitivity ablation sweeps
    *divisor* to show how the BAPS gain depends on this reading.
    """
    check_non_negative("proxy_capacity", proxy_capacity)
    check_positive("n_clients", n_clients)
    check_positive("divisor", divisor)
    return max(1, int(proxy_capacity / (divisor * n_clients)))


def average_browser_capacity(trace: Trace, fraction: float) -> int:
    """*fraction* of the average infinite browser cache size.

    The infinite browser cache of a client is the total size of all
    documents the client itself uniquely requested; the average is
    taken over all clients appearing in the trace.
    """
    check_positive("fraction", fraction)
    footprints = trace.client_footprint_bytes()
    active = footprints[footprints > 0]
    if active.size == 0:
        return 1
    return max(1, int(fraction * float(np.mean(active))))


@dataclass(frozen=True)
class FederationConfig:
    """Cooperative multi-proxy federation (Summary-Cache digests).

    The client population is sharded over ``n_proxies`` cooperating
    proxies, each running the full per-proxy machinery (browser index,
    checkpointing, crash recovery, churn, failover).  Proxies exchange
    bloom digests of everything they can currently serve — their proxy
    cache plus their browser index's claimed contents — every
    ``digest_period`` virtual seconds, so a miss at one proxy can be
    served as a cross-proxy remote hit over the modeled inter-proxy
    link.  Stale digests produce accountable errors: a digest that
    still claims an evicted document costs a wasted inter-proxy round
    trip (``digest_false_hits``); a document cached after the last
    exchange is invisible until the next one (``digest_missed_hits``).

    Construction draws no randomness: with ``federation=None`` (the
    default on :class:`SimulationConfig`) nothing here executes and all
    existing results are bit-identical.
    """

    #: cooperating proxies the client population is sharded over.
    n_proxies: int = 2
    #: digest exchange period in virtual seconds.  ``0.0`` is the
    #: *oracle anchor*: digests are rebuilt fresh before every request
    #: and no exchange bytes/time are charged.
    digest_period: float = 300.0
    #: inter-proxy link pricing (connection setup + store-and-forward).
    interproxy_setup: float = 0.010
    interproxy_bandwidth_bps: float = 100e6
    #: digest compression knob (bloom bits per summarised document).
    digest_bits_per_doc: float = 16.0
    #: client -> proxy assignment: ``"interleave"`` (client % n) or
    #: ``"blocks"`` (contiguous ranges), matching the hierarchy layer.
    partition: str = "interleave"
    #: does a cross-proxy hit populate the requesting proxy's cache
    #: (and, for organizations that cache remote fetches, the
    #: requesting browser)?
    cache_interproxy_fetches: bool = True
    #: inter-proxy link partitions (see
    #: :mod:`repro.federation.linkfaults`); ``None`` keeps the perfect
    #: fabric and every existing federation result bit-identical.
    link_faults: "LinkFaultModel | None" = None

    def __post_init__(self) -> None:
        check_positive("n_proxies", self.n_proxies)
        check_non_negative("digest_period", self.digest_period)
        check_non_negative("interproxy_setup", self.interproxy_setup)
        check_positive("interproxy_bandwidth_bps", self.interproxy_bandwidth_bps)
        check_positive("digest_bits_per_doc", self.digest_bits_per_doc)
        if self.partition not in ("interleave", "blocks"):
            raise ValueError(
                f"partition must be 'interleave' or 'blocks', got {self.partition!r}"
            )

    def transfer_time(self, n_bytes: int) -> float:
        """Inter-proxy link time for one document or digest transfer."""
        return (
            self.interproxy_setup
            + n_bytes * BITS_PER_BYTE / self.interproxy_bandwidth_bps
        )


@dataclass(frozen=True)
class SimulationConfig:
    """Everything the engine needs besides the trace and organization."""

    proxy_capacity: int
    browser_capacity: int
    #: replacement policy names (see :data:`repro.cache.POLICIES`).
    proxy_policy: str = "lru"
    browser_policy: str = "lru"
    #: memory tier fraction; ``None`` disables the tiered model.
    memory_fraction: float | None = None
    #: memory tier fraction for *browser* caches when it differs from
    #: the proxy's (paper §1/§4.2: "the memory cache portion in a
    #: browser can be much larger than that for the proxy cache in
    #: practice"; 1.0 models the memory-resident browser cache).
    #: ``None`` means same as ``memory_fraction``.
    browser_memory_fraction: float | None = None
    #: per-client browser capacities (bytes), overriding the uniform
    #: ``browser_capacity`` — models the paper's §1 point that users set
    #: browser cache sizes individually.  Length must cover the trace's
    #: client count.
    browser_capacities: tuple[int, ...] | None = None
    #: browser-index representation: ``"exact"`` (per-entry directory)
    #: or ``"bloom"`` (Summary-Cache per-client Bloom filters).
    index_kind: str = "exact"
    #: browser-index maintenance (exact kind only): ``None`` =
    #: invalidation-based; a policy = periodic (stale) updates.
    index_update_policy: PeriodicUpdatePolicy | None = None
    #: Bloom index parameters (bloom kind only).
    bloom_bits_per_doc: float = 16.0
    bloom_rebuild_threshold: float = 0.10
    #: TTL attached to browser-index entries (seconds); expired entries
    #: are never offered for peer sharing ("a time stamp of the file or
    #: the TTL provided by the data source").  ``None`` = no expiry.
    index_entry_ttl: float | None = None
    #: whether a remote-browser hit also populates the proxy cache
    #: (the paper's fetch-and-forward alternative).
    cache_remote_hits_at_proxy: bool = False
    #: whether serving a remote hit refreshes the holder's LRU state.
    remote_hit_refreshes_holder: bool = True
    #: timing models for the overhead report.
    lan: EthernetModel = field(default_factory=EthernetModel)
    wan: WANModel = field(default_factory=WANModel)
    storage: MemoryDiskModel = field(default_factory=MemoryDiskModel)
    #: optional §6 crypto pricing per remote hit.
    security: SecurityOverheadModel | None = None
    #: expiration-based cache coherence for browser/proxy hits; ``None``
    #: keeps the paper's perfect-coherence rule (a version mismatch is
    #: silently a miss).  See :mod:`repro.consistency`.
    consistency: ConsistencyPolicy | None = None
    #: probability that a holder is online when asked to serve a remote
    #: hit (client churn; 1.0 = the paper's always-on LAN).  An offline
    #: holder costs a wasted round trip before the request escalates.
    #: Mutually exclusive with ``churn`` (which replaces the per-probe
    #: Bernoulli draw with correlated on/off sessions).
    holder_availability: float = 1.0
    #: session-based churn process (see :mod:`repro.core.churn`):
    #: per-client alternating on/off durations advanced by virtual
    #: request time, so offline periods are correlated like real
    #: browser sessions.  ``None`` keeps the always-on LAN (or the
    #: Bernoulli model when ``holder_availability < 1``).
    churn: ChurnModel | None = None
    #: extra holder candidates probed (from the index's replica list)
    #: after the chosen holder fails — offline, stale, or integrity-
    #: failing — before the request falls back to proxy/origin.  Each
    #: failed probe costs a wasted LAN round trip.
    max_holder_retries: int = 0
    #: probability that a remote-browser transfer arrives corrupted and
    #: is rejected by the §6 watermark/MD5 integrity check; the wasted
    #: transfer plus verification is charged and the document is
    #: retransmitted (next holder, or origin).  A nonzero rate enables
    #: the §6 :class:`SecurityOverheadModel` pricing even when
    #: ``security`` is unset — integrity failures are only detectable
    #: with the integrity layer on.
    corruption_rate: float = 0.0
    #: proxy crash model (see :mod:`repro.core.proxy_faults`): ``None``
    #: keeps the always-up proxy.  Each crash cold-restarts the proxy
    #: cache and destroys the in-memory browser index; recovery restores
    #: the last checkpoint (if any) and rebuilds from client
    #: re-announcements while serving degraded.
    proxy_faults: "ProxyFaultModel | None" = None
    #: browser-index checkpoint schedule (see
    #: :mod:`repro.index.checkpoint`); only meaningful with
    #: ``proxy_faults`` set.  ``None`` = never checkpoint (a crash loses
    #: the whole index).
    checkpoint: "CheckpointPolicy | None" = None
    #: post-crash rebuild speed: clients re-announce their browser-cache
    #: contents at this many announcements per virtual second (the
    #: recovery window for *n* announcing clients spans ``n / rate``
    #: seconds after the crash).
    reannounce_rate: float = 1.0
    #: master seed for the deterministic failure draws (Bernoulli
    #: availability, churn sessions, corruption, and proxy crashes).
    availability_seed: int = 0
    #: cooperative multi-proxy federation; ``None`` keeps the paper's
    #: single proxy and leaves every replay loop untouched.
    federation: "FederationConfig | None" = None
    #: adversarial peer profiles (see :mod:`repro.adversarial`):
    #: persistent polluters and correlated flappers assigned by a seeded
    #: :class:`~repro.adversarial.PeerPopulation`.  ``None`` keeps the
    #: single global ``corruption_rate`` draw (bit-identical goldens).
    adversarial: "AdversarialConfig | None" = None
    #: reputation defense: quarantine a holder after this many integrity
    #: failures — the index then skips it as a remote-hit candidate.
    #: 0 = defense off.
    quarantine_threshold: int = 0
    #: re-admission window (virtual seconds): a quarantined holder is
    #: forgiven after this long without serving.  ``None`` = permanent
    #: quarantine.  Requires ``quarantine_threshold > 0``.
    quarantine_decay: float | None = None
    #: holders excluded from remote-hit candidacy for the whole replay —
    #: the oracle-defense anchor (e.g. exactly the polluter ids from
    #: :meth:`~repro.adversarial.PeerPopulation.for_simulation`).
    static_blacklist: tuple[int, ...] | None = None
    #: composed chaos schedule (see :mod:`repro.core.chaos`): one seeded
    #: spec installing several fault models at once, plus the opt-in
    #: mid-replay invariant monitor.  ``None`` leaves every replay loop
    #: untouched.
    chaos: "ChaosPlan | None" = None

    def __post_init__(self) -> None:
        check_non_negative("proxy_capacity", self.proxy_capacity)
        check_non_negative("browser_capacity", self.browser_capacity)
        for name in ("memory_fraction", "browser_memory_fraction"):
            value = getattr(self, name)
            if value is not None and not (0.0 <= value <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.index_kind not in ("exact", "bloom"):
            raise ValueError(
                f"index_kind must be 'exact' or 'bloom', got {self.index_kind!r}"
            )
        if self.index_kind == "bloom" and self.index_update_policy is not None:
            raise ValueError("the bloom index has its own rebuild policy")
        if self.browser_capacities is not None:
            if any(c < 0 for c in self.browser_capacities):
                raise ValueError("browser_capacities must be non-negative")
            object.__setattr__(
                self, "browser_capacities", tuple(self.browser_capacities)
            )
        if self.index_entry_ttl is not None and self.index_entry_ttl <= 0:
            raise ValueError(
                f"index_entry_ttl must be > 0, got {self.index_entry_ttl}"
            )
        if not (0.0 <= self.holder_availability <= 1.0):
            raise ValueError(
                f"holder_availability must be in [0, 1], got {self.holder_availability}"
            )
        if self.churn is not None and self.holder_availability < 1.0:
            raise ValueError(
                "set either churn (session model) or holder_availability "
                "(per-probe Bernoulli), not both"
            )
        if self.max_holder_retries < 0:
            raise ValueError(
                f"max_holder_retries must be >= 0, got {self.max_holder_retries}"
            )
        if not (0.0 <= self.corruption_rate <= 1.0):
            raise ValueError(
                f"corruption_rate must be in [0, 1], got {self.corruption_rate}"
            )
        if self.browser_memory_fraction is not None and self.memory_fraction is None:
            raise ValueError(
                "browser_memory_fraction requires memory_fraction to enable "
                "the tiered model"
            )
        check_reannounce_rate(self.reannounce_rate)
        check_quarantine(self.quarantine_threshold, self.quarantine_decay)
        if self.static_blacklist is not None:
            if any(c < 0 for c in self.static_blacklist):
                raise ValueError(
                    f"static_blacklist client ids must be >= 0, got "
                    f"{self.static_blacklist!r}"
                )
            object.__setattr__(
                self, "static_blacklist",
                tuple(sorted(set(self.static_blacklist))),
            )
        if self.chaos is not None:
            chaos = self.chaos
            for name in ("churn", "proxy_faults", "adversarial"):
                if (
                    getattr(chaos, name) is not None
                    and getattr(self, name) is not None
                ):
                    raise ValueError(
                        f"both chaos.{name} and config.{name} are set; a "
                        f"chaos plan owns the fault models it composes — "
                        f"give the model to one of the two"
                    )
            if chaos.link_faults is not None:
                if self.federation is None:
                    raise ValueError(
                        "chaos.link_faults partitions the inter-proxy "
                        "fabric: set SimulationConfig.federation "
                        "(n_proxies > 1) to have links to cut"
                    )
                if self.federation.link_faults is not None:
                    raise ValueError(
                        "both chaos.link_faults and federation.link_faults "
                        "are set; give the model to one of the two"
                    )
        # adversarial (like proxy_faults / checkpoint) validates itself
        # in its own __post_init__.
        # proxy_faults and checkpoint validate themselves in their own
        # __post_init__.  A checkpoint policy without proxy_faults is
        # legal: nothing ever crashes, so nothing is restored, but the
        # snapshots are still taken and charged — that measures the pure
        # cost of the insurance, which the recovery sweeps use.

    # -- constructors ------------------------------------------------------

    @classmethod
    def relative(
        cls,
        trace: Trace,
        proxy_frac: float,
        browser_sizing: str = "minimum",
        browser_frac: float | None = None,
        **kwargs,
    ) -> "SimulationConfig":
        """Size caches the way the paper's figures do.

        * ``browser_sizing="minimum"`` — browser cache is
          S_proxy / (10 n),
        * ``browser_sizing="average"`` — browser cache is
          *browser_frac* (default: *proxy_frac*) of the average
          infinite browser cache size.
        """
        check_positive("proxy_frac", proxy_frac)
        proxy_capacity = max(1, int(proxy_frac * trace.infinite_cache_bytes()))
        n_clients = max(1, trace.n_clients)
        if browser_sizing == "minimum":
            browser_capacity = minimum_browser_capacity(proxy_capacity, n_clients)
        elif browser_sizing == "average":
            browser_capacity = average_browser_capacity(
                trace, proxy_frac if browser_frac is None else browser_frac
            )
        else:
            raise ValueError(
                f"browser_sizing must be 'minimum' or 'average', got {browser_sizing!r}"
            )
        return cls(proxy_capacity=proxy_capacity, browser_capacity=browser_capacity, **kwargs)

    def with_(self, **overrides) -> "SimulationConfig":
        """Return a modified copy (dataclasses.replace convenience)."""
        return replace(self, **overrides)
