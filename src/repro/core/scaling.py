"""Client-scaling experiment (paper Figure 8).

"For each trace, we observe its hit ratio (or byte hit ratio) increment
changes by increasing the number of clients from 25%, to 50%, to 75%,
and to 100% of the total number of clients … the proxy cache size is
fixed to 10% of the infinite proxy cache size when the relative number
of clients is 100%."

The *increment* is the relative improvement of BAPS over the
conventional proxy-and-local-browser organization:

    increment = (metric_BAPS - metric_PLB) / metric_PLB
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SimulationConfig, average_browser_capacity
from repro.core.policies import Organization
from repro.core.simulator import simulate
from repro.traces.filters import select_clients
from repro.traces.record import Trace
from repro.util.fmt import ascii_table

__all__ = ["ScalingPoint", "ScalingResult", "run_scaling_experiment"]

PAPER_CLIENT_FRACTIONS = (0.25, 0.50, 0.75, 1.00)


@dataclass(frozen=True)
class ScalingPoint:
    """One x-axis point of Figure 8."""

    client_fraction: float
    n_clients: int
    n_requests: int
    hit_ratio_plb: float
    hit_ratio_baps: float
    byte_hit_ratio_plb: float
    byte_hit_ratio_baps: float

    @property
    def hit_ratio_increment(self) -> float:
        """Relative hit-ratio improvement of BAPS over PLB."""
        if self.hit_ratio_plb == 0:
            return 0.0
        return (self.hit_ratio_baps - self.hit_ratio_plb) / self.hit_ratio_plb

    @property
    def byte_hit_ratio_increment(self) -> float:
        if self.byte_hit_ratio_plb == 0:
            return 0.0
        return (self.byte_hit_ratio_baps - self.byte_hit_ratio_plb) / self.byte_hit_ratio_plb


@dataclass
class ScalingResult:
    """The full Figure 8 curve for one trace."""

    trace_name: str
    points: list[ScalingPoint]

    def increments(self, metric: str = "hit_ratio") -> list[tuple[float, float]]:
        """(client fraction, increment) pairs in fraction order."""
        attr = f"{metric}_increment"
        return [(p.client_fraction, getattr(p, attr)) for p in self.points]

    def is_monotonic(self, metric: str = "hit_ratio", slack: float = 0.0) -> bool:
        """Does the increment grow with the number of clients (the
        paper's scalability claim)?  *slack* tolerates small noise."""
        values = [inc for _, inc in self.increments(metric)]
        return all(b >= a - slack for a, b in zip(values, values[1:]))

    def table(self) -> str:
        headers = [
            "clients",
            "#",
            "HR(PLB)",
            "HR(BAPS)",
            "HR incr",
            "BHR(PLB)",
            "BHR(BAPS)",
            "BHR incr",
        ]
        rows = []
        for p in self.points:
            rows.append(
                [
                    f"{p.client_fraction * 100:g}%",
                    p.n_clients,
                    f"{p.hit_ratio_plb * 100:.2f}%",
                    f"{p.hit_ratio_baps * 100:.2f}%",
                    f"{p.hit_ratio_increment * 100:.2f}%",
                    f"{p.byte_hit_ratio_plb * 100:.2f}%",
                    f"{p.byte_hit_ratio_baps * 100:.2f}%",
                    f"{p.byte_hit_ratio_increment * 100:.2f}%",
                ]
            )
        return ascii_table(headers, rows, title=f"{self.trace_name}: client scaling")


def run_scaling_experiment(
    trace: Trace,
    client_fractions=PAPER_CLIENT_FRACTIONS,
    proxy_frac: float = 0.10,
    browser_frac: float = 0.10,
    order: str = "id",
    **config_overrides,
) -> ScalingResult:
    """Run BAPS vs proxy-and-local-browser at each relative client count.

    The proxy capacity and per-client browser capacity are computed
    once from the *full* trace and held fixed across subsets, per the
    paper's setup.
    """
    proxy_capacity = max(1, int(proxy_frac * trace.infinite_cache_bytes()))
    browser_capacity = average_browser_capacity(trace, browser_frac)
    points = []
    for frac in client_fractions:
        sub = trace if frac >= 1.0 else select_clients(trace, fraction=frac, order=order)
        config = SimulationConfig(
            proxy_capacity=proxy_capacity,
            browser_capacity=browser_capacity,
            **config_overrides,
        )
        plb = simulate(sub, Organization.PROXY_AND_LOCAL_BROWSER, config)
        baps = simulate(sub, Organization.BROWSERS_AWARE_PROXY, config)
        points.append(
            ScalingPoint(
                client_fraction=frac,
                n_clients=sub.n_clients,
                n_requests=len(sub),
                hit_ratio_plb=plb.hit_ratio,
                hit_ratio_baps=baps.hit_ratio,
                byte_hit_ratio_plb=plb.byte_hit_ratio,
                byte_hit_ratio_baps=baps.byte_hit_ratio,
            )
        )
    return ScalingResult(trace_name=trace.name, points=points)
