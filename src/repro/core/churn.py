"""Session-based client churn: correlated on/off holder availability.

The paper's §5 reliability discussion treats an offline browser as a
wasted round trip; the original engine modelled that with one Bernoulli
draw per remote-hit probe, which makes consecutive probes of the *same*
holder independent — unlike any real browser, which is gone for a whole
coffee break, not for one randomly chosen request.  Squirrel-style
decentralized web caches (see PAPERS.md) live or die by surviving
exactly this *correlated* churn.

This module models each client as an alternating renewal process:
online sessions and offline gaps with configurable mean durations,
drawn from seeded exponential or Pareto distributions and advanced by
*virtual request time* (the trace clock, never wall time).  The
process is:

* **deterministic** — per-client streams are seeded by
  :func:`~repro.util.rng.derive_seed` from ``(master seed, client)``,
  so a replay is bit-identical across processes and worker counts;
* **lazy** — a client's session timeline is materialised only when the
  engine first probes that client as a holder, and advanced only as
  far as the probe times require;
* **stationary at start** — the initial on/off state is drawn with the
  stationary availability ``mean_on / (mean_on + mean_off)``, so the
  beginning of a trace is not biased toward everyone being online.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.util.rng import derive_seed

__all__ = ["ChurnModel", "ChurnProcess", "MassChurnSchedule"]

#: supported session-duration distributions.
DISTRIBUTIONS = ("exponential", "pareto")


@dataclass(frozen=True)
class ChurnModel:
    """Parameters of the per-client on/off session process.

    Each client alternates between *online sessions* with mean
    ``mean_on_seconds`` and *offline gaps* with mean
    ``mean_off_seconds``.  ``distribution`` selects the session-length
    law: ``"exponential"`` gives memoryless sessions; ``"pareto"``
    gives heavy-tailed ones (many short sessions, a few very long —
    the shape measured for real browser sessions), parameterised by
    ``pareto_alpha`` (> 1 so the mean is finite) with the scale chosen
    to hit the configured mean.
    """

    mean_on_seconds: float = 1800.0
    mean_off_seconds: float = 600.0
    distribution: str = "exponential"
    pareto_alpha: float = 1.5

    def __post_init__(self) -> None:
        for name in ("mean_on_seconds", "mean_off_seconds"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0, got {getattr(self, name)}")
        if self.distribution not in DISTRIBUTIONS:
            raise ValueError(
                f"distribution must be one of {DISTRIBUTIONS}, "
                f"got {self.distribution!r}"
            )
        if self.distribution == "pareto" and self.pareto_alpha <= 1.0:
            raise ValueError(
                f"pareto_alpha must be > 1 for a finite mean session, "
                f"got {self.pareto_alpha}"
            )

    @property
    def availability(self) -> float:
        """Stationary fraction of time a client is online."""
        return self.mean_on_seconds / (self.mean_on_seconds + self.mean_off_seconds)


@dataclass(frozen=True)
class MassChurnSchedule:
    """Explicit windows during which a correlated cohort is offline.

    Session churn (:class:`ChurnModel`) makes clients independent;
    *mass* churn takes a whole cohort down together — office networks
    rebooting, a mobile population crossing a coverage gap.  The
    schedule is a sorted tuple of non-overlapping half-open
    ``(start, end)`` windows in virtual seconds, so arming it
    constructs no RNG (use
    :func:`repro.traces.synthetic.mass_churn_schedule` to generate
    wave schedules deterministically from a seed).
    """

    windows: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        windows = tuple(
            (float(start), float(end)) for start, end in self.windows
        )
        if not windows:
            raise ValueError("MassChurnSchedule needs at least one window")
        previous_end = 0.0
        for start, end in windows:
            if start < 0 or end <= start:
                raise ValueError(
                    f"mass-churn windows must satisfy 0 <= start < end, "
                    f"got {(start, end)!r}"
                )
            if start < previous_end:
                raise ValueError(
                    f"mass-churn windows must be sorted and non-overlapping, "
                    f"got {windows!r}"
                )
            previous_end = end
        object.__setattr__(self, "windows", windows)

    def offline_at(self, now: float) -> bool:
        """Is the cohort inside an offline window at time *now*?"""
        for start, end in self.windows:
            if now < start:
                return False
            if now < end:
                return True
        return False


class _ClientSessions:
    """One client's lazily-advanced session timeline."""

    __slots__ = ("model", "rng", "online", "until")

    def __init__(self, model: ChurnModel, seed: int, now: float) -> None:
        self.model = model
        self.rng = random.Random(seed)
        self.online = self.rng.random() < model.availability
        self.until = now + self._duration()

    def _duration(self) -> float:
        model = self.model
        mean = model.mean_on_seconds if self.online else model.mean_off_seconds
        if model.distribution == "pareto":
            scale = mean * (model.pareto_alpha - 1.0) / model.pareto_alpha
            return scale * self.rng.paretovariate(model.pareto_alpha)
        return self.rng.expovariate(1.0 / mean)

    def state_at(self, now: float) -> bool:
        while now >= self.until:
            self.online = not self.online
            self.until += self._duration()
        return self.online


class ChurnProcess:
    """Deterministic per-client session processes for one replay.

    ``online(client, now)`` answers whether *client* is reachable at
    virtual time *now*.  Query times must be non-decreasing per client
    (the engine replays the trace chronologically, so they are).
    """

    def __init__(self, model: ChurnModel, seed: int = 0) -> None:
        self.model = model
        self.seed = seed
        self._clients: dict[int, _ClientSessions] = {}

    def online(self, client: int, now: float) -> bool:
        """Is *client* inside an online session at time *now*?"""
        state = self._clients.get(client)
        if state is None:
            state = self._clients[client] = _ClientSessions(
                self.model, derive_seed(self.seed, "churn", client), now
            )
        return state.state_at(now)
