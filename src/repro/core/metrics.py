"""Simulation results: the two paper metrics plus breakdowns.

"Hit ratio is the ratio between the number of requests that hit in
browser caches or in the proxy cache and the total number of requests.
Byte hit ratio is the ratio between the number of bytes that hit in
browser caches or in the proxy cache and the total number of bytes
requested."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.stats import CacheStats
from repro.consistency.policies import ConsistencyStats
from repro.core.events import HitLocation
from repro.core.overhead import OverheadReport
from repro.index.staleness import StalenessStats

__all__ = ["SimulationResult", "HitBreakdown", "SweepTiming"]


@dataclass(frozen=True)
class SweepTiming:
    """Structured timing report for one sweep execution.

    ``cell_seconds`` is ordered by *cell index* (submission order), not
    completion order, so reports are deterministic under parallelism.
    ``speedup_vs_serial`` compares wall-clock time against the sum of
    per-cell latencies — the time a one-process replay of the same
    cells would have taken.

    ``workers`` is the *effective* pool width the engine actually used;
    ``requested_workers`` preserves what the caller asked for, so a
    multi-worker request that fell back to serial (e.g. a 1-cell grid)
    reports the fallback instead of silently claiming ``workers=0`` was
    requested.
    """

    workers: int
    n_cells: int
    wall_seconds: float
    cell_seconds: tuple[float, ...] = ()
    #: pool width the caller requested; ``None`` means "same as used".
    requested_workers: int | None = None
    #: per-phase replay wall clock aggregated across all cells, as
    #: ``(phase, seconds)`` pairs in canonical order — populated only
    #: when the engine ran serially with
    #: :attr:`~repro.core.parallel.EngineOptions.profile` enabled
    #: (worker processes cannot ship their timers back).
    phase_seconds: tuple[tuple[str, float], ...] = ()
    #: whether the per-cell timeout could actually be enforced: False
    #: when a timeout was requested but the platform lacks SIGALRM (or
    #: the engine ran off the main thread), so cells ran unbounded.
    timeout_supported: bool = True
    #: lifetime peak resident set size (bytes), maxed across the engine
    #: process and every worker that ran a cell; 0 when the platform
    #: exposes no RSS counter.  This is the capacity-planning figure:
    #: the smallest machine that could have replayed this sweep.
    peak_rss_bytes: int = 0
    #: peak tracemalloc-traced allocation (bytes) in the engine
    #: process, populated only when the caller was already tracing —
    #: attributes growth to Python objects, excludes numpy buffers
    #: allocated outside the traced allocator and the interpreter
    #: baseline, so it is a floor rather than a total.
    peak_traced_bytes: int | None = None
    #: sweep cells whose numbers came from the one-pass MRC analysis
    #: (:mod:`repro.analysis.mrc`) instead of a full replay; the MRC
    #: path derives all of them from a single trace traversal.
    mrc_points: int = 0

    @property
    def full_replays(self) -> int:
        """Cells that actually re-replayed the trace."""
        return max(0, self.n_cells - self.mrc_points)

    @property
    def replays_avoided(self) -> int:
        """Replays the one-pass MRC analysis saved: N predicted cells
        cost one traversal, so N-1 replays never happened."""
        return max(0, self.mrc_points - 1)

    @property
    def fell_back_to_serial(self) -> bool:
        """True when a multi-worker request executed in-process."""
        return (
            self.requested_workers is not None
            and self.requested_workers > 0
            and self.workers == 0
        )

    @property
    def total_cell_seconds(self) -> float:
        """Serial-equivalent time: the sum of per-cell latencies."""
        return sum(self.cell_seconds)

    @property
    def cells_per_second(self) -> float:
        return self.n_cells / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def mean_cell_seconds(self) -> float:
        return self.total_cell_seconds / self.n_cells if self.n_cells else 0.0

    @property
    def max_cell_seconds(self) -> float:
        return max(self.cell_seconds) if self.cell_seconds else 0.0

    @property
    def speedup_vs_serial(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_cell_seconds / self.wall_seconds

    @property
    def parallel_efficiency(self) -> float:
        """Speedup per worker (1.0 = perfect scaling)."""
        return self.speedup_vs_serial / max(1, self.workers)

    def render(self) -> str:
        from repro.util.fmt import ascii_table

        used = self.workers or "in-process"
        if self.fell_back_to_serial:
            used = f"in-process ({self.requested_workers} requested)"
        rows = [
            ["workers", used],
            ["cells", self.n_cells],
            ["wall time", f"{self.wall_seconds:.3f}s"],
            ["serial-equivalent time", f"{self.total_cell_seconds:.3f}s"],
            ["cells/sec", f"{self.cells_per_second:.2f}"],
            ["mean cell latency", f"{self.mean_cell_seconds:.3f}s"],
            ["max cell latency", f"{self.max_cell_seconds:.3f}s"],
            ["speedup vs serial", f"{self.speedup_vs_serial:.2f}x"],
            ["parallel efficiency", f"{self.parallel_efficiency:.2f}"],
        ]
        from repro.util.units import format_bytes

        if self.mrc_points:
            rows.append(["mrc-derived points", self.mrc_points])
            rows.append(["full replays", self.full_replays])
            rows.append(["replays avoided", self.replays_avoided])
        if self.peak_rss_bytes > 0:
            rows.append(["peak RSS", format_bytes(self.peak_rss_bytes)])
        if self.peak_traced_bytes is not None:
            rows.append(["peak traced alloc", format_bytes(self.peak_traced_bytes)])
        if not self.timeout_supported:
            rows.append(["cell timeout", "UNSUPPORTED on this platform"])
        for phase, seconds in self.phase_seconds:
            rows.append([f"phase: {phase}", f"{seconds:.3f}s"])
        return ascii_table(["quantity", "value"], rows, title="sweep timing")


@dataclass(frozen=True)
class HitBreakdown:
    """Figure 3's stacked bars: hit share by location, as fractions of
    all requests (or all bytes)."""

    local_browser: float
    proxy: float
    remote_browser: float

    @property
    def total(self) -> float:
        return self.local_browser + self.proxy + self.remote_browser

    def as_percentages(self) -> dict[str, float]:
        return {
            "local-browser": self.local_browser * 100,
            "proxy": self.proxy * 100,
            "remote-browsers": self.remote_browser * 100,
        }


@dataclass
class SimulationResult:
    """Everything measured in one simulation run."""

    trace_name: str
    organization: str
    n_requests: int = 0
    total_bytes: int = 0
    #: per-location counters; ORIGIN records misses.
    by_location: dict[HitLocation, CacheStats] = field(
        default_factory=lambda: {loc: CacheStats() for loc in HitLocation}
    )
    overhead: OverheadReport = field(default_factory=OverheadReport)
    index_stats: StalenessStats = field(default_factory=StalenessStats)
    consistency_stats: ConsistencyStats = field(default_factory=ConsistencyStats)
    index_lookups: int = 0
    index_false_hits: int = 0
    #: probes that found the holder offline (client churn); with
    #: failover enabled a request can contribute several.
    holder_unavailable: int = 0
    #: extra holder candidates probed after the primary holder failed
    #: (offline, stale, or integrity-failing).
    failover_attempts: int = 0
    #: remote hits served by a backup holder after the primary failed —
    #: requests the single-holder engine would have sent to origin.
    failover_rescued_hits: int = 0
    #: remote transfers rejected by the §6 integrity check and
    #: retransmitted (from the next holder or the origin).
    integrity_failures: int = 0
    #: corrupted transfers served by configured *polluter* peers — the
    #: adversarial subset of ``integrity_failures`` (0 without an
    #: :class:`~repro.adversarial.AdversarialConfig`).
    corrupt_deliveries: int = 0
    #: requests whose delivery path hit at least one corrupted transfer
    #: (adversarial mode only; a request probing several polluters
    #: counts once).
    poisoned_requests: int = 0
    #: quarantine events: a holder crossing ``quarantine_threshold``
    #: integrity failures and being blacklisted.  A holder re-admitted
    #: after ``quarantine_decay`` and quarantined again counts again.
    quarantined_peers: int = 0
    #: remote hits served after the blacklist filtered at least one
    #: quarantined candidate out of the index lookup — requests the
    #: undefended engine would have steered into a bad holder.
    quarantine_rescued_hits: int = 0
    #: proxy cold restarts injected by the crash model.
    proxy_crashes: int = 0
    #: virtual seconds spent in degraded mode (crash until the last
    #: scheduled re-announcement lands), summed over all crashes.
    recovery_time: float = 0.0
    #: requests served while the index was still rebuilding.
    degraded_window_requests: int = 0
    #: requests during recovery that a browser could have served but
    #: the partial index did not know about — the recovery analogue of
    #: a false miss.
    hits_lost_to_recovery: int = 0
    #: bytes serialised by the index checkpointer (full + incremental).
    checkpoint_bytes_written: int = 0
    #: requests served from a *sibling proxy's* population after a full
    #: local miss (federation mode; recorded at SIBLING_PROXY).
    interproxy_hits: int = 0
    #: inter-proxy probes sent because a stale digest still claimed a
    #: document the peer could no longer serve (each costs a wasted
    #: inter-proxy round trip charged to ``wasted_false_hit_time``).
    digest_false_hits: int = 0
    #: requests a peer could have served but whose digest predated the
    #: document — the cost of digest staleness in the other direction.
    digest_missed_hits: int = 0
    #: digest summary bytes shipped between proxies at exchanges.
    #: Copies a partition dropped are *not* charged here (see
    #: ``digest_exchanges_lost``).
    digest_bytes_exchanged: int = 0
    #: digest copies a partition prevented from being delivered — the
    #: receiving proxy keeps serving from its stale view (link-fault
    #: mode; each undelivered per-peer copy counts one).
    digest_exchanges_lost: int = 0
    #: inter-proxy partition windows entered during the replay
    #: (link-fault mode).
    partition_windows: int = 0
    #: connection-setup time burnt probing digest-claimed peers that a
    #: partition made unreachable (also charged to
    #: ``wasted_round_trip_time``; this counter attributes it).
    wasted_partition_time: float = 0.0
    #: digest bytes shipped by post-heal anti-entropy refreshes, kept
    #: separate from the periodic ``digest_bytes_exchanged``.
    antientropy_bytes: int = 0
    #: inter-proxy link occupancy (document transfers, failed probes,
    #: digest exchanges).  Informational — the link runs in parallel
    #: with the LAN legs, so it is not part of ``total_service_time``.
    interproxy_bandwidth_time: float = 0.0
    index_peak_entries: int = 0
    index_peak_footprint_bytes: int = 0
    uses_memory_tier: bool = False

    # -- recording (engine-facing) ---------------------------------------

    def record(self, location: HitLocation, size: int, memory: bool | None = None) -> None:
        self.n_requests += 1
        self.total_bytes += size
        stats = self.by_location[location]
        if location is HitLocation.ORIGIN:
            stats.record_miss(size)
        elif memory is None:
            stats.record_hit(size)
        else:
            stats.record_tier_hit(size, memory)

    # -- paper metrics ------------------------------------------------------

    @property
    def hits(self) -> int:
        return sum(
            s.hits for loc, s in self.by_location.items() if loc is not HitLocation.ORIGIN
        )

    @property
    def hit_bytes(self) -> int:
        return sum(
            s.hit_bytes
            for loc, s in self.by_location.items()
            if loc is not HitLocation.ORIGIN
        )

    def by_location_remote_hits(self) -> int:
        """Requests served from remote browser caches."""
        return self.by_location[HitLocation.REMOTE_BROWSER].hits

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.n_requests if self.n_requests else 0.0

    @property
    def byte_hit_ratio(self) -> float:
        return self.hit_bytes / self.total_bytes if self.total_bytes else 0.0

    @property
    def memory_byte_hit_ratio(self) -> float:
        """Bytes served from *memory* tiers over all bytes requested
        (§4.2).  Zero unless the run used the tiered cache model."""
        if not self.total_bytes:
            return 0.0
        mem = sum(
            s.memory_hit_bytes
            for loc, s in self.by_location.items()
            if loc is not HitLocation.ORIGIN
        )
        return mem / self.total_bytes

    @property
    def disk_byte_hit_ratio(self) -> float:
        if not self.total_bytes:
            return 0.0
        disk = sum(
            s.disk_hit_bytes
            for loc, s in self.by_location.items()
            if loc is not HitLocation.ORIGIN
        )
        return disk / self.total_bytes

    def breakdown(self) -> HitBreakdown:
        """Hit-ratio breakdown by location (fractions of all requests)."""
        n = self.n_requests or 1
        return HitBreakdown(
            local_browser=self.by_location[HitLocation.LOCAL_BROWSER].hits / n,
            proxy=self.by_location[HitLocation.PROXY].hits / n,
            remote_browser=self.by_location[HitLocation.REMOTE_BROWSER].hits / n,
        )

    def byte_breakdown(self) -> HitBreakdown:
        """Byte-hit-ratio breakdown by location (fractions of all bytes)."""
        b = self.total_bytes or 1
        return HitBreakdown(
            local_browser=self.by_location[HitLocation.LOCAL_BROWSER].hit_bytes / b,
            proxy=self.by_location[HitLocation.PROXY].hit_bytes / b,
            remote_browser=self.by_location[HitLocation.REMOTE_BROWSER].hit_bytes / b,
        )

    @property
    def mean_response_time(self) -> float:
        """Estimated mean per-request service time in seconds — the
        user-facing summary of the whole latency model."""
        if not self.n_requests:
            return 0.0
        return self.overhead.total_service_time / self.n_requests

    def total_hit_latency(self) -> float:
        """Estimated time spent serving hits (the §4.2 latency basis)."""
        return (
            self.overhead.local_hit_time
            + self.overhead.proxy_hit_time
            + self.overhead.remote_storage_time
            + self.overhead.remote_communication_time
        )

    def summary(self) -> dict[str, float]:
        """Compact dictionary of headline numbers (for printing)."""
        bd = self.breakdown()
        return {
            "hit_ratio": self.hit_ratio,
            "byte_hit_ratio": self.byte_hit_ratio,
            "local_share": bd.local_browser,
            "proxy_share": bd.proxy,
            "remote_share": bd.remote_browser,
            "communication_fraction": self.overhead.communication_fraction,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulationResult({self.trace_name!r}, {self.organization!r}, "
            f"HR={self.hit_ratio:.4f}, BHR={self.byte_hit_ratio:.4f})"
        )
