"""Deterministic fault injection for the sweep engine.

The paper treats peers as transient: holders go offline, indices lie,
round trips are wasted.  Our own execution layer gets the same
treatment — the recovery paths in :mod:`repro.core.parallel` (retry,
pool rebuild, quarantine, resume) are only trustworthy if they can be
exercised on demand.  A :class:`FaultPlan` injects failures at exact
(cell, attempt) coordinates so every recovery path has a reproducible
test:

* ``raise`` — the cell raises mid-execution (a transient crash; the
  retry path must absorb it);
* ``kill``  — the worker process hard-exits (``os._exit``), breaking
  the process pool (the pool-rebuild path must requeue survivors);
* ``hang``  — the cell sleeps past its deadline (the per-cell timeout
  path must reclaim it).

Faults are keyed by *attempt number*, so "fail on attempt 0 only"
models a transient error that a single retry cures, while "fail on
every attempt" models a poisoned cell that must be quarantined.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["InjectedFault", "FaultPlan", "InjectedFailure", "WorkerKilled"]

#: recognised fault kinds.
FAULT_KINDS = ("raise", "kill", "hang")


class InjectedFailure(RuntimeError):
    """Raised by a ``raise`` fault (and by a ``kill`` fault when the
    engine runs in-process, where exiting would take down the caller)."""


class WorkerKilled(InjectedFailure):
    """The in-process stand-in for a worker hard-exit."""


@dataclass(frozen=True)
class InjectedFault:
    """Fail one cell on one specific attempt."""

    cell_index: int
    kind: str = "raise"
    attempt: int = 0
    #: how long a ``hang`` fault sleeps (must exceed the cell timeout
    #: to trigger it; irrelevant for other kinds).
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.cell_index < 0:
            raise ValueError(f"cell_index must be >= 0, got {self.cell_index}")
        if self.attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {self.attempt}")

    def describe(self) -> str:
        return f"{self.kind} cell {self.cell_index} on attempt {self.attempt}"


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of injected faults for one engine run.

    Ships to worker processes with the trace registry, so injection
    behaves identically in-process and across the pool.
    """

    faults: tuple[InjectedFault, ...] = ()

    def fault_for(self, cell_index: int, attempt: int) -> InjectedFault | None:
        for fault in self.faults:
            if fault.cell_index == cell_index and fault.attempt == attempt:
                return fault
        return None

    def __bool__(self) -> bool:
        return bool(self.faults)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a CLI fault spec: ``kind:cell[@attempt]``, comma-joined.

        ``"kill:3"`` kills the worker running cell 3 on attempt 0;
        ``"raise:1@0,raise:1@1"`` crashes cell 1 on its first two
        attempts; ``"hang:2"`` makes cell 2 overrun its timeout.
        """
        faults = []
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            kind, _, rest = chunk.partition(":")
            if not rest:
                raise ValueError(
                    f"bad fault spec {chunk!r}: expected kind:cell[@attempt]"
                )
            cell_str, _, attempt_str = rest.partition("@")
            faults.append(
                InjectedFault(
                    cell_index=int(cell_str),
                    kind=kind.strip(),
                    attempt=int(attempt_str) if attempt_str else 0,
                )
            )
        return cls(faults=tuple(faults))
