"""Cooperative multi-proxy federation (Summary-Cache digest exchange).

The paper evaluates BAPS behind a single proxy.  This package shards
the client population over N cooperating proxies — each running the
full per-proxy engine (browser index, checkpointing, crash recovery,
churn, failover) — and lets a local miss be served as a cross-proxy
remote hit: proxies periodically exchange bloom digests of everything
they can currently serve (their proxy cache plus their browser index's
claimed contents), and a miss probes the peers whose digest claims the
document over a modeled inter-proxy link.

Digest staleness is accountable, in both directions:

* a digest that still claims a document its proxy can no longer serve
  costs a wasted inter-proxy round trip (``digest_false_hits``,
  charged to ``wasted_false_hit_time``);
* a document that became servable after the last exchange is invisible
  until the next one (``digest_missed_hits``).

The inter-proxy fabric itself can fail: a
:class:`~repro.federation.linkfaults.LinkFaultModel` on
``FederationConfig.link_faults`` makes proxy-pair connectivity
time-varying — digest copies to unreachable peers are dropped
(``digest_exchanges_lost``; staleness accrues asymmetrically), probes
to digest-claimed but unreachable peers fail fast
(``wasted_partition_time``), and healing triggers an anti-entropy
digest refresh (``antientropy_bytes``).

Enable it with :class:`~repro.core.config.FederationConfig` on
``SimulationConfig.federation``; :func:`repro.core.simulator.simulate`
dispatches here, so sweeps, the journal, and process-pool workers work
unchanged.
"""

from repro.federation.digest import DigestDirectory, build_proxy_digest
from repro.federation.engine import FederatedSimulator, federated_simulate
from repro.federation.linkfaults import LinkFaultModel, PartitionSchedule

__all__ = [
    "DigestDirectory",
    "build_proxy_digest",
    "FederatedSimulator",
    "federated_simulate",
    "LinkFaultModel",
    "PartitionSchedule",
]
