"""Inter-proxy link partitions: when the federation fabric splits.

The PR 6 federation assumes a perfect inter-proxy network: digest
exchanges never fail and every peer is always reachable.  Cooperative-
cache surveys identify inter-cache link failure and the stale-directory
divergence it causes as the dominant failure mode of Summary-Cache-
style digest schemes — a partitioned proxy keeps *advertising* (through
its last delivered digest) documents its peers can no longer fetch,
and keeps *missing* everything cached on the other side.

:class:`LinkFaultModel` describes when partitions happen;
:class:`PartitionSchedule` materialises them for one replay.  Like
:class:`~repro.core.proxy_faults.ProxyFaultSchedule` the schedule is
virtual-time driven, deterministic (rate-based schedules draw gaps and
lengths from ``derive_seed(master, "link-faults")``; explicit window
lists construct no RNG at all), and lazy — windows past the end of the
trace are never drawn.

A partition splits the proxies into two contiguous halves — pids
``[0, n // 2)`` against ``[n // 2, n)`` — the deterministic worst case
for an interleaved client assignment, where every proxy loses roughly
half its peers.  Windows are half-open ``[start, end)`` on the trace
clock, matching :class:`~repro.core.churn.MassChurnSchedule`.

What a partition *does* — dropped digest copies, asymmetric staleness,
fail-fast probes charged to ``wasted_partition_time``, post-heal
anti-entropy — is the engine's job (see :mod:`repro.federation.engine`
and :mod:`repro.federation.digest`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.util.rng import derive_seed
from repro.util.validation import (
    check_partition_schedule,
    check_partition_windows,
    check_positive,
)

__all__ = ["LinkFaultModel", "PartitionSchedule"]


@dataclass(frozen=True)
class LinkFaultModel:
    """When the inter-proxy fabric partitions.

    Either ``partition_windows`` lists explicit ``(start, end)`` windows
    (virtual seconds into the trace; the reproducible choice for
    experiments and tests) or ``partition_rate`` draws exponential gaps
    between windows with mean ``1 / partition_rate`` and exponential
    window lengths with mean ``mean_partition_seconds``.  The two
    sources are mutually exclusive.
    """

    partition_rate: float = 0.0
    partition_windows: tuple[tuple[float, float], ...] | None = None
    mean_partition_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.partition_windows is not None:
            object.__setattr__(
                self,
                "partition_windows",
                tuple(
                    sorted(
                        (float(a), float(b)) for a, b in self.partition_windows
                    )
                ),
            )
        check_partition_schedule(self.partition_rate, self.partition_windows)
        check_partition_windows(self.partition_windows)
        check_positive("mean_partition_seconds", self.mean_partition_seconds)

    @property
    def is_explicit(self) -> bool:
        """True when the schedule is a literal window list (no RNG)."""
        return self.partition_windows is not None


class PartitionSchedule:
    """Partition windows of one replay, consumed in virtual-time order.

    The engine calls :meth:`poll` at the top of each request;
    it advances the window state machine to *now* and returns
    ``(entered, healed)`` — how many windows opened and closed since
    the last poll, so the engine can count ``partition_windows`` and
    trigger post-heal anti-entropy.  While a window is open,
    :meth:`connected` answers whether two proxies can still reach each
    other (same side of the split).
    """

    def __init__(self, model: LinkFaultModel, n_proxies: int, seed: int = 0) -> None:
        check_positive("n_proxies", n_proxies)
        self.model = model
        self.n_proxies = n_proxies
        #: side A is pids < boundary, side B the rest.
        self._boundary = max(1, n_proxies // 2)
        self._active: tuple[float, float] | None = None
        if model.is_explicit:
            self._windows = model.partition_windows
            self._pos = 0
            self._rng = None
            self._next: tuple[float, float] | None = (
                self._windows[0] if self._windows else None
            )
        else:
            self._windows = None
            self._pos = 0
            self._rng = random.Random(derive_seed(seed, "link-faults"))
            self._next = self._draw_after(0.0)

    def _draw_after(self, last_end: float) -> tuple[float, float]:
        """The window following the one that healed at *last_end*."""
        model = self.model
        assert self._rng is not None
        start = last_end + self._rng.expovariate(model.partition_rate)
        length = self._rng.expovariate(1.0 / model.mean_partition_seconds)
        return start, start + length

    def _advance_next(self, last_end: float) -> None:
        if self._windows is not None:
            self._pos += 1
            self._next = (
                self._windows[self._pos]
                if self._pos < len(self._windows)
                else None
            )
        else:
            self._next = self._draw_after(last_end)

    @property
    def active(self) -> bool:
        """Is a partition window currently open?"""
        return self._active is not None

    def poll(self, now: float) -> tuple[int, int]:
        """Advance to virtual time *now*; returns ``(entered, healed)``.

        Processes every window boundary crossed since the last poll in
        order, so a long request gap that spans several whole windows
        still counts each one (and each heal) exactly once.
        """
        entered = 0
        healed = 0
        while True:
            if self._active is not None:
                start, end = self._active
                if now >= end:
                    self._active = None
                    healed += 1
                    self._advance_next(end)
                    continue
                break
            nxt = self._next
            if nxt is None or now < nxt[0]:
                break
            self._active = nxt
            entered += 1
        return entered, healed

    def connected(self, p: int, q: int) -> bool:
        """Can proxies *p* and *q* reach each other right now?"""
        if self._active is None or p == q:
            return True
        boundary = self._boundary
        return (p < boundary) == (q < boundary)
