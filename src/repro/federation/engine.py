"""The cooperative multi-proxy replay engine.

Shards the client population over ``FederationConfig.n_proxies``
proxies, each a full per-proxy :class:`~repro.core.simulator.Simulator`
(browser index, checkpointing, crash recovery, churn and failover all
intact), and adds one escalation step between the home proxy's index
and the origin: probe the peer proxies whose exchanged bloom digest
claims the document (:mod:`repro.federation.digest`) over the modeled
inter-proxy link.

The per-request path for client *c* assigned to proxy *P*:

1. *c*'s browser cache at *P*;
2. *P*'s proxy cache;
3. *P*'s browser index → remote browser in *P*'s shard (with the
   usual failover/churn/integrity machinery);
4. **federation**: for each peer *Q* whose digest claims the document,
   try *Q*'s proxy cache, then *Q*'s index → a browser in *Q*'s shard;
   a serve is a ``SIBLING_PROXY`` hit priced with one inter-proxy
   transfer; a claim that does not pan out is a ``digest_false_hits``
   wasted round trip;
5. the origin.

Every proxy runs against the full trace with per-proxy state arrays —
non-member clients simply never touch proxy *P*'s browsers or index —
and all per-proxy engines share ONE :class:`SimulationResult`, so the
engine-internal accounting helpers (failover waste, bus legs, recovery
windows) charge the federation's single ledger directly.

Determinism: with ``n_proxies == 1`` the loop below reproduces the
single-proxy engine's straight-line request path operation for
operation (the digest directory never exchanges), so the result is
bit-identical to :func:`repro.core.simulator.simulate` without
federation — the anchor the experiment and tests rely on.  With
``n_proxies > 1`` and any stochastic knob active, each proxy derives
an independent seed stream via
``derive_seed(availability_seed, "federation-proxy", pid)`` so
availability/corruption draws at different proxies are uncorrelated
while staying independent of worker count and completion order.
"""

from __future__ import annotations

from repro.core.chaos import InvariantMonitor
from repro.core.config import SimulationConfig
from repro.core.events import HitLocation
from repro.core.metrics import SimulationResult
from repro.core.policies import Organization
from repro.core.simulator import Simulator, _dense_client_count, bloom_expected_docs
from repro.federation.digest import DigestDirectory
from repro.federation.linkfaults import PartitionSchedule
from repro.hierarchy.config import assign_proxy
from repro.index.staleness import StalenessStats
from repro.traces.record import Trace
from repro.util.rng import derive_seed

__all__ = ["FederatedSimulator", "federated_simulate"]


class FederatedSimulator:
    """N cooperating per-proxy engines plus digest-directed escalation."""

    def __init__(
        self,
        trace: Trace,
        organization: Organization,
        config: SimulationConfig,
    ) -> None:
        if config.chaos is not None:
            # Resolve a composed chaos plan once, here, so every knob
            # below (faults, churn, link faults, seed) sees the
            # installed models; compose() is idempotent.
            config = config.chaos.compose(config)
        fed = config.federation
        if fed is None:
            raise ValueError("FederatedSimulator requires config.federation")
        self.trace = trace
        self.organization = organization
        self.config = config
        self.fed = fed
        self.features = organization.features
        # Same dense-id contract as the per-proxy engines (which
        # re-validate it); aligning on Trace.n_clients keeps the owner
        # table sized by clients that exist, not by the highest raw id.
        n_clients = _dense_client_count(trace)
        self.n_clients = n_clients

        # Each per-proxy engine runs the plain single-proxy config; the
        # federation layer owns all cross-proxy behavior (and the
        # resolved chaos residue — the invariant monitor — lives here,
        # not on the per-proxy engines, whose loops never run).
        base = config.with_(federation=None, chaos=None)
        self.base = base
        stochastic = (
            base.holder_availability < 1.0
            or base.churn is not None
            or base.corruption_rate > 0.0
            or base.proxy_faults is not None
        )
        self.sims: list[Simulator] = []
        for pid in range(fed.n_proxies):
            cfg = base
            if stochastic and fed.n_proxies > 1:
                cfg = base.with_(
                    availability_seed=derive_seed(
                        base.availability_seed, "federation-proxy", pid
                    )
                )
            self.sims.append(Simulator(trace, organization, cfg))

        # One shared ledger: the per-proxy engines' own helpers (probe
        # waste, recovery windows, index false hits, ...) charge it
        # directly, so nothing federated needs re-deriving at merge time.
        self.result = SimulationResult(
            trace_name=trace.name,
            organization=organization.value,
            uses_memory_tier=config.memory_fraction is not None,
        )
        for sim in self.sims:
            sim.result = self.result

        self.owner = [
            assign_proxy(c, fed.n_proxies, n_clients, fed.partition)
            for c in range(n_clients)
        ]
        self._needs_recovery = [
            sim._fault_schedule is not None or sim._checkpointer is not None
            for sim in self.sims
        ]
        # One global fabric schedule, seeded from the shared master so
        # partitions hit every proxy pair at the same virtual instant
        # regardless of worker count or per-proxy sub-streams.
        lf = fed.link_faults
        self.link_schedule: PartitionSchedule | None = (
            PartitionSchedule(lf, fed.n_proxies, seed=config.availability_seed)
            if lf is not None and fed.n_proxies > 1
            else None
        )
        self.directory = DigestDirectory(
            fed,
            self._digest_capacity(),
            partitioned=self.link_schedule is not None,
        )
        chaos = config.chaos
        self.monitor: InvariantMonitor | None = (
            InvariantMonitor(config, chaos.check_invariants_every)
            if chaos is not None and chaos.monitored
            else None
        )

    def _digest_capacity(self) -> int:
        """Expected distinct documents one proxy's digest must cover.

        Proxy-cache slots plus the shard's browser-index claims, both
        sized by :func:`bloom_expected_docs`'s arithmetic so the digest
        budgets false positives consistently with the per-client
        summaries it aggregates.
        """
        trace = self.trace
        avg_doc = max(1, int(trace.mean_request_size)) if len(trace) else 1
        capacity = 0
        if self.features.has_proxy:
            capacity += max(1, self.base.proxy_capacity // avg_doc)
        if self.features.has_browsers and self.features.has_index:
            per_client = bloom_expected_docs(
                trace,
                self.sims[0]._browser_capacities(self.n_clients),
                self.base.browser_capacity,
            )
            members = -(-self.n_clients // self.fed.n_proxies)  # ceil
            capacity += per_client * members
        return max(8, capacity)

    # -- the replay loop ----------------------------------------------------

    def run(self) -> SimulationResult:
        features = self.features
        config = self.base
        fed = self.fed
        result = self.result
        overhead = result.overhead
        sims = self.sims
        owner = self.owner
        needs_recovery = self._needs_recovery
        directory = self.directory
        schedule = self.link_schedule
        monitor = self.monitor
        lan = config.lan
        wan = config.wan
        federated = fed.n_proxies > 1

        for t, c, d, s, v in self.trace.iter_rows():
            if schedule is not None:
                entered, healed = schedule.poll(t)
                if entered:
                    result.partition_windows += entered
                if healed:
                    # The fabric healed since the last request: the
                    # separated sides reconcile their digest views.
                    directory.antientropy(sims, t, result)
            if monitor is not None:
                monitor.tick(result)
            pid = owner[c]
            sim = sims[pid]
            if needs_recovery[pid]:
                sim._advance_recovery(t)
            if federated:
                directory.maybe_exchange(sims, t, result, schedule)

            # 1. local browser cache
            if features.has_browsers:
                entry, memory = sim._get(sim.browsers[c], d)
                if entry is not None and entry.version == v:
                    result.record(HitLocation.LOCAL_BROWSER, s, memory)
                    overhead.local_hit_time += sim._storage_time(s, memory)
                    continue

            # 2. home proxy cache
            if sim.proxy is not None:
                entry, memory = sim._get(sim.proxy, d)
                if entry is not None and entry.version == v:
                    result.record(HitLocation.PROXY, s, memory)
                    overhead.proxy_hit_time += sim._storage_time(
                        s, memory
                    ) + lan.transfer_time(s)
                    if features.has_browsers:
                        sim._browser_put(c, d, s, v, t)
                    continue

            # 3. home browser index -> remote browser (with failover)
            if sim.index is not None:
                remote_served, memory = sim._remote_delivery(c, d, s, v, t)
                if remote_served:
                    result.record(HitLocation.REMOTE_BROWSER, s, memory)
                    overhead.remote_storage_time += sim._storage_time(s, memory)
                    if sim._security is not None:
                        overhead.security_time += sim._security.transfer_cost(s)
                    if features.caches_remote_fetches:
                        sim._browser_put(c, d, s, v, t)
                        if config.cache_remote_hits_at_proxy and sim.proxy is not None:
                            sim.proxy.put(d, s, v)
                    self._track_peak()
                    continue

            # 4. federation: peers whose digest claims the document
            if federated and self._interproxy_fetch(sim, pid, c, d, s, v, t):
                continue

            # 5. origin server
            result.record(HitLocation.ORIGIN, s)
            overhead.origin_miss_time += wan.fetch_time(s) + lan.transfer_time(s)
            if sim.proxy is not None:
                sim.proxy.put(d, s, v)
            if features.has_browsers:
                sim._browser_put(c, d, s, v, t)
            if sim.index is not None:
                self._track_peak()

        return self._finalise()

    # -- the inter-proxy step ------------------------------------------------

    def _interproxy_fetch(
        self, home: Simulator, pid: int, c: int, d: int, s: int, v: int, t: float
    ) -> bool:
        """Probe every peer whose digest claims *d*; serve from the
        first that can.  Returns True when the request was served.

        A claim that fails (evicted since the exchange, wrong version,
        bloom collision, churned-away holders) is a digest false hit:
        the home proxy paid an inter-proxy round trip for nothing —
        charged to ``wasted_false_hit_time`` exactly like an index
        false hit, never silently rescued.  A claimed peer on the other
        side of an open partition fails *fast*: the home proxy burns
        one connection setup (charged to ``wasted_round_trip_time`` and
        attributed to ``wasted_partition_time``) and the peer is never
        consulted — its caches, clocks, and RNG streams stay untouched.
        After all claimants fail, reachable peers whose digest did
        *not* claim *d* are checked (side-effect free) for the opposite
        staleness: a peer that could have served counts one
        ``digest_missed_hits``.
        """
        fed = self.fed
        sims = self.sims
        directory = self.directory
        schedule = self.link_schedule
        result = self.result
        overhead = result.overhead
        n = fed.n_proxies
        for offset in range(1, n):
            q = (pid + offset) % n
            if not directory.claims(sims, q, d, viewer=pid):
                continue
            if schedule is not None and not schedule.connected(pid, q):
                setup = fed.interproxy_setup
                overhead.wasted_round_trip_time += setup
                result.wasted_partition_time += setup
                continue
            qsim = sims[q]
            # The peer's crash/checkpoint clock advances when it is
            # probed, so the probe sees the peer's state at time t
            # (including any recovery degradation), not its state at
            # the peer's last home request.
            if self._needs_recovery[q]:
                qsim._advance_recovery(t)
            served, memory = self._peer_serve(qsim, c, d, s, v, t)
            if served:
                self._account_interproxy_hit(home, c, d, s, v, t, memory)
                return True
            result.digest_false_hits += 1
            setup = fed.interproxy_setup
            overhead.wasted_round_trip_time += setup
            overhead.wasted_false_hit_time += setup
            result.interproxy_bandwidth_time += setup
        for offset in range(1, n):
            q = (pid + offset) % n
            if schedule is not None and not schedule.connected(pid, q):
                # An unreachable peer is partition loss, not digest
                # staleness — never a missed hit.
                continue
            if directory.claims(sims, q, d, viewer=pid):
                continue
            if self._could_serve(sims[q], c, d, v):
                result.digest_missed_hits += 1
                break
        return False

    def _peer_serve(
        self, qsim: Simulator, c: int, d: int, s: int, v: int, t: float
    ) -> tuple[bool, bool | None]:
        """One peer's attempt to serve (doc, version): its proxy cache,
        then its index → a browser in its shard.  The peer's own
        engine machinery runs the remote leg, so failover, churn,
        integrity failures and recovery staleness are priced exactly as
        they would be for the peer's own clients — onto the shared
        ledger."""
        if qsim.proxy is not None:
            entry, memory = qsim._get(qsim.proxy, d)
            if entry is not None and entry.version == v:
                return True, memory
        if qsim.index is not None:
            # c is never in the peer's shard, so exclude_client is inert.
            return qsim._remote_delivery(c, d, s, v, t)
        return False, None

    def _account_interproxy_hit(
        self,
        home: Simulator,
        c: int,
        d: int,
        s: int,
        v: int,
        t: float,
        memory: bool | None,
    ) -> None:
        """Price a cross-proxy serve: one storage read at the peer, the
        inter-proxy transfer (informational link occupancy), and the
        home LAN leg to the client; then populate the home caches when
        ``cache_interproxy_fetches`` is on."""
        fed = self.fed
        result = self.result
        overhead = result.overhead
        result.record(HitLocation.SIBLING_PROXY, s, memory)
        result.interproxy_hits += 1
        overhead.remote_storage_time += home._storage_time(s, memory)
        result.interproxy_bandwidth_time += fed.transfer_time(s)
        home.bus.submit(t, s)
        if home._security is not None:
            overhead.security_time += home._security.transfer_cost(s)
        if fed.cache_interproxy_fetches:
            if home.proxy is not None:
                home.proxy.put(d, s, v)
            if self.features.has_browsers:
                home._browser_put(c, d, s, v, t)
            if home.index is not None:
                self._track_peak()

    def _could_serve(self, qsim: Simulator, c: int, d: int, v: int) -> bool:
        """Side-effect-free oracle: could this peer have served (d, v)
        right now?  Mirrors :meth:`_peer_serve` with ``peek``/truth
        queries so the missed-hit counter never perturbs cache or RNG
        state."""
        if qsim.proxy is not None:
            held = qsim.proxy.peek(d)
            if held is not None and held.version == v:
                return True
        return qsim.index is not None and qsim._truth_holds(d, v, exclude=c)

    # -- accounting ----------------------------------------------------------

    def _track_peak(self) -> None:
        """Aggregate index peak across all proxies (reduces to
        ``Simulator._track_index_peak`` for one proxy)."""
        sims = self.sims
        total = 0
        for sim in sims:
            if sim.index is not None:
                total += sim.index.n_entries
        result = self.result
        if total > result.index_peak_entries:
            result.index_peak_entries = total
            result.index_peak_footprint_bytes = sum(
                sim.index.footprint_bytes()
                for sim in sims
                if sim.index is not None
            )

    def _finalise(self) -> SimulationResult:
        """Fold per-proxy tails into the shared result.

        Mirrors ``Simulator._finalise`` per proxy — bus absorption,
        open recovery windows, index-generation folding — then merges
        the per-proxy index accounting, so one proxy reduces to the
        single-proxy finalise exactly."""
        result = self.result
        stats: StalenessStats | None = None
        lookups = 0
        messages = 0
        checkpoint_bytes = 0
        has_checkpointer = False
        for sim in self.sims:
            result.overhead.absorb_bus(sim.bus.stats)
            if sim._recovering:
                sim._close_window(sim._last_t)
            if sim.index is not None:
                sim_stats = sim.index.stats
                sim_lookups = sim.index.n_lookups
                sim_messages = sim.index.update_messages
                if sim._fault_schedule is not None:
                    sim_stats = sim._prior_stats.merged(sim_stats)
                    sim_lookups += sim._prior_lookups
                    sim_messages += sim._prior_update_messages
                stats = sim_stats if stats is None else stats.merged(sim_stats)
                lookups += sim_lookups
                messages += sim_messages
            if sim._checkpointer is not None:
                has_checkpointer = True
                checkpoint_bytes += sim._checkpointer.bytes_written
        if stats is not None:
            result.index_stats = stats
            result.index_lookups = lookups
            result.overhead.index_update_messages = messages
        if has_checkpointer:
            result.checkpoint_bytes_written = checkpoint_bytes
        if self.monitor is not None:
            self.monitor.check_final(result)
        return result


def federated_simulate(
    trace: Trace, organization: Organization, config: SimulationConfig
) -> SimulationResult:
    """Convenience one-shot mirroring :func:`repro.core.simulator.simulate`."""
    return FederatedSimulator(trace, organization, config).run()
