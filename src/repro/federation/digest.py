"""Inter-proxy bloom digests (Summary Cache between proxies).

Each federated proxy periodically summarises everything it can serve —
its own proxy cache plus every document its browser index claims some
member client holds — into one bloom filter and sends it to every peer.
Peers answer local misses by probing whichever proxies' digests claim
the document.

Digests go stale between exchanges exactly like Summary Cache
summaries: a claim may outlive the content (false hit — a wasted
inter-proxy round trip) and fresh content is invisible until the next
exchange (missed hit).  ``digest_period == 0.0`` is the oracle anchor:
claims are evaluated against the proxies' *current* state on every
request, and no exchange bytes or link time are charged — an upper
bound no real period can beat.

With a :class:`~repro.federation.linkfaults.PartitionSchedule` armed
the directory keeps one *view* per (viewer, about) proxy pair instead
of a single shared copy: a digest copy addressed to a proxy on the
other side of an open partition is dropped (``digest_exchanges_lost``;
the viewer keeps serving from its stale view, so staleness accrues
asymmetrically) and its bytes are **not** charged to
``digest_bytes_exchanged`` — only copies that actually crossed the
link cost anything.  When a partition heals, the engine calls
:meth:`DigestDirectory.antientropy`: a full refresh whose bytes are
charged to the separate ``antientropy_bytes`` counter.
"""

from __future__ import annotations

from repro.core.config import FederationConfig
from repro.index.bloom import BloomFilter

__all__ = ["DigestDirectory", "build_proxy_digest"]


def build_proxy_digest(sim, capacity: int, bits_per_doc: float) -> BloomFilter:
    """Summarise everything *sim*'s proxy can currently serve.

    Covers the proxy cache and the browser index's claimed contents
    (``claimed_docs``).  For the exact index that is the visible index;
    for the bloom index it is the per-client claimed contents — the
    same knowledge the proxy itself trusts, so the digest is exactly as
    stale as the proxy's own view, never staler.
    """
    digest = BloomFilter.for_capacity(capacity, bits_per_doc)
    if sim.proxy is not None:
        for doc in sim.proxy:
            digest.add(doc)
    if sim.index is not None:
        for doc in sim.index.claimed_docs():
            digest.add(doc)
    return digest


class DigestDirectory:
    """The digests every federated proxy currently holds about its peers.

    All proxies exchange on the same schedule (first request, then every
    ``digest_period`` simulated seconds), so with a perfect fabric one
    shared directory stands in for N per-proxy copies.  Until the first
    exchange no proxy claims anything and every miss goes to the
    origin, exactly like the single-proxy engine.

    ``partitioned=True`` (link faults armed) switches to one
    materialised view per (viewer, about) pair, because a dropped copy
    makes the peers' knowledge diverge.
    """

    def __init__(
        self, fed: FederationConfig, capacity: int, partitioned: bool = False
    ) -> None:
        self.fed = fed
        self.capacity = capacity
        self.digests: list[BloomFilter | None] = [None] * fed.n_proxies
        #: views[viewer][about]: the digest *viewer* currently holds
        #: about proxy *about* (partitioned mode only).
        self.views: list[list[BloomFilter | None]] | None = (
            [[None] * fed.n_proxies for _ in range(fed.n_proxies)]
            if partitioned
            else None
        )
        self.exchanges = 0
        self.antientropy_refreshes = 0
        self._last_exchange: float | None = None

    @property
    def oracle(self) -> bool:
        """Fresh-digest anchor: claims never go stale, exchanges are free."""
        return self.fed.digest_period == 0.0

    def maybe_exchange(self, sims, t: float, result, schedule=None) -> None:
        """Run a digest exchange if one is due at time *t*.

        Charges ``digest_bytes_exchanged`` and
        ``interproxy_bandwidth_time`` on *result* for the (N-1) copies
        each proxy sends — except in oracle mode, where claims are read
        directly from live state (:meth:`claims`) and nothing is built
        or charged.  With *schedule* (a
        :class:`~repro.federation.linkfaults.PartitionSchedule`) mid-
        partition, copies addressed across the split are dropped and
        counted in ``digest_exchanges_lost`` instead of being charged.

        Digests summarise each proxy as of its last processed event: a
        peer's pending crash/recovery deadline is *not* advanced here,
        so a digest can briefly claim documents a since-crashed proxy
        will have to re-learn — accountable as false hits, like every
        other form of digest staleness.
        """
        if self.fed.n_proxies <= 1 or self.oracle:
            return
        if self._last_exchange is not None and t - self._last_exchange < self.fed.digest_period:
            return
        n = self.fed.n_proxies
        fanout = n - 1
        views = self.views
        split = schedule is not None and schedule.active
        for pid, sim in enumerate(sims):
            digest = build_proxy_digest(sim, self.capacity, self.fed.digest_bits_per_doc)
            self.digests[pid] = digest
            if not split:
                if views is not None:
                    for viewer in range(n):
                        if viewer != pid:
                            views[viewer][pid] = digest
                result.digest_bytes_exchanged += digest.size_bytes * fanout
                result.interproxy_bandwidth_time += (
                    self.fed.transfer_time(digest.size_bytes) * fanout
                )
                continue
            delivered = 0
            for viewer in range(n):
                if viewer == pid:
                    continue
                if schedule.connected(pid, viewer):
                    views[viewer][pid] = digest
                    delivered += 1
                else:
                    result.digest_exchanges_lost += 1
            result.digest_bytes_exchanged += digest.size_bytes * delivered
            result.interproxy_bandwidth_time += (
                self.fed.transfer_time(digest.size_bytes) * delivered
            )
        self._last_exchange = t
        self.exchanges += 1

    def antientropy(self, sims, t: float, result) -> None:
        """Post-heal full refresh: every proxy rebuilds its digest and
        ships it to every (now reachable) peer, reconciling the views
        that diverged behind the partition.  Bytes are charged to
        ``antientropy_bytes`` — kept apart from the periodic
        ``digest_bytes_exchanged`` so the repair traffic is visible —
        and the periodic exchange clock restarts from *t*.
        """
        if self.fed.n_proxies <= 1 or self.oracle:
            return
        n = self.fed.n_proxies
        fanout = n - 1
        views = self.views
        for pid, sim in enumerate(sims):
            digest = build_proxy_digest(sim, self.capacity, self.fed.digest_bits_per_doc)
            self.digests[pid] = digest
            if views is not None:
                for viewer in range(n):
                    if viewer != pid:
                        views[viewer][pid] = digest
            result.antientropy_bytes += digest.size_bytes * fanout
            result.interproxy_bandwidth_time += (
                self.fed.transfer_time(digest.size_bytes) * fanout
            )
        self._last_exchange = t
        self.exchanges += 1
        self.antientropy_refreshes += 1

    def claims(self, sims, pid: int, doc: int, viewer: int | None = None) -> bool:
        """Does proxy *pid*'s digest, as held by *viewer*, claim *doc*?

        Oracle mode consults live state instead of a materialised
        filter; digests carry no version either way, so a claim can
        still miss-serve a stale version (accounted as a false hit).
        Without link faults every peer holds the same copy, so *viewer*
        is irrelevant; in partitioned mode it selects the (possibly
        stale) view the asking proxy actually has.
        """
        if self.oracle:
            sim = sims[pid]
            if sim.proxy is not None and doc in sim.proxy:
                return True
            return sim.index is not None and sim.index.claims_doc(doc)
        if self.views is not None and viewer is not None:
            digest = self.views[viewer][pid]
        else:
            digest = self.digests[pid]
        return digest is not None and doc in digest
