"""Inter-proxy bloom digests (Summary Cache between proxies).

Each federated proxy periodically summarises everything it can serve —
its own proxy cache plus every document its browser index claims some
member client holds — into one bloom filter and sends it to every peer.
Peers answer local misses by probing whichever proxies' digests claim
the document.

Digests go stale between exchanges exactly like Summary Cache
summaries: a claim may outlive the content (false hit — a wasted
inter-proxy round trip) and fresh content is invisible until the next
exchange (missed hit).  ``digest_period == 0.0`` is the oracle anchor:
claims are evaluated against the proxies' *current* state on every
request, and no exchange bytes or link time are charged — an upper
bound no real period can beat.
"""

from __future__ import annotations

from repro.core.config import FederationConfig
from repro.index.bloom import BloomFilter

__all__ = ["DigestDirectory", "build_proxy_digest"]


def build_proxy_digest(sim, capacity: int, bits_per_doc: float) -> BloomFilter:
    """Summarise everything *sim*'s proxy can currently serve.

    Covers the proxy cache and the browser index's claimed contents
    (``claimed_docs``).  For the exact index that is the visible index;
    for the bloom index it is the per-client claimed contents — the
    same knowledge the proxy itself trusts, so the digest is exactly as
    stale as the proxy's own view, never staler.
    """
    digest = BloomFilter.for_capacity(capacity, bits_per_doc)
    if sim.proxy is not None:
        for doc in sim.proxy:
            digest.add(doc)
    if sim.index is not None:
        for doc in sim.index.claimed_docs():
            digest.add(doc)
    return digest


class DigestDirectory:
    """The digests every federated proxy currently holds about its peers.

    All proxies exchange on the same schedule (first request, then every
    ``digest_period`` simulated seconds), so one shared directory stands
    in for N per-proxy copies.  Until the first exchange no proxy claims
    anything and every miss goes to the origin, exactly like the
    single-proxy engine.
    """

    def __init__(self, fed: FederationConfig, capacity: int) -> None:
        self.fed = fed
        self.capacity = capacity
        self.digests: list[BloomFilter | None] = [None] * fed.n_proxies
        self.exchanges = 0
        self._last_exchange: float | None = None

    @property
    def oracle(self) -> bool:
        """Fresh-digest anchor: claims never go stale, exchanges are free."""
        return self.fed.digest_period == 0.0

    def maybe_exchange(self, sims, t: float, result) -> None:
        """Run a digest exchange if one is due at time *t*.

        Charges ``digest_bytes_exchanged`` and
        ``interproxy_bandwidth_time`` on *result* for the (N-1) copies
        each proxy sends — except in oracle mode, where claims are read
        directly from live state (:meth:`claims`) and nothing is built
        or charged.

        Digests summarise each proxy as of its last processed event: a
        peer's pending crash/recovery deadline is *not* advanced here,
        so a digest can briefly claim documents a since-crashed proxy
        will have to re-learn — accountable as false hits, like every
        other form of digest staleness.
        """
        if self.fed.n_proxies <= 1 or self.oracle:
            return
        if self._last_exchange is not None and t - self._last_exchange < self.fed.digest_period:
            return
        fanout = self.fed.n_proxies - 1
        for pid, sim in enumerate(sims):
            digest = build_proxy_digest(sim, self.capacity, self.fed.digest_bits_per_doc)
            self.digests[pid] = digest
            result.digest_bytes_exchanged += digest.size_bytes * fanout
            result.interproxy_bandwidth_time += (
                self.fed.transfer_time(digest.size_bytes) * fanout
            )
        self._last_exchange = t
        self.exchanges += 1

    def claims(self, sims, pid: int, doc: int) -> bool:
        """Does proxy *pid*'s digest (as held by its peers) claim *doc*?

        Oracle mode consults live state instead of a materialised
        filter; digests carry no version either way, so a claim can
        still miss-serve a stale version (accounted as a false hit).
        """
        if self.oracle:
            sim = sims[pid]
            if sim.proxy is not None and doc in sim.proxy:
                return True
            return sim.index is not None and sim.index.claims_doc(doc)
        digest = self.digests[pid]
        return digest is not None and doc in digest
