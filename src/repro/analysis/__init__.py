"""Workload analysis: the statistical lenses the web-caching literature
applies to traces.

Used to validate that the calibrated synthetic traces behave like the
real workloads they replace (Zipf-like popularity, heavy-tailed sizes,
strong temporal locality, skewed client activity), and exposed to users
via ``baps analyze``.
"""

from repro.analysis.popularity import (
    PopularityFit,
    popularity_counts,
    fit_zipf,
    concentration,
)
from repro.analysis.locality import (
    stack_distances,
    stack_distance_cdf,
    temporal_locality_score,
)
from repro.analysis.sizes import SizeStats, size_stats
from repro.analysis.clients import client_activity, gini_coefficient
from repro.analysis.report import TraceAnalysis, analyze_trace
from repro.analysis.mrc import (
    ByteMRC,
    CapacityGrid,
    MRCPoint,
    TraceMRC,
    MRC_EXACT_ORGANIZATIONS,
    capacity_grid,
    compute_mrc,
)

__all__ = [
    "PopularityFit",
    "popularity_counts",
    "fit_zipf",
    "concentration",
    "stack_distances",
    "stack_distance_cdf",
    "temporal_locality_score",
    "SizeStats",
    "size_stats",
    "client_activity",
    "gini_coefficient",
    "TraceAnalysis",
    "analyze_trace",
    "ByteMRC",
    "CapacityGrid",
    "MRCPoint",
    "TraceMRC",
    "MRC_EXACT_ORGANIZATIONS",
    "capacity_grid",
    "compute_mrc",
]
