"""Response size distribution statistics.

Web transfer sizes are heavy-tailed (lognormal body, Pareto tail —
Barford & Crovella); these summaries characterise a trace's size mix
and the size/popularity correlation that separates byte hit ratios from
request hit ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.record import Trace

__all__ = ["SizeStats", "size_stats"]


@dataclass(frozen=True)
class SizeStats:
    """Per-request size distribution summary."""

    mean: float
    median: float
    p90: float
    p99: float
    max: int
    #: Pearson correlation between log(document size) and
    #: log(reference count); negative = popular documents are smaller.
    size_popularity_correlation: float
    #: coefficient of variation (std/mean) — heavy tails push it > 1.
    cv: float


def size_stats(trace: Trace) -> SizeStats:
    """Compute :class:`SizeStats` for *trace*."""
    if len(trace) == 0:
        return SizeStats(0.0, 0.0, 0.0, 0.0, 0, 0.0, 0.0)
    sizes = trace.sizes.astype(np.float64)

    counts = np.bincount(trace.docs)
    # per-document: the first observed size of each doc
    _, first_idx = np.unique(trace.docs, return_index=True)
    doc_sizes = trace.sizes[first_idx].astype(np.float64)
    doc_counts = counts[np.unique(trace.docs)].astype(np.float64)
    if doc_sizes.size > 1 and np.ptp(doc_sizes) > 0 and np.ptp(doc_counts) > 0:
        corr = float(
            np.corrcoef(np.log(np.maximum(doc_sizes, 1)), np.log(doc_counts))[0, 1]
        )
    else:
        corr = 0.0

    mean = float(sizes.mean())
    return SizeStats(
        mean=mean,
        median=float(np.median(sizes)),
        p90=float(np.percentile(sizes, 90)),
        p99=float(np.percentile(sizes, 99)),
        max=int(sizes.max()),
        size_popularity_correlation=corr,
        cv=float(sizes.std() / mean) if mean else 0.0,
    )
