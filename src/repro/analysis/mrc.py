"""One-pass miss-ratio curves via byte-weighted LRU stack distances.

The paper's size sweeps (figures 2 and 3) re-replay the whole trace
once per relative cache size.  A Mattson-style reuse-distance pass
computes, from a *single* traversal of the request stream, whether each
request would hit an LRU cache of **every** capacity at once: a
re-reference hits a cache of ``C`` bytes exactly when the bytes of
distinct documents touched since its previous reference, plus its own
body, fit in ``C``.  Documents have sizes, so the classic unit-object
stack distance (:func:`repro.analysis.locality.stack_distances`) is
generalised here to a *byte-weighted* distance, maintained with a
Fenwick tree over reference positions — O(log n) per request.

Exactness
---------
The engine's LRU caches (:class:`repro.cache.lru.LRUCache`) deviate
from the textbook stack model in two size-aware ways, both reproduced
exactly for a fixed capacity grid:

* a **new** document larger than the capacity is refused (it neither
  enters the cache nor evicts anything) — modelled by per-capacity
  "oversize correction" trees that subtract refused documents from the
  distance at each grid capacity;
* an **in-place refresh** of a resident document to a body larger than
  the capacity evicts every other entry and then the document itself —
  modelled by a per-capacity *barrier*: every reference position at or
  before the barrier is non-resident.

With those two corrections the stack model replays a single LRU cache
bit-exactly, so the ``proxy-cache-only`` and
``local-browser-caches-only`` organizations (one shared LRU; one
private LRU per client) are **exact**: one pass reproduces the replay's
hit and byte-hit ratios at every grid capacity to the last request.

The multi-level organizations are principled approximations ("bounded
where eviction-order approximations apply"):

* the proxy tier of ``proxy-and-local-browser`` /
  ``browsers-aware-proxy-server`` is modelled as an LRU over the *full*
  request stream, whereas the real proxy is probed and populated only
  by browser-miss traffic (recency drift, capacity-coupled);
* remote-browser hits are modelled as "some other client's private
  stack holds the document at the grid's browser capacity", ignoring
  that a real remote hit refreshes the serving holder's LRU order;
* ``global-browser-caches-only`` browsers do not cache remotely served
  fetches, which the private-stack model ignores.

The cross-validation goldens (``tests/golden/golden_small.json``) pin
both the exact agreement and the measured approximation error; see
``tools/make_goldens.py`` for the documented tolerances.

Sampling
--------
``compute_mrc`` optionally consumes only a deterministic hash-selected
subset of documents (:mod:`repro.traces.sampling`) and rescales every
reuse distance by ``1/rate`` (the SHARDS estimator), turning a 5%
sample into a full-trace curve estimate with quantified error.

Memory: the stacks hold O(distinct keys) live entries; reference
positions are periodically compacted, so long streams do not grow the
trees without bound.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.config import SimulationConfig
from repro.core.events import HitLocation
from repro.core.metrics import SimulationResult
from repro.core.policies import Organization

__all__ = [
    "ByteMRC",
    "CapacityGrid",
    "MRCPoint",
    "TraceMRC",
    "MRC_EXACT_ORGANIZATIONS",
    "capacity_grid",
    "compute_mrc",
]

#: organizations whose MRC prediction is bit-exact against the replay
#: (a single pure-LRU cache per request path — see module docstring).
MRC_EXACT_ORGANIZATIONS = frozenset(
    {Organization.PROXY_ONLY, Organization.LOCAL_BROWSER_ONLY}
)

#: compact a stack when live keys fall below 1/4 of the position space
#: (and the position space is big enough for the rebuild to pay off).
_COMPACT_MIN_POSITIONS = 8_192


class _Fenwick:
    """Growable Fenwick (binary indexed) tree over append-only
    positions, holding integer byte weights."""

    __slots__ = ("n", "cap", "tree", "weights", "total")

    def __init__(self, cap: int = 16) -> None:
        self.n = 0
        self.cap = cap
        self.tree = [0] * (cap + 1)
        self.weights = [0] * cap
        self.total = 0

    def append(self, weight: int) -> None:
        """Add the next position with *weight*."""
        if self.n == self.cap:
            self._grow()
        i = self.n
        self.weights[i] = weight
        self.n = i + 1
        if weight:
            self.total += weight
            tree = self.tree
            cap = self.cap
            i += 1
            while i <= cap:
                tree[i] += weight
                i += i & (-i)

    def add_at(self, pos: int, delta: int) -> None:
        if not delta:
            return
        self.weights[pos] += delta
        self.total += delta
        tree = self.tree
        cap = self.cap
        i = pos + 1
        while i <= cap:
            tree[i] += delta
            i += i & (-i)

    def prefix(self, pos: int) -> int:
        """Sum of weights over positions [0, pos]."""
        tree = self.tree
        total = 0
        i = pos + 1
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    def suffix_after(self, pos: int) -> int:
        """Sum of weights over positions strictly greater than *pos*."""
        return self.total - self.prefix(pos)

    def _grow(self) -> None:
        self.cap *= 2
        self.weights.extend([0] * (self.cap - len(self.weights)))
        self._rebuild()

    def _rebuild(self) -> None:
        # O(cap) tree construction from the weights array.
        cap = self.cap
        tree = [0] * (cap + 1)
        weights = self.weights
        for i in range(1, cap + 1):
            tree[i] += weights[i - 1]
            parent = i + (i & (-i))
            if parent <= cap:
                tree[parent] += tree[i]
        self.tree = tree

    def rebuild_from(self, weights: list[int]) -> None:
        """Reset to exactly *weights* (compaction support)."""
        n = len(weights)
        cap = max(16, n)
        self.n = n
        self.cap = cap
        self.weights = weights + [0] * (cap - n)
        self.total = sum(weights)
        self._rebuild()

    @classmethod
    def zeros(cls, n: int, cap: int = 0) -> "_Fenwick":
        """A tree holding *n* zero-weight positions — the history a
        lazily created correction tree must be aligned with.  *cap*
        pre-sizes the tree (e.g. to the main tree's capacity) so the
        doubling-rebuild growth path is skipped."""
        fen = cls(max(16, n, cap))
        fen.n = n
        return fen


class _TierStack:
    """Byte-weighted LRU recency stack, capacity-class aware.

    One instance models one physical LRU cache (the shared proxy, or
    one client's browser) at every capacity in ``caps`` simultaneously.
    ``caps`` must be ascending.  ``inv_rate`` rescales reuse distances
    for spatially sampled streams (1.0 = unsampled; the document's own
    body is never rescaled — it occupies the cache for real).
    """

    __slots__ = (
        "caps",
        "nc",
        "full_mask",
        "inv",
        "pos",
        "size",
        "ver",
        "fen",
        "corr",
        "corr_classes",
        "barrier",
        "dirty",
    )

    def __init__(
        self, caps: Sequence[int], inv_rate: float = 1.0, expected: int = 0
    ) -> None:
        self.caps = list(caps)
        self.nc = len(self.caps)
        self.full_mask = (1 << self.nc) - 1
        self.inv = inv_rate
        self.pos: dict[int, int] = {}
        self.size: dict[int, int] = {}
        self.ver: dict[int, int] = {}
        #: *expected* pre-sizes the position space (the stream length
        #: when known), skipping the doubling-rebuild growth path; 0
        #: starts small (right for per-client stacks).
        self.fen = _Fenwick(max(16, expected))
        #: per-class oversize-correction trees, created lazily on the
        #: first refused (size > cap) insert for that class; classes
        #: that never see an oversized document pay nothing.
        self.corr: list[_Fenwick | None] = [None] * self.nc
        self.corr_classes: list[int] = []
        #: per class: positions <= barrier are non-resident (an
        #: oversized in-place refresh flushed the cache there).
        self.barrier = [-1] * self.nc
        #: classes needing exact per-class evaluation (a correction
        #: tree or an active barrier); everything else resolves with
        #: one bisect on the ascending capacity grid.
        self.dirty: list[int] = []

    def _rebuild_dirty(self) -> None:
        self.dirty = [
            f
            for f in range(self.nc)
            if self.corr[f] is not None or self.barrier[f] >= 0
        ]

    # -- queries -------------------------------------------------------

    def _resident_mask(self, prev: int, size: int, dist_all: int | None = None) -> int:
        """Classes where the document last referenced at *prev* with
        body *size* is currently resident."""
        if dist_all is None:
            fen = self.fen
            dist_all = fen.total - fen.prefix(prev)
        inv = self.inv
        caps = self.caps
        # clean classes: resident iff dist*1/rate + size fits — a
        # suffix of the ascending grid, found with one bisect.
        f0 = bisect_left(caps, dist_all * inv + size)
        mask = (self.full_mask >> f0) << f0
        for f in self.dirty:
            bit = 1 << f
            if prev <= self.barrier[f]:
                mask &= ~bit
                continue
            cf = self.corr[f]
            over = (cf.total - cf.prefix(prev)) if cf is not None and cf.total else 0
            if (dist_all - over) * inv + size <= caps[f]:
                mask |= bit
            else:
                mask &= ~bit
        return mask

    def resident_mask(self, doc: int, version: int) -> int:
        """Classes where *doc* at *version* is resident — the remote-
        holder probe."""
        prev = self.pos.get(doc)
        if prev is None or self.ver[doc] != version:
            return 0
        return self._resident_mask(prev, self.size[doc])

    # -- the per-request transition ------------------------------------

    def access(
        self, doc: int, size: int, version: int
    ) -> tuple[int, bool, int, bool]:
        """Reference *doc*; returns ``(hit_mask, cold, dist_all,
        vmatched)``.

        ``hit_mask`` has bit *f* set when the reference hits the class-f
        cache (resident and version-matched).  ``cold`` is True for a
        first reference.  ``dist_all`` is the uncorrected byte reuse
        distance (-1 when cold) feeding the every-size curve.
        ``vmatched`` is the pre-update version match (always False when
        cold).
        """
        pos = self.pos
        prev = pos.get(doc)
        fen = self.fen
        i = fen.n
        caps = self.caps
        # classes whose capacity the new body exceeds (refused there)
        kb = bisect_left(caps, size)
        if prev is None:
            hit_mask = 0
            cold = True
            vmatch = False
            dist_all = -1
        else:
            cold = False
            old_size = self.size[doc]
            dist_all = fen.total - fen.prefix(prev)
            vmatch = self.ver[doc] == version
            # residency matters only for the hit decision (version
            # matched) or the oversized-refresh barrier (kb > 0).
            res_mask = (
                self._resident_mask(prev, old_size, dist_all)
                if vmatch or kb
                else 0
            )
            hit_mask = res_mask if vmatch else 0
            # remove the old copy's weights (corr[f] exists for every
            # class the old copy was oversized in — created when that
            # copy was pushed)
            fen.add_at(prev, -old_size)
            ko = bisect_left(caps, old_size)
            if ko:
                corr = self.corr
                for f in range(ko):
                    corr[f].add_at(prev, -old_size)
            # oversized in-place refresh: the real cache evicts every
            # other entry and then the refreshed document itself.
            if kb:
                barrier = self.barrier
                changed = False
                for f in range(kb):
                    if res_mask >> f & 1:
                        barrier[f] = i
                        changed = True
                if changed:
                    self._rebuild_dirty()
        # push the (possibly refused) new copy at the MRU position;
        # classes where size > cap subtract it back out via corr.
        corr = self.corr
        corr_classes = self.corr_classes
        if kb:
            created = False
            for f in range(kb):
                if corr[f] is None:
                    corr[f] = _Fenwick.zeros(i, fen.cap)
                    corr_classes.append(f)
                    created = True
            if created:
                corr_classes.sort()
                self._rebuild_dirty()
        fen.append(size)
        if corr_classes:
            for f in corr_classes:
                corr[f].append(size if f < kb else 0)
        pos[doc] = i
        self.size[doc] = size
        self.ver[doc] = version
        if i + 1 >= _COMPACT_MIN_POSITIONS and i + 1 >= 4 * len(pos):
            self._compact()
        return hit_mask, cold, dist_all, vmatch

    # -- position-space compaction -------------------------------------

    def _compact(self) -> None:
        items = sorted(self.pos.items(), key=lambda kv: kv[1])
        old_positions = [p for _, p in items]
        self.barrier = [
            bisect_right(old_positions, b) - 1 for b in self.barrier
        ]
        sizes = self.size
        caps = self.caps
        weights = [sizes[doc] for doc, _ in items]
        self.fen.rebuild_from(list(weights))
        for f in list(self.corr_classes):
            cap_f = caps[f]
            corrected = [w if w > cap_f else 0 for w in weights]
            if any(corrected):
                self.corr[f].rebuild_from(corrected)
            else:
                # every once-oversized document has since been
                # refreshed smaller (or evicted from the key space):
                # the class is clean again.
                self.corr[f] = None
                self.corr_classes.remove(f)
        self._rebuild_dirty()
        self.pos = {doc: new for new, (doc, _) in enumerate(items)}


# -- capacity grids ----------------------------------------------------


@dataclass(frozen=True)
class CapacityGrid:
    """The concrete byte capacities a sweep evaluates: one proxy and
    one (uniform) browser capacity per relative cache size."""

    fractions: tuple[float, ...]
    proxy_capacities: tuple[int, ...]
    browser_capacities: tuple[int, ...]

    def __post_init__(self) -> None:
        if not (
            len(self.fractions)
            == len(self.proxy_capacities)
            == len(self.browser_capacities)
        ):
            raise ValueError("capacity grid columns must have equal length")
        if list(self.proxy_capacities) != sorted(self.proxy_capacities):
            raise ValueError("proxy capacities must be ascending")
        if list(self.browser_capacities) != sorted(self.browser_capacities):
            raise ValueError("browser capacities must be ascending")

    def __len__(self) -> int:
        return len(self.fractions)

    def index_of(self, fraction: float) -> int:
        try:
            return self.fractions.index(fraction)
        except ValueError:
            fracs = ", ".join(f"{f:g}" for f in self.fractions)
            raise KeyError(
                f"fraction {fraction!r} not in the analysed grid [{fracs}]"
            ) from None


def capacity_grid(
    trace,
    fractions: Sequence[float],
    browser_sizing: str = "minimum",
    **config_overrides,
) -> CapacityGrid:
    """Derive the grid the replay sweep would use, via
    :meth:`SimulationConfig.relative` — so MRC and replay size caches
    identically.  *trace* may be a :class:`~repro.traces.record.Trace`
    or a :class:`~repro.traces.streaming.TraceStream` (both expose
    ``infinite_cache_bytes`` and ``n_clients``)."""
    fractions = tuple(sorted(fractions))
    proxy_caps = []
    browser_caps = []
    for frac in fractions:
        config = SimulationConfig.relative(
            trace, proxy_frac=frac, browser_sizing=browser_sizing, **config_overrides
        )
        proxy_caps.append(config.proxy_capacity)
        browser_caps.append(config.browser_capacity)
    return CapacityGrid(fractions, tuple(proxy_caps), tuple(browser_caps))


# -- every-size curves -------------------------------------------------


@dataclass(frozen=True)
class ByteMRC:
    """Hit ratio at *every* cache size, from one pass.

    ``required`` is the sorted array of byte requirements (reuse
    distance plus body size) of all version-matched re-references;
    ``cum_hits``/``cum_hit_bytes`` are the matching cumulative sums.
    ``hit_ratio(C)`` is exact for a pure LRU without size refusals and
    a tight upper-capacity model otherwise (the fixed-grid predictions
    in :class:`TraceMRC` carry the refusal corrections).
    """

    n_requests: int
    total_bytes: int
    required: np.ndarray
    cum_hits: np.ndarray
    cum_hit_bytes: np.ndarray

    @classmethod
    def from_histogram(
        cls, hist: dict[int, list[int]], n_requests: int, total_bytes: int
    ) -> "ByteMRC":
        required = np.array(sorted(hist), dtype=np.int64)
        counts = np.array([hist[r][0] for r in required], dtype=np.int64)
        byts = np.array([hist[r][1] for r in required], dtype=np.int64)
        return cls(
            n_requests=n_requests,
            total_bytes=total_bytes,
            required=required,
            cum_hits=np.cumsum(counts),
            cum_hit_bytes=np.cumsum(byts),
        )

    def hits_at(self, capacity: int) -> int:
        idx = int(np.searchsorted(self.required, capacity, side="right"))
        return int(self.cum_hits[idx - 1]) if idx else 0

    def hit_bytes_at(self, capacity: int) -> int:
        idx = int(np.searchsorted(self.required, capacity, side="right"))
        return int(self.cum_hit_bytes[idx - 1]) if idx else 0

    def hit_ratio(self, capacity: int) -> float:
        return self.hits_at(capacity) / self.n_requests if self.n_requests else 0.0

    def byte_hit_ratio(self, capacity: int) -> float:
        return (
            self.hit_bytes_at(capacity) / self.total_bytes if self.total_bytes else 0.0
        )

    def curve(
        self, capacities: Iterable[int]
    ) -> list[tuple[int, float, float]]:
        """``(capacity, hit_ratio, byte_hit_ratio)`` per capacity."""
        return [
            (c, self.hit_ratio(c), self.byte_hit_ratio(c)) for c in capacities
        ]


# -- predictions -------------------------------------------------------


@dataclass(frozen=True)
class MRCPoint:
    """One predicted sweep cell."""

    organization: Organization
    fraction: float
    hit_ratio: float
    byte_hit_ratio: float
    local_share: float
    proxy_share: float
    remote_share: float
    exact: bool


# combo bit layout accumulated per request per class
_LOCAL = 1
_PROXY = 2
_REMOTE = 4


def _hit_location(org: Organization, bits: int) -> HitLocation | None:
    """Where the engine would have served a request with tier outcome
    *bits*, under *org*'s lookup order (browser, proxy, index)."""
    if org is Organization.PROXY_ONLY:
        return HitLocation.PROXY if bits & _PROXY else None
    if org is Organization.LOCAL_BROWSER_ONLY:
        return HitLocation.LOCAL_BROWSER if bits & _LOCAL else None
    if bits & _LOCAL:
        return HitLocation.LOCAL_BROWSER
    if org is Organization.GLOBAL_BROWSERS_ONLY:
        return HitLocation.REMOTE_BROWSER if bits & _REMOTE else None
    if bits & _PROXY:
        return HitLocation.PROXY
    if org is Organization.BROWSERS_AWARE_PROXY and bits & _REMOTE:
        return HitLocation.REMOTE_BROWSER
    return None


@dataclass
class TraceMRC:
    """The one-pass analysis: per-class tier-outcome tallies plus the
    every-size curves.  Produced by :func:`compute_mrc`."""

    trace_name: str
    grid: CapacityGrid
    #: requests analysed (after sampling) and their bytes.
    n_requests: int
    total_bytes: int
    #: ``counts[f][bits]``/``hit_bytes[f][bits]``: requests (bytes)
    #: whose tier outcome at class *f* is the combo *bits*.
    counts: list[list[int]]
    hit_bytes: list[list[int]]
    #: every-size curves (uncorrected single-LRU models); None when the
    #: organization selection made the tier unnecessary.
    proxy_curve: ByteMRC | None = None
    browser_curve: ByteMRC | None = None
    sample_rate: float = 1.0
    sample_seed: int = 0
    #: analysis wall-clock, stamped by :func:`compute_mrc`.
    wall_seconds: float = 0.0
    organizations: tuple[Organization, ...] = field(
        default_factory=lambda: tuple(Organization)
    )

    def predict(self, organization: Organization, fraction: float) -> MRCPoint:
        if organization not in self.organizations:
            orgs = ", ".join(o.value for o in self.organizations)
            raise KeyError(
                f"{organization.value!r} was not analysed (pass had: {orgs})"
            )
        f = self.grid.index_of(fraction)
        counts = self.counts[f]
        byts = self.hit_bytes[f]
        hits = {loc: 0 for loc in (HitLocation.LOCAL_BROWSER, HitLocation.PROXY, HitLocation.REMOTE_BROWSER)}
        hbytes = dict(hits)
        for bits in range(8):
            loc = _hit_location(organization, bits)
            if loc is not None:
                hits[loc] += counts[bits]
                hbytes[loc] += byts[bits]
        n = self.n_requests or 1
        b = self.total_bytes or 1
        total_hits = sum(hits.values())
        total_hbytes = sum(hbytes.values())
        return MRCPoint(
            organization=organization,
            fraction=fraction,
            hit_ratio=total_hits / n,
            byte_hit_ratio=total_hbytes / b,
            local_share=hits[HitLocation.LOCAL_BROWSER] / n,
            proxy_share=hits[HitLocation.PROXY] / n,
            remote_share=hits[HitLocation.REMOTE_BROWSER] / n,
            exact=(
                organization in MRC_EXACT_ORGANIZATIONS and self.sample_rate == 1.0
            ),
        )

    def to_simulation_result(
        self, organization: Organization, fraction: float
    ) -> SimulationResult:
        """A :class:`SimulationResult` carrying the MRC-predicted
        counters, shaped like a replay's output so sweep consumers
        (figure tables, breakdowns) work unchanged.  Latency/overhead
        models are not predicted and stay zero."""
        f = self.grid.index_of(fraction)
        counts = self.counts[f]
        byts = self.hit_bytes[f]
        result = SimulationResult(
            trace_name=self.trace_name, organization=organization.value
        )
        result.n_requests = self.n_requests
        result.total_bytes = self.total_bytes
        by_location = result.by_location
        for bits in range(8):
            if not counts[bits] and not byts[bits]:
                continue
            loc = _hit_location(organization, bits)
            if loc is None:
                stats = by_location[HitLocation.ORIGIN]
                stats.misses += counts[bits]
                stats.miss_bytes += byts[bits]
            else:
                stats = by_location[loc]
                stats.hits += counts[bits]
                stats.hit_bytes += byts[bits]
        return result


# -- the one-pass analysis ---------------------------------------------


def _needs(organizations: Sequence[Organization]) -> tuple[bool, bool, bool]:
    browser = proxy = remote = False
    for org in organizations:
        feats = org.features
        browser |= feats.has_browsers
        proxy |= feats.has_proxy
        remote |= feats.has_index
    # the remote model probes the per-client stacks
    browser |= remote
    return browser, proxy, remote


def compute_mrc(
    source,
    grid: CapacityGrid,
    *,
    organizations: Iterable[Organization] | None = None,
    sample_rate: float = 1.0,
    sample_seed: int = 0,
) -> TraceMRC:
    """Analyse *source* (a ``Trace`` or ``TraceStream`` — anything with
    ``iter_rows()`` and ``name``) against *grid* in one pass.

    ``organizations`` restricts which tiers are maintained (the default
    analyses all five paper organizations).  ``sample_rate`` < 1
    analyses only the documents kept by the deterministic spatial
    sampler (:mod:`repro.traces.sampling`) and rescales reuse distances
    by ``1/rate``.
    """
    import time as _time

    if not 0.0 < sample_rate <= 1.0:
        raise ValueError(f"sample_rate must be in (0, 1], got {sample_rate}")
    organizations = (
        tuple(Organization) if organizations is None else tuple(organizations)
    )
    need_b, need_p, need_r = _needs(organizations)
    inv = 1.0 / sample_rate
    keep = None
    if sample_rate < 1.0:
        from repro.traces.sampling import SpatialSampler

        keep = SpatialSampler(sample_rate, seed=sample_seed).keep

    nc = len(grid)
    full_mask = (1 << nc) - 1
    proxy_caps = list(grid.proxy_capacities)
    browser_caps = list(grid.browser_capacities)

    # Pre-size the shared proxy stack's position space to the stream
    # length when known (one allocation instead of log2(n) doubling
    # rebuilds), capped so long streams still rely on compaction to
    # keep live positions near the distinct-key count instead of
    # allocating O(stream) slots up front; per-client browser stacks
    # stay small and start at the default capacity.
    expected = getattr(source, "n_requests", None)
    if expected is None:
        try:
            expected = len(source)
        except TypeError:
            expected = 0
    if sample_rate < 1.0:
        expected = int(expected * sample_rate * 1.25) + 16
    expected = min(expected, 16 * _COMPACT_MIN_POSITIONS)
    gstack = _TierStack(proxy_caps, inv, expected) if need_p else None
    cstacks: dict[int, _TierStack] = {}
    holders: dict[int, set[int]] = {}
    #: (local_mask | proxy_mask << nc | remote_mask << 2nc) ->
    #: [requests, bytes]; tier outcomes repeat heavily across requests,
    #: so tallying per distinct combo and expanding to the per-class
    #: histogram once at the end keeps the hot loop free of a
    #: per-class inner loop.
    combos: dict[int, list[int]] = {}
    counts = [[0] * 8 for _ in range(nc)]
    hit_bytes = [[0] * 8 for _ in range(nc)]
    gcurve: dict[int, list[int]] = {}
    bcurve: dict[int, list[int]] = {}
    n_seen = 0
    bytes_seen = 0
    sample_exact = inv == 1.0

    gaccess = gstack.access if gstack is not None else None
    cstacks_get = cstacks.get
    t0 = _time.perf_counter()
    for _t, c, d, s, v in source.iter_rows():
        if keep is not None and not keep(d):
            continue
        n_seen += 1
        bytes_seen += s
        local_mask = proxy_mask = remote_mask = 0
        if need_b:
            stack = cstacks_get(c)
            if stack is None:
                stack = cstacks[c] = _TierStack(browser_caps, inv)
            local_mask, _cold, dist, vmatch = stack.access(d, s, v)
            if vmatch:
                req = dist + s if sample_exact else int(dist * inv) + s
                entry = bcurve.get(req)
                if entry is None:
                    bcurve[req] = [1, s]
                else:
                    entry[0] += 1
                    entry[1] += s
        if gaccess is not None:
            proxy_mask, _cold, dist, vmatch = gaccess(d, s, v)
            if vmatch:
                req = dist + s if sample_exact else int(dist * inv) + s
                entry = gcurve.get(req)
                if entry is None:
                    gcurve[req] = [1, s]
                else:
                    entry[0] += 1
                    entry[1] += s
        if need_r:
            hs = holders.get(d)
            if hs:
                rm = 0
                for c2 in hs:
                    if c2 == c:
                        continue
                    rm |= cstacks[c2].resident_mask(d, v)
                    if rm == full_mask:
                        break
                remote_mask = rm
                hs.add(c)
            else:
                holders[d] = {c}
        key = local_mask | (proxy_mask << nc) | (remote_mask << (2 * nc))
        entry = combos.get(key)
        if entry is None:
            combos[key] = [1, s]
        else:
            entry[0] += 1
            entry[1] += s

    for key, (cnt, byt) in combos.items():
        local_mask = key & full_mask
        proxy_mask = (key >> nc) & full_mask
        remote_mask = key >> (2 * nc)
        for f in range(nc):
            bits = (
                (local_mask >> f & 1)
                | ((proxy_mask >> f & 1) << 1)
                | ((remote_mask >> f & 1) << 2)
            )
            counts[f][bits] += cnt
            hit_bytes[f][bits] += byt
    wall = _time.perf_counter() - t0

    return TraceMRC(
        trace_name=getattr(source, "name", "<rows>"),
        grid=grid,
        n_requests=n_seen,
        total_bytes=bytes_seen,
        counts=counts,
        hit_bytes=hit_bytes,
        proxy_curve=(
            ByteMRC.from_histogram(gcurve, n_seen, bytes_seen) if need_p else None
        ),
        browser_curve=(
            ByteMRC.from_histogram(bcurve, n_seen, bytes_seen) if need_b else None
        ),
        sample_rate=sample_rate,
        sample_seed=sample_seed,
        wall_seconds=wall,
        organizations=organizations,
    )
