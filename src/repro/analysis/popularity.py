"""Document popularity: Zipf fitting and concentration.

Web document popularity famously follows a Zipf-like law
``count(rank) ~ rank^-alpha`` with alpha near 0.6–1.0 for proxy traces
(Breslau et al.).  We estimate alpha by least squares on the log-log
rank/count curve — the standard technique of the era — and report the
share of references absorbed by the most popular documents.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.record import Trace
from repro.util.validation import check_fraction

__all__ = ["PopularityFit", "popularity_counts", "fit_zipf", "concentration"]


def popularity_counts(trace: Trace) -> np.ndarray:
    """Reference counts per document, sorted descending (rank order)."""
    if len(trace) == 0:
        return np.zeros(0, dtype=np.int64)
    counts = np.bincount(trace.docs)
    counts = counts[counts > 0]
    return np.sort(counts)[::-1]


@dataclass(frozen=True)
class PopularityFit:
    """Zipf fit ``count ~ C * rank^-alpha``."""

    alpha: float
    log_c: float
    r_squared: float
    n_docs: int

    def predicted_count(self, rank: int) -> float:
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        return float(np.exp(self.log_c) * rank ** (-self.alpha))


def fit_zipf(trace: Trace, min_count: int = 2) -> PopularityFit:
    """Least-squares Zipf fit on documents referenced >= *min_count*
    times (singletons flatten the tail and are excluded, as is
    conventional)."""
    counts = popularity_counts(trace)
    counts = counts[counts >= min_count]
    if counts.size < 2:
        return PopularityFit(alpha=0.0, log_c=0.0, r_squared=0.0, n_docs=int(counts.size))
    ranks = np.arange(1, counts.size + 1, dtype=np.float64)
    x = np.log(ranks)
    y = np.log(counts.astype(np.float64))
    slope, intercept = np.polyfit(x, y, 1)
    y_hat = slope * x + intercept
    ss_res = float(np.sum((y - y_hat) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PopularityFit(
        alpha=float(-slope),
        log_c=float(intercept),
        r_squared=r2,
        n_docs=int(counts.size),
    )


def concentration(trace: Trace, top_fraction: float = 0.10) -> float:
    """Share of all references going to the top *top_fraction* most
    popular documents (the "10% of documents draw 70% of requests"
    statistic)."""
    check_fraction("top_fraction", top_fraction)
    counts = popularity_counts(trace)
    if counts.size == 0:
        return 0.0
    k = max(1, int(round(top_fraction * counts.size)))
    return float(counts[:k].sum() / counts.sum())
