"""Client activity skew.

Proxy populations are dominated by a few heavy clients; the Gini
coefficient over per-client request counts summarises the skew (0 =
perfectly even, 1 = one client does everything).  The skew matters for
BAPS: near-idle clients' browsers retain documents far longer than the
churning proxy, which is where remote-browser hits come from.
"""

from __future__ import annotations

import numpy as np

from repro.traces.record import Trace

__all__ = ["client_activity", "gini_coefficient"]


def client_activity(trace: Trace) -> np.ndarray:
    """Requests per client, descending."""
    if len(trace) == 0:
        return np.zeros(0, dtype=np.int64)
    counts = np.bincount(trace.clients)
    counts = counts[counts > 0]
    return np.sort(counts)[::-1]


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    if v.size == 0:
        return 0.0
    if np.any(v < 0):
        raise ValueError("gini_coefficient requires non-negative values")
    total = v.sum()
    if total == 0:
        return 0.0
    n = v.size
    # mean absolute difference formulation via the sorted sample
    index = np.arange(1, n + 1)
    return float((2 * np.sum(index * v) - (n + 1) * total) / (n * total))
