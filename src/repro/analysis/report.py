"""One-stop trace analysis report (``baps analyze``)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.clients import client_activity, gini_coefficient
from repro.analysis.locality import stack_distance_cdf
from repro.analysis.popularity import PopularityFit, concentration, fit_zipf
from repro.analysis.sizes import SizeStats, size_stats
from repro.traces.record import Trace
from repro.traces.stats import TraceStats, compute_stats
from repro.util.fmt import ascii_table

__all__ = ["TraceAnalysis", "analyze_trace"]


@dataclass
class TraceAnalysis:
    """Everything the literature usually reports about a trace."""

    stats: TraceStats
    zipf: PopularityFit
    top10_share: float
    stack_cdf: dict[int, float]
    sizes: SizeStats
    activity_gini: float

    def render(self) -> str:
        rows = [
            ["requests", f"{self.stats.n_requests:,}"],
            ["clients", self.stats.n_clients],
            ["unique documents", f"{self.stats.n_docs:,}"],
            ["total volume", f"{self.stats.total_gb:.3f} GB"],
            ["infinite cache", f"{self.stats.infinite_cache_gb:.3f} GB"],
            ["max hit ratio", f"{self.stats.max_hit_ratio:.2%}"],
            ["max byte hit ratio", f"{self.stats.max_byte_hit_ratio:.2%}"],
            ["Zipf alpha", f"{self.zipf.alpha:.3f} (R^2 {self.zipf.r_squared:.3f})"],
            ["top-10% doc share", f"{self.top10_share:.2%}"],
            ["size mean / median", f"{self.sizes.mean:,.0f} / {self.sizes.median:,.0f} B"],
            ["size p99 / max", f"{self.sizes.p99:,.0f} / {self.sizes.max:,} B"],
            ["size CV", f"{self.sizes.cv:.2f}"],
            ["size-popularity corr", f"{self.sizes.size_popularity_correlation:+.3f}"],
            ["client activity Gini", f"{self.activity_gini:.3f}"],
        ]
        for k, v in self.stack_cdf.items():
            rows.append([f"re-refs within {k}-doc LRU", f"{v:.2%}"])
        return ascii_table(
            ["property", "value"], rows, title=f"trace analysis: {self.stats.name}"
        )


def analyze_trace(trace: Trace, stack_points: list[int] | None = None) -> TraceAnalysis:
    """Run the full analysis battery over *trace*."""
    return TraceAnalysis(
        stats=compute_stats(trace),
        zipf=fit_zipf(trace),
        top10_share=concentration(trace, 0.10),
        stack_cdf=stack_distance_cdf(trace, stack_points),
        sizes=size_stats(trace),
        activity_gini=gini_coefficient(client_activity(trace)),
    )
