"""Temporal locality via LRU stack distances.

The stack distance of a re-reference is the number of *distinct*
documents touched since the previous reference to the same document —
exactly the quantity that decides whether an LRU cache of a given size
hits.  The full distance distribution therefore characterises a trace's
temporal locality independent of any cache size.

Computed with the classic Bennett–Kruskal balanced-BST-free algorithm:
a Fenwick (binary indexed) tree over reference positions, O(N log N).
"""

from __future__ import annotations

import numpy as np

from repro.traces.record import Trace

__all__ = ["stack_distances", "stack_distance_cdf", "temporal_locality_score"]


class _Fenwick:
    """Binary indexed tree over [0, n) supporting point update and
    prefix sum."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, i: int) -> int:
        """Sum over [0, i]."""
        i += 1
        total = 0
        while i > 0:
            total += self.tree[i]
            i -= i & (-i)
        return int(total)


def stack_distances(trace: Trace) -> np.ndarray:
    """LRU stack distance of every re-reference (first accesses are
    skipped; mutated versions count as fresh documents, matching the
    engine's miss rule)."""
    n = len(trace)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    vmax = int(trace.versions.max()) + 1
    keys = (trace.docs * vmax + trace.versions).tolist()
    fen = _Fenwick(n)
    last_pos: dict[int, int] = {}
    out: list[int] = []
    for i, key in enumerate(keys):
        prev = last_pos.get(key)
        if prev is not None:
            # distinct docs touched in (prev, i) = docs whose last
            # reference position lies in that interval
            distance = fen.prefix_sum(i - 1) - fen.prefix_sum(prev)
            out.append(distance)
            fen.add(prev, -1)
        fen.add(i, +1)
        last_pos[key] = i
    return np.asarray(out, dtype=np.int64)


def stack_distance_cdf(trace: Trace, points: list[int] | None = None) -> dict[int, float]:
    """Fraction of re-references with stack distance <= each point.

    Interpreting a point *k* as "an LRU cache holding k documents",
    the CDF value is that cache's hit ratio over re-references.
    """
    distances = stack_distances(trace)
    points = points or [8, 64, 512, 4096]
    if distances.size == 0:
        return {p: 0.0 for p in points}
    return {p: float(np.mean(distances <= p)) for p in points}


def temporal_locality_score(trace: Trace, window: int = 256) -> float:
    """Share of re-references falling within a *window*-document LRU
    stack — a single-number summary of temporal locality."""
    distances = stack_distances(trace)
    if distances.size == 0:
        return 0.0
    return float(np.mean(distances <= window))
