"""End-to-end secure transfer protocol and its overhead model (§6).

:class:`SecureTransferProtocol` composes the pieces the paper proposes
for a reliable browsers-aware proxy: when a remote-browser hit is
served, the document travels through the anonymizing proxy and carries
the proxy's digital watermark; the requester verifies integrity before
accepting it.

:class:`SecurityOverheadModel` prices the cryptographic work so the
benchmark can reproduce the paper's claim that "the associated
overheads are trivial" relative to the network transfer itself.  Rates
default to early-2000s commodity hardware (the paper's era); the
``measured()`` constructor instead times this library's own pure-Python
primitives, which is useful for relative comparisons.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.security.anonymity import AnonymizingProxy, PeerEndpoint
from repro.security.des import DES
from repro.security.md5 import md5_digest
from repro.security.rsa import RSAKeyPair, generate_keypair
from repro.security.watermark import Watermark, WatermarkAuthority, verify_watermark

__all__ = ["TransferRecord", "SecurityOverheadModel", "SecureTransferProtocol"]


@dataclass(frozen=True)
class TransferRecord:
    """Accounting for one watermarked, anonymized document transfer."""

    doc_key: int
    doc_bytes: int
    md5_ops: int
    des_blocks: int
    rsa_private_ops: int
    rsa_public_ops: int
    crypto_seconds: float
    verified: bool


@dataclass(frozen=True)
class SecurityOverheadModel:
    """CPU cost rates for the §6 primitives.

    Defaults correspond to the paper's era (a few hundred MHz CPU
    running optimised C):  MD5 ≈ 50 MB/s, DES ≈ 10 MB/s, an RSA-512
    private op ≈ 5 ms, public op ≈ 0.3 ms.
    """

    md5_bytes_per_second: float = 50e6
    des_bytes_per_second: float = 10e6
    rsa_private_seconds: float = 5e-3
    rsa_public_seconds: float = 0.3e-3

    def __post_init__(self) -> None:
        for name in ("md5_bytes_per_second", "des_bytes_per_second"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")
        for name in ("rsa_private_seconds", "rsa_public_seconds"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def transfer_cost(
        self,
        doc_bytes: int,
        md5_ops: int = 2,
        des_passes: int = 4,
        rsa_private_ops: int = 2,
        rsa_public_ops: int = 3,
    ) -> float:
        """Seconds of CPU for one secure relay of a *doc_bytes* document.

        Defaults match :class:`SecureTransferProtocol`: the digest is
        computed at signing and at verification (2 MD5 passes over the
        body); the body is DES-encrypted/decrypted on the holder→proxy
        and proxy→requester legs (4 passes); session-key unwraps are
        RSA private ops, wraps and watermark verification are public
        ops.
        """
        if doc_bytes < 0:
            raise ValueError("doc_bytes must be >= 0")
        return (
            md5_ops * doc_bytes / self.md5_bytes_per_second
            + des_passes * doc_bytes / self.des_bytes_per_second
            + rsa_private_ops * self.rsa_private_seconds
            + rsa_public_ops * self.rsa_public_seconds
        )

    def verify_cost(self, doc_bytes: int) -> float:
        """Seconds of CPU to integrity-check one received document:
        one MD5 pass over the body plus one RSA public (watermark
        signature) verification — the work that detects a corrupted or
        tampered peer transfer before it is accepted."""
        if doc_bytes < 0:
            raise ValueError("doc_bytes must be >= 0")
        return doc_bytes / self.md5_bytes_per_second + self.rsa_public_seconds

    @classmethod
    def measured(cls, sample_bytes: int = 65536, key_bits: int = 512) -> "SecurityOverheadModel":
        """Build a model by timing this library's own primitives."""
        # the probe signs a 16-byte MD5 digest, so the modulus must
        # exceed 128 bits with headroom
        key_bits = max(key_bits, 160)
        payload = bytes(range(256)) * (sample_bytes // 256 + 1)
        payload = payload[:sample_bytes]

        t0 = time.perf_counter()
        md5_digest(payload)
        md5_rate = sample_bytes / max(time.perf_counter() - t0, 1e-9)

        des = DES(b"measure!")
        t0 = time.perf_counter()
        des.encrypt_ecb(payload[:8192])
        des_rate = 8192 / max(time.perf_counter() - t0, 1e-9)

        kp = generate_keypair(key_bits, seed=7)
        digest = md5_digest(b"probe")
        t0 = time.perf_counter()
        sig = kp.sign(digest)
        priv = max(time.perf_counter() - t0, 1e-9)
        t0 = time.perf_counter()
        kp.verify(digest, sig)
        pub = max(time.perf_counter() - t0, 1e-9)

        return cls(
            md5_bytes_per_second=md5_rate,
            des_bytes_per_second=des_rate,
            rsa_private_seconds=priv,
            rsa_public_seconds=pub,
        )


class SecureTransferProtocol:
    """Watermarked + anonymized document transfer between browsers."""

    def __init__(
        self,
        proxy_keypair: RSAKeyPair | None = None,
        overhead: SecurityOverheadModel | None = None,
        seed: int | None = 12345,
    ) -> None:
        self.authority = WatermarkAuthority(proxy_keypair or generate_keypair(512, seed=seed))
        self.anonymizer = AnonymizingProxy(seed=seed)
        self.overhead = overhead or SecurityOverheadModel()
        self._watermarks: dict[int, Watermark] = {}

    def publish(self, holder: PeerEndpoint, key: int, document: bytes) -> Watermark:
        """The proxy serves *document* to *holder* for the first time,
        watermarking it on the way (paper §6.1 step one)."""
        mark = self.authority.create(document)
        self._watermarks[key] = mark
        holder.store[key] = document
        return mark

    def transfer(
        self,
        requester: PeerEndpoint,
        holder: PeerEndpoint,
        key: int,
    ) -> tuple[bytes, TransferRecord]:
        """Serve a remote-browser hit: anonymized relay + integrity check.

        Returns the verified document and the overhead accounting.
        Raises :class:`~repro.security.watermark.WatermarkError` if the
        holder's copy was tampered with.
        """
        if key not in self._watermarks:
            raise KeyError(f"document {key} was never published through the proxy")
        document = self.anonymizer.relay(requester, holder, key)
        mark = self._watermarks[key]
        verify_watermark(document, mark, self.authority.public)

        doc_bytes = len(document)
        record = TransferRecord(
            doc_key=key,
            doc_bytes=doc_bytes,
            md5_ops=2,
            des_blocks=2 * ((doc_bytes + 7) // 8) * 2,
            rsa_private_ops=2,
            rsa_public_ops=3,
            crypto_seconds=self.overhead.transfer_cost(doc_bytes),
            verified=True,
        )
        return document, record
