"""Digital watermark for data integrity (paper §6.1).

The proxy generates an MD5 message digest of each document it serves
and encrypts the digest with its **private** key, producing the
watermark ``{MD5(doc)}_{K_priv}``.  The watermark travels with the
document into browser caches.  When one client forwards the document to
another, the receiver recomputes the MD5 digest and checks it against
the watermark decrypted with the proxy's **public** key.  No client can
tamper with a document and still produce a matching watermark, because
only the proxy knows its private key.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.security.md5 import md5_digest
from repro.security.rsa import RSAKeyPair

__all__ = ["Watermark", "WatermarkAuthority", "WatermarkError", "verify_watermark"]


class WatermarkError(Exception):
    """Raised when a watermarked document fails integrity verification."""


@dataclass(frozen=True)
class Watermark:
    """A proxy-signed MD5 digest of one document."""

    digest: bytes
    signature: int

    def __post_init__(self) -> None:
        if len(self.digest) != 16:
            raise ValueError(f"MD5 digest must be 16 bytes, got {len(self.digest)}")


class WatermarkAuthority:
    """The proxy's signing role.

    Holds the proxy key pair; clients only ever see the public part
    (``authority.public``) and verify with :func:`verify_watermark`.
    """

    def __init__(self, keypair: RSAKeyPair) -> None:
        if keypair.max_message_bytes < 16:
            raise ValueError(
                "proxy key modulus too small to sign a 16-byte MD5 digest"
            )
        self._keypair = keypair

    @property
    def public(self) -> tuple[int, int]:
        """The proxy's public key ``(n, e)``, known to all clients."""
        return self._keypair.public

    def create(self, document: bytes) -> Watermark:
        """Digest and sign *document* (done once, when the proxy first
        fetches the document from the origin)."""
        digest = md5_digest(document)
        return Watermark(digest=digest, signature=self._keypair.sign(digest))

    def verify(self, document: bytes, watermark: Watermark) -> None:
        """Proxy-side verification (convenience; clients use
        :func:`verify_watermark` with just the public key)."""
        verify_watermark(document, watermark, self.public)


def verify_watermark(
    document: bytes,
    watermark: Watermark,
    proxy_public: tuple[int, int],
) -> None:
    """Client-side check that *document* is intact.

    Recomputes MD5(document) and compares it against the watermark
    signature decrypted with the proxy's public key.  Raises
    :class:`WatermarkError` on any mismatch.
    """
    n, e = proxy_public
    digest = md5_digest(document)
    if digest != watermark.digest:
        raise WatermarkError("document digest does not match watermark digest")
    recovered = pow(watermark.signature, e, n)
    if recovered != int.from_bytes(watermark.digest, "big"):
        raise WatermarkError("watermark signature was not produced by the proxy")
