"""Mutual-anonymity protocols with limited proxy involvement
(HPL-2001-204 variants the paper cites in §6.2).

The baseline :class:`~repro.security.anonymity.AnonymizingProxy` relays
*content* through the proxy — full anonymity but the proxy carries
every shared byte.  The tech report's refinements reduce the proxy's
load while keeping requester and holder mutually anonymous:

* :class:`ShortcutResponseProtocol` — the proxy only brokers: it hands
  the holder a one-time *rendezvous tag* and a requester-chosen return
  key (never the requester's identity).  The holder broadcasts the
  encrypted response on the LAN tagged with the rendezvous tag; only
  the requester recognises the tag and can decrypt.  Content bytes
  cross the wire once instead of twice.
* :class:`CrowdsStyleForwarder` — no proxy at all: each peer forwards a
  request to a randomly chosen peer, flipping a biased coin to decide
  whether to forward again or submit; the initiator is hidden in the
  crowd (plausible deniability rather than cryptographic anonymity).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.security.anonymity import AnonymityError, Message, PeerEndpoint
from repro.security.des import DES
from repro.security.rsa import rsa_encrypt_int
from repro.util.rng import make_rng
from repro.util.validation import check_probability

__all__ = ["ShortcutResponseProtocol", "CrowdsStyleForwarder"]


class ShortcutResponseProtocol:
    """Broker-only proxy; content travels holder → LAN broadcast.

    Message flow for one remote hit of document *key*:

    1. requester → proxy: request carrying a fresh rendezvous tag and a
       DES return key, both encrypted so only the proxy can read them,
    2. proxy → holder: the tag and return key (re-wrapped for the
       holder) — no requester identity,
    3. holder → LAN broadcast: ``tag || E_returnkey(document)``; every
       client sees the broadcast, only the requester recognises the tag.

    The proxy never touches the document; the holder never learns the
    requester; eavesdroppers see only ciphertext under a one-time key.
    """

    def __init__(self, name: str = "proxy", seed: int | np.random.Generator | None = None) -> None:
        self.name = name
        self._rng = make_rng(seed)
        self.transcript: list[Message] = []
        self.broadcasts: list[bytes] = []

    def _random_bytes(self, n: int) -> bytes:
        return bytes(int(b) for b in self._rng.integers(0, 256, size=n))

    def _send(self, sender: str, receiver: str, kind: str, payload: bytes) -> None:
        self.transcript.append(
            Message(sender=sender, receiver=receiver, kind=kind, payload=payload)
        )

    def exchange(self, requester: PeerEndpoint, holder: PeerEndpoint, key: int) -> bytes:
        """Run the three-message exchange; returns the document as
        recovered by the requester."""
        if key not in holder.store:
            raise AnonymityError(f"holder does not have document {key}")

        tag = self._random_bytes(16)
        return_key = self._random_bytes(8)

        # 1. request: tag + return key, for the proxy's eyes only (the
        #    wire carries them RSA-wrapped; we model the wrap on the
        #    return key, the tag is public randomness).
        self._send(requester.name, self.name, "request", key.to_bytes(8, "big") + tag)

        # 2. brokering: proxy re-wraps the return key for the holder.
        wrapped = rsa_encrypt_int(int.from_bytes(return_key, "big"), holder.public)
        n_bytes = (holder.keypair.n.bit_length() + 7) // 8
        self._send(
            self.name,
            holder.name,
            "broker",
            key.to_bytes(8, "big") + tag + wrapped.to_bytes(n_bytes, "big"),
        )

        # 3. holder broadcasts the response to the whole LAN segment.
        recovered_key = pow(wrapped, holder.keypair.d, holder.keypair.n)
        if recovered_key >= 1 << 64:
            raise AnonymityError("holder failed to unwrap the return key")
        iv = self._random_bytes(8)
        ciphertext = DES(recovered_key.to_bytes(8, "big")).encrypt_cbc(
            holder.store[key], iv
        )
        frame = tag + iv + ciphertext
        self.broadcasts.append(frame)
        self._send(holder.name, "*broadcast*", "response", frame)

        # requester side: pick its frame out of the broadcast channel.
        for seen in self.broadcasts:
            if seen[:16] == tag:
                return DES(return_key).decrypt_cbc(seen[24:], seen[16:24])
        raise AnonymityError("rendezvous frame never appeared")  # pragma: no cover


@dataclass
class CrowdsStyleForwarder:
    """Crowds-style request forwarding among peers (no proxy).

    Each hop forwards to a random peer with probability
    ``forward_probability``, otherwise submits to the holder.  The
    holder (and any local observer) cannot tell whether its predecessor
    originated the request or merely forwarded it.
    """

    peers: list[PeerEndpoint]
    forward_probability: float = 0.75
    seed: int | None = 0
    transcript: list[Message] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_probability("forward_probability", self.forward_probability)
        if len(self.peers) < 2:
            raise AnonymityError("a crowd needs at least two peers")
        self._rng = make_rng(self.seed)

    def route(self, initiator: PeerEndpoint, holder: PeerEndpoint, key: int) -> tuple[bytes, int]:
        """Forward a request for *key* through the crowd to *holder*.

        Returns ``(document, path_length)``.
        """
        if key not in holder.store:
            raise AnonymityError(f"holder does not have document {key}")
        current = initiator
        hops = 0
        while True:
            if self._rng.random() >= self.forward_probability:
                break
            candidates = [p for p in self.peers if p.name != current.name]
            nxt = candidates[int(self._rng.random() * len(candidates))]
            self.transcript.append(
                Message(
                    sender=current.name,
                    receiver=nxt.name,
                    kind="forward",
                    payload=key.to_bytes(8, "big"),
                )
            )
            current = nxt
            hops += 1
            if hops > 64:  # geometric tail guard
                break
        self.transcript.append(
            Message(
                sender=current.name,
                receiver=holder.name,
                kind="submit",
                payload=key.to_bytes(8, "big"),
            )
        )
        return holder.store[key], hops

    def predecessor_of_submit(self) -> str:
        """Who the holder saw — its anonymity set is the whole crowd."""
        submits = [m for m in self.transcript if m.kind == "submit"]
        if not submits:
            raise AnonymityError("no request submitted yet")
        return submits[-1].sender
