"""Communication anonymity protocols (paper §6.2 and HPL-2001-204).

Two mechanisms are implemented:

* :class:`AnonymizingProxy` — the paper's primary design: the proxy
  acts as an anonymizer.  A requesting client only ever talks to the
  proxy; the proxy contacts the holder and relays the content.  The
  holder never learns who requested, and the requester never learns who
  served.  Payloads between holder and proxy are encrypted under a
  per-transfer DES session key so a LAN eavesdropper learns neither
  content nor (from content) the participants.

* :class:`MixChain` — the decentralised alternative ("anonymity
  protocols that hide identities among peer browsers with no or limited
  centralized controls"): the requester builds an onion over a chain of
  peer hops; each hop can decrypt only its own layer, learning just the
  next hop.

Both protocols operate on an in-memory message transcript, so tests can
assert the anonymity properties by inspecting exactly what bytes each
principal observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.security.des import DES
from repro.security.rsa import RSAKeyPair, generate_keypair, rsa_encrypt_int
from repro.util.rng import make_rng

__all__ = [
    "AnonymityError",
    "Message",
    "PeerEndpoint",
    "AnonymizingProxy",
    "MixChain",
]


class AnonymityError(Exception):
    """Protocol violation or undecryptable message."""


@dataclass(frozen=True)
class Message:
    """One protocol message as observed on the wire.

    ``sender``/``receiver`` are the *physical* LAN endpoints (what an
    eavesdropper on the segment sees); ``payload`` is the bytes
    delivered.  Anonymity assertions check that application-level
    identities never appear where they must not.
    """

    sender: str
    receiver: str
    kind: str
    payload: bytes


@dataclass
class PeerEndpoint:
    """A client machine participating in the protocols."""

    name: str
    keypair: RSAKeyPair
    #: documents cached locally: doc key -> content bytes
    store: dict[int, bytes] = field(default_factory=dict)

    @property
    def public(self) -> tuple[int, int]:
        return self.keypair.public

    @classmethod
    def create(cls, name: str, seed: int | None = None, bits: int = 512) -> "PeerEndpoint":
        return cls(name=name, keypair=generate_keypair(bits, seed=seed))


def _wrap_session_key(session_key: bytes, public: tuple[int, int]) -> int:
    """RSA-encrypt an 8-byte DES session key for *public*."""
    return rsa_encrypt_int(int.from_bytes(session_key, "big"), public)


def _unwrap_session_key(wrapped: int, keypair: RSAKeyPair) -> bytes:
    m = pow(wrapped, keypair.d, keypair.n)
    if m >= 1 << 64:
        # Decrypting with the wrong private key yields a random value
        # far wider than a DES session key.
        raise AnonymityError("session key unwrap failed: not addressed to this key")
    return m.to_bytes(8, "big")


class AnonymizingProxy:
    """The proxy-mediated anonymity protocol.

    Flow for one remote-browser hit:

    1. requester → proxy: request for document *key* (the proxy knows
       the requester, as it must — it is trusted infrastructure),
    2. proxy → holder: fetch *key*, carrying a fresh DES session key
       wrapped under the holder's public RSA key — **no requester
       identity**,
    3. holder → proxy: document encrypted under the session key,
    4. proxy → requester: document re-encrypted under a session key
       shared with the requester — **no holder identity**.
    """

    def __init__(self, name: str = "proxy", seed: int | np.random.Generator | None = None) -> None:
        self.name = name
        self._rng = make_rng(seed)
        self.transcript: list[Message] = []

    def _session_key(self) -> bytes:
        return bytes(int(b) for b in self._rng.integers(0, 256, size=8))

    def _send(self, sender: str, receiver: str, kind: str, payload: bytes) -> Message:
        msg = Message(sender=sender, receiver=receiver, kind=kind, payload=payload)
        self.transcript.append(msg)
        return msg

    def relay(
        self,
        requester: PeerEndpoint,
        holder: PeerEndpoint,
        key: int,
    ) -> bytes:
        """Run the four-message relay; returns the document as received
        by the requester.  Raises :class:`AnonymityError` if the holder
        does not actually have the document."""
        # 1. request (requester -> proxy); names the document only.
        self._send(requester.name, self.name, "request", key.to_bytes(8, "big"))

        if key not in holder.store:
            raise AnonymityError(
                f"index said client holds doc {key} but it is not in its store"
            )

        # 2. fetch (proxy -> holder): wrapped session key + doc key.
        k_hold = self._session_key()
        wrapped = _wrap_session_key(k_hold, holder.public)
        fetch_payload = key.to_bytes(8, "big") + wrapped.to_bytes(
            (holder.keypair.n.bit_length() + 7) // 8, "big"
        )
        self._send(self.name, holder.name, "fetch", fetch_payload)

        # 3. deliver (holder -> proxy): document under the session key.
        recovered_key = _unwrap_session_key(wrapped, holder.keypair)
        if recovered_key != k_hold:
            raise AnonymityError("holder failed to unwrap the session key")
        iv = self._session_key()
        ciphertext = DES(k_hold).encrypt_cbc(holder.store[key], iv)
        self._send(holder.name, self.name, "deliver", iv + ciphertext)

        # 4. forward (proxy -> requester): re-encrypted for the requester.
        document = DES(k_hold).decrypt_cbc(ciphertext, iv)
        k_req = self._session_key()
        wrapped_req = _wrap_session_key(k_req, requester.public)
        iv2 = self._session_key()
        ct2 = DES(k_req).encrypt_cbc(document, iv2)
        payload = (
            wrapped_req.to_bytes((requester.keypair.n.bit_length() + 7) // 8, "big")
            + iv2
            + ct2
        )
        self._send(self.name, requester.name, "forward", payload)

        # Requester-side decryption.
        n_bytes = (requester.keypair.n.bit_length() + 7) // 8
        got_wrapped = int.from_bytes(payload[:n_bytes], "big")
        got_key = _unwrap_session_key(got_wrapped, requester.keypair)
        return DES(got_key).decrypt_cbc(payload[n_bytes + 8 :], payload[n_bytes : n_bytes + 8])

    # -- anonymity checks (used by tests and examples) -------------------

    def holder_view(self, holder: PeerEndpoint) -> list[Message]:
        """Messages the holder sent or received."""
        return [m for m in self.transcript if holder.name in (m.sender, m.receiver)]

    def requester_view(self, requester: PeerEndpoint) -> list[Message]:
        return [m for m in self.transcript if requester.name in (m.sender, m.receiver)]


class MixChain:
    """Onion routing over a chain of peer hops (decentralised variant).

    The requester picks hops ``h1 … hk`` ending at the holder and builds
    nested layers: the outermost is decryptable only by ``h1`` and names
    ``h2``; the innermost is decryptable only by the holder and contains
    the document request.  Each hop learns its predecessor and successor
    and nothing else.
    """

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        self._rng = make_rng(seed)
        self.transcript: list[Message] = []

    def _session_key(self) -> bytes:
        return bytes(int(b) for b in self._rng.integers(0, 256, size=8))

    def build_onion(self, hops: list[PeerEndpoint], request: bytes) -> bytes:
        """Wrap *request* in one DES+RSA layer per hop, innermost last."""
        if not hops:
            raise AnonymityError("mix chain needs at least one hop")
        payload = request
        for i, hop in enumerate(reversed(hops)):
            nxt = hops[len(hops) - i] if i > 0 else None
            next_name = (nxt.name if nxt else "").encode().ljust(16, b"\x00")[:16]
            key = self._session_key()
            iv = self._session_key()
            wrapped = _wrap_session_key(key, hop.public)
            n_bytes = (hop.keypair.n.bit_length() + 7) // 8
            body = DES(key).encrypt_cbc(next_name + payload, iv)
            payload = wrapped.to_bytes(n_bytes, "big") + iv + body
        return payload

    def peel(self, hop: PeerEndpoint, onion: bytes) -> tuple[str, bytes]:
        """One hop strips its layer: returns (next hop name, inner bytes)."""
        n_bytes = (hop.keypair.n.bit_length() + 7) // 8
        if len(onion) < n_bytes + 8:
            raise AnonymityError("onion too short for this hop")
        wrapped = int.from_bytes(onion[:n_bytes], "big")
        key = _unwrap_session_key(wrapped, hop.keypair)
        iv = onion[n_bytes : n_bytes + 8]
        try:
            plain = DES(key).decrypt_cbc(onion[n_bytes + 8 :], iv)
        except ValueError as exc:
            raise AnonymityError("layer not addressed to this hop") from exc
        next_name = plain[:16].rstrip(b"\x00").decode()
        return next_name, plain[16:]

    def route(self, hops: list[PeerEndpoint], request: bytes) -> bytes:
        """Send *request* through the full chain, recording each wire
        message; returns the request as seen by the final hop."""
        onion = self.build_onion(hops, request)
        sender = "requester"
        inner = onion
        for i, hop in enumerate(hops):
            self.transcript.append(
                Message(sender=sender, receiver=hop.name, kind="onion", payload=inner)
            )
            next_name, inner = self.peel(hop, inner)
            expected = hops[i + 1].name if i + 1 < len(hops) else ""
            if next_name != expected:
                raise AnonymityError(
                    f"layer routing mismatch at {hop.name}: {next_name!r} != {expected!r}"
                )
            sender = hop.name
        return inner
