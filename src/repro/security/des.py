"""DES (Data Encryption Standard) block cipher, from scratch.

The paper names DES as its example symmetric-key system for the
peer-to-peer integrity/anonymity protocols.  This is the full 16-round
Feistel cipher per FIPS 46-3 — initial/final permutations, expansion,
eight S-boxes, PC-1/PC-2 key schedule — with ECB and CBC modes and
PKCS#7 padding for arbitrary-length messages.

As with MD5, DES appears here because the 2002 paper used it; it is a
faithful substrate reconstruction, not a recommendation.
"""

from __future__ import annotations

__all__ = ["DES", "des_encrypt_block", "des_decrypt_block"]

# fmt: off
_IP = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
]

_FP = [
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
]

_E = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9,
    8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
]

_P = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10,
    2, 8, 24, 14, 32, 27, 3, 9, 19, 13, 30, 6, 22, 11, 4, 25,
]

_SBOXES = [
    [
        [14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7],
        [0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8],
        [4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0],
        [15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13],
    ],
    [
        [15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10],
        [3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5],
        [0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15],
        [13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9],
    ],
    [
        [10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8],
        [13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1],
        [13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7],
        [1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12],
    ],
    [
        [7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15],
        [13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9],
        [10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4],
        [3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14],
    ],
    [
        [2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9],
        [14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6],
        [4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14],
        [11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3],
    ],
    [
        [12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11],
        [10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8],
        [9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6],
        [4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13],
    ],
    [
        [4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1],
        [13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6],
        [1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2],
        [6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12],
    ],
    [
        [13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7],
        [1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2],
        [7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8],
        [2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11],
    ],
]

_PC1 = [
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18,
    10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22,
    14, 6, 61, 53, 45, 37, 29, 21, 13, 5, 28, 20, 12, 4,
]

_PC2 = [
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10,
    23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2,
    41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
]

_ROTATIONS = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1]
# fmt: on


def _permute(value: int, width: int, table: list[int]) -> int:
    """Bit permutation: output bit i takes input bit table[i] (1-based,
    MSB-first, as in FIPS 46-3)."""
    out = 0
    for pos in table:
        out = (out << 1) | ((value >> (width - pos)) & 1)
    return out


def _rotl28(value: int, n: int) -> int:
    return ((value << n) | (value >> (28 - n))) & 0xFFFFFFF


def _feistel(half: int, subkey: int) -> int:
    expanded = _permute(half, 32, _E) ^ subkey
    out = 0
    for i in range(8):
        chunk = (expanded >> (42 - 6 * i)) & 0x3F
        row = ((chunk >> 4) & 0b10) | (chunk & 1)
        col = (chunk >> 1) & 0xF
        out = (out << 4) | _SBOXES[i][row][col]
    return _permute(out, 32, _P)


class DES:
    """DES with ECB/CBC modes and PKCS#7 padding."""

    block_size = 8
    key_size = 8

    def __init__(self, key: bytes) -> None:
        if len(key) != 8:
            raise ValueError(f"DES key must be 8 bytes, got {len(key)}")
        self._subkeys = self._key_schedule(int.from_bytes(key, "big"))

    @staticmethod
    def _key_schedule(key: int) -> list[int]:
        permuted = _permute(key, 64, _PC1)
        c = (permuted >> 28) & 0xFFFFFFF
        d = permuted & 0xFFFFFFF
        subkeys = []
        for rot in _ROTATIONS:
            c = _rotl28(c, rot)
            d = _rotl28(d, rot)
            subkeys.append(_permute((c << 28) | d, 56, _PC2))
        return subkeys

    # -- single blocks --------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        return self._crypt_block(block, self._subkeys)

    def decrypt_block(self, block: bytes) -> bytes:
        return self._crypt_block(block, self._subkeys[::-1])

    def _crypt_block(self, block: bytes, subkeys: list[int]) -> bytes:
        if len(block) != 8:
            raise ValueError(f"DES block must be 8 bytes, got {len(block)}")
        value = _permute(int.from_bytes(block, "big"), 64, _IP)
        left = (value >> 32) & 0xFFFFFFFF
        right = value & 0xFFFFFFFF
        for subkey in subkeys:
            left, right = right, left ^ _feistel(right, subkey)
        # Final swap then FP.
        combined = (right << 32) | left
        return _permute(combined, 64, _FP).to_bytes(8, "big")

    # -- messages --------------------------------------------------------

    def encrypt_ecb(self, message: bytes) -> bytes:
        padded = _pad(message)
        return b"".join(
            self.encrypt_block(padded[i : i + 8]) for i in range(0, len(padded), 8)
        )

    def decrypt_ecb(self, ciphertext: bytes) -> bytes:
        _check_blocks(ciphertext)
        plain = b"".join(
            self.decrypt_block(ciphertext[i : i + 8])
            for i in range(0, len(ciphertext), 8)
        )
        return _unpad(plain)

    def encrypt_cbc(self, message: bytes, iv: bytes) -> bytes:
        if len(iv) != 8:
            raise ValueError("IV must be 8 bytes")
        padded = _pad(message)
        prev = iv
        out = []
        for i in range(0, len(padded), 8):
            block = bytes(a ^ b for a, b in zip(padded[i : i + 8], prev))
            prev = self.encrypt_block(block)
            out.append(prev)
        return b"".join(out)

    def decrypt_cbc(self, ciphertext: bytes, iv: bytes) -> bytes:
        if len(iv) != 8:
            raise ValueError("IV must be 8 bytes")
        _check_blocks(ciphertext)
        prev = iv
        out = []
        for i in range(0, len(ciphertext), 8):
            block = ciphertext[i : i + 8]
            plain = self.decrypt_block(block)
            out.append(bytes(a ^ b for a, b in zip(plain, prev)))
            prev = block
        return _unpad(b"".join(out))


def _pad(message: bytes) -> bytes:
    n = 8 - len(message) % 8
    return message + bytes([n]) * n


def _unpad(padded: bytes) -> bytes:
    if not padded:
        raise ValueError("empty ciphertext")
    n = padded[-1]
    if not (1 <= n <= 8) or padded[-n:] != bytes([n]) * n:
        raise ValueError("bad PKCS#7 padding")
    return padded[:-n]


def _check_blocks(ciphertext: bytes) -> None:
    if len(ciphertext) == 0 or len(ciphertext) % 8:
        raise ValueError(
            f"ciphertext length must be a positive multiple of 8, got {len(ciphertext)}"
        )


def des_encrypt_block(key: bytes, block: bytes) -> bytes:
    """One-shot single-block DES encryption."""
    return DES(key).encrypt_block(block)


def des_decrypt_block(key: bytes, block: bytes) -> bytes:
    """One-shot single-block DES decryption."""
    return DES(key).decrypt_block(block)
