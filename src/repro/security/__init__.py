"""Reliability and security substrate (paper §6).

Everything here is implemented from scratch in pure Python:

* :mod:`repro.security.md5` — RFC 1321 MD5, used for the 16-byte URL
  signatures in the browser index and for message digests,
* :mod:`repro.security.rsa` — RSA key generation, raw encryption, and
  signatures (the proxy's public/private key pair),
* :mod:`repro.security.des` — the full 16-round DES block cipher with
  ECB/CBC modes (the symmetric-key system the paper names),
* :mod:`repro.security.watermark` — the proxy-signed digital watermark
  ensuring documents forwarded between browsers are tamper-proof,
* :mod:`repro.security.anonymity` — the proxy-anonymizer and peer mix
  protocols hiding requester/provider identities,
* :mod:`repro.security.protocols` — end-to-end message-flow simulation
  with overhead accounting ("the associated overheads are trivial").
"""

from repro.security.md5 import md5_digest, md5_hexdigest, MD5
from repro.security.rsa import RSAKeyPair, generate_keypair, rsa_encrypt_int, rsa_decrypt_int
from repro.security.des import DES, des_encrypt_block, des_decrypt_block
from repro.security.watermark import Watermark, WatermarkAuthority, WatermarkError
from repro.security.anonymity import (
    AnonymizingProxy,
    MixChain,
    PeerEndpoint,
    AnonymityError,
)
from repro.security.mutual import ShortcutResponseProtocol, CrowdsStyleForwarder
from repro.security.protocols import (
    SecureTransferProtocol,
    TransferRecord,
    SecurityOverheadModel,
)

__all__ = [
    "md5_digest",
    "md5_hexdigest",
    "MD5",
    "RSAKeyPair",
    "generate_keypair",
    "rsa_encrypt_int",
    "rsa_decrypt_int",
    "DES",
    "des_encrypt_block",
    "des_decrypt_block",
    "Watermark",
    "WatermarkAuthority",
    "WatermarkError",
    "AnonymizingProxy",
    "MixChain",
    "PeerEndpoint",
    "AnonymityError",
    "ShortcutResponseProtocol",
    "CrowdsStyleForwarder",
    "SecureTransferProtocol",
    "TransferRecord",
    "SecurityOverheadModel",
]
