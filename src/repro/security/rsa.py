"""RSA public-key cryptosystem (key generation, raw encryption,
signatures), implemented from scratch.

The paper's data-integrity protocol has the proxy sign an MD5 digest
with its private key; every client holds the proxy's public key and can
verify the watermark but cannot forge it.  This module provides exactly
that primitive: textbook RSA over fixed-width digests.

Keys default to 512 bits — generation and per-document signing stay
fast in pure Python while the signature remains unforgeable *within the
simulation's trust model* (a 2002-era LAN of mutually trusted peers).
This is a faithful reconstruction of the paper's protocol, not a
modern-hardened RSA implementation (no OAEP/PSS padding).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import make_rng

__all__ = [
    "RSAKeyPair",
    "generate_keypair",
    "rsa_encrypt_int",
    "rsa_decrypt_int",
    "is_probable_prime",
]

# Deterministic Miller-Rabin witnesses: this set is proven sufficient
# for all n < 3.3 * 10^24, far beyond our prime sizes' error budget
# when combined with random witnesses.
_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_probable_prime(n: int, rng: np.random.Generator | None = None, rounds: int = 24) -> bool:
    """Miller-Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # write n-1 = d * 2^r with d odd
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    witnesses = list(_SMALL_PRIMES)
    if rng is not None and n > 5:
        # n can exceed int64, so draw wide words and reduce into [2, n-2].
        n_extra = max(0, rounds - len(witnesses))
        words = rng.integers(0, 2**63, size=2 * n_extra, dtype=np.int64)
        for j in range(n_extra):
            wide = (int(words[2 * j]) << 63) | int(words[2 * j + 1])
            witnesses.append(2 + wide % (n - 4))
    for a in witnesses:
        a %= n
        if a in (0, 1, n - 1):
            continue
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: np.random.Generator) -> int:
    """Draw a random prime with exactly *bits* bits."""
    if bits < 8:
        raise ValueError(f"prime size too small: {bits} bits")
    n_words = (bits + 63) // 64
    while True:
        words = rng.integers(0, 2**63, size=n_words, dtype=np.int64).astype(object)
        candidate = 0
        for w in words:
            candidate = (candidate << 63) | int(w)
        candidate &= (1 << bits) - 1
        candidate |= (1 << (bits - 1)) | 1  # top bit and odd
        if is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RSAKeyPair:
    """An RSA key pair.  ``(n, e)`` is public; ``d`` is private."""

    n: int
    e: int
    d: int

    @property
    def public(self) -> tuple[int, int]:
        return self.n, self.e

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def max_message_bytes(self) -> int:
        """Largest message (in bytes) representable below the modulus."""
        return (self.n.bit_length() - 1) // 8

    # -- signatures (private-key encryption of a digest) ---------------

    def sign(self, message: bytes) -> int:
        """Encrypt *message* (e.g. an MD5 digest) with the private key."""
        m = int.from_bytes(message, "big")
        if m >= self.n:
            raise ValueError(
                f"message too large for modulus: {len(message)} bytes "
                f"vs {self.max_message_bytes}-byte limit"
            )
        return pow(m, self.d, self.n)

    def verify(self, message: bytes, signature: int) -> bool:
        """Check that *signature* decrypts (with the public key) to
        *message*."""
        if not (0 <= signature < self.n):
            return False
        recovered = pow(signature, self.e, self.n)
        return recovered == int.from_bytes(message, "big")

    def recover(self, signature: int) -> bytes:
        """Public-key decryption of a signature back to digest bytes."""
        m = pow(signature, self.e, self.n)
        length = (m.bit_length() + 7) // 8
        return m.to_bytes(max(length, 1), "big")


def generate_keypair(
    bits: int = 512,
    seed: int | np.random.Generator | None = None,
    e: int = 65537,
) -> RSAKeyPair:
    """Generate an RSA key pair with a *bits*-bit modulus."""
    if bits < 64:
        raise ValueError(f"modulus too small: {bits} bits")
    rng = make_rng(seed)
    half = bits // 2
    while True:
        p = _random_prime(half, rng)
        q = _random_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = pow(e, -1, phi)
        # Round-trip self-check: catches the (astronomically unlikely)
        # composite slipping past Miller-Rabin.
        probe = 0xDEADBEEF % n
        if pow(pow(probe, e, n), d, n) == probe:
            return RSAKeyPair(n=n, e=e, d=d)


def rsa_encrypt_int(m: int, public: tuple[int, int]) -> int:
    """Raw RSA encryption of an integer with a public key ``(n, e)``."""
    n, e = public
    if not (0 <= m < n):
        raise ValueError("message out of range for modulus")
    return pow(m, e, n)


def rsa_decrypt_int(c: int, key: RSAKeyPair) -> int:
    """Raw RSA decryption of an integer with the private key."""
    if not (0 <= c < key.n):
        raise ValueError("ciphertext out of range for modulus")
    return pow(c, key.d, key.n)
