"""MD5 message digest, implemented from RFC 1321.

The paper uses 16-byte MD5 signatures for URLs in the browser index
(§5) and MD5 message digests inside the digital watermark (§6.1), and
cites Rivest's RFC 1321 directly — so we implement the algorithm
rather than wrapping :mod:`hashlib`.  (The test suite cross-checks this
implementation against ``hashlib.md5`` on random inputs.)

Note: MD5 is used here exactly as the paper used it in 2002 — as a
content fingerprint inside a trusted LAN — not as a modern
collision-resistant primitive.
"""

from __future__ import annotations

import struct

__all__ = ["MD5", "md5_digest", "md5_hexdigest"]

# Per-round left-rotate amounts (RFC 1321 §3.4).
_SHIFTS = (
    [7, 12, 17, 22] * 4
    + [5, 9, 14, 20] * 4
    + [4, 11, 16, 23] * 4
    + [6, 10, 15, 21] * 4
)

# K[i] = floor(2^32 * abs(sin(i + 1))), precomputed per the RFC.
_K = [
    0xD76AA478, 0xE8C7B756, 0x242070DB, 0xC1BDCEEE,
    0xF57C0FAF, 0x4787C62A, 0xA8304613, 0xFD469501,
    0x698098D8, 0x8B44F7AF, 0xFFFF5BB1, 0x895CD7BE,
    0x6B901122, 0xFD987193, 0xA679438E, 0x49B40821,
    0xF61E2562, 0xC040B340, 0x265E5A51, 0xE9B6C7AA,
    0xD62F105D, 0x02441453, 0xD8A1E681, 0xE7D3FBC8,
    0x21E1CDE6, 0xC33707D6, 0xF4D50D87, 0x455A14ED,
    0xA9E3E905, 0xFCEFA3F8, 0x676F02D9, 0x8D2A4C8A,
    0xFFFA3942, 0x8771F681, 0x6D9D6122, 0xFDE5380C,
    0xA4BEEA44, 0x4BDECFA9, 0xF6BB4B60, 0xBEBFBC70,
    0x289B7EC6, 0xEAA127FA, 0xD4EF3085, 0x04881D05,
    0xD9D4D039, 0xE6DB99E5, 0x1FA27CF8, 0xC4AC5665,
    0xF4292244, 0x432AFF97, 0xAB9423A7, 0xFC93A039,
    0x655B59C3, 0x8F0CCC92, 0xFFEFF47D, 0x85845DD1,
    0x6FA87E4F, 0xFE2CE6E0, 0xA3014314, 0x4E0811A1,
    0xF7537E82, 0xBD3AF235, 0x2AD7D2BB, 0xEB86D391,
]

_MASK = 0xFFFFFFFF


def _rotl(x: int, n: int) -> int:
    x &= _MASK
    return ((x << n) | (x >> (32 - n))) & _MASK


class MD5:
    """Incremental MD5, mirroring the ``hashlib`` interface."""

    digest_size = 16
    block_size = 64

    def __init__(self, data: bytes = b"") -> None:
        self._a = 0x67452301
        self._b = 0xEFCDAB89
        self._c = 0x98BADCFE
        self._d = 0x10325476
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"expected bytes, got {type(data).__name__}")
        data = bytes(data)
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= 64:
            self._compress(self._buffer[:64])
            self._buffer = self._buffer[64:]

    def digest(self) -> bytes:
        # Work on copies so digest() is idempotent and update() can
        # continue afterwards, as with hashlib.
        clone = MD5.__new__(MD5)
        clone._a, clone._b, clone._c, clone._d = self._a, self._b, self._c, self._d
        clone._length = self._length
        clone._buffer = self._buffer
        bit_len = (clone._length * 8) & 0xFFFFFFFFFFFFFFFF
        pad_len = (55 - clone._length) % 64
        tail = b"\x80" + b"\x00" * pad_len + struct.pack("<Q", bit_len)
        clone._buffer += tail
        while len(clone._buffer) >= 64:
            clone._compress(clone._buffer[:64])
            clone._buffer = clone._buffer[64:]
        return struct.pack("<4I", clone._a, clone._b, clone._c, clone._d)

    def hexdigest(self) -> str:
        return self.digest().hex()

    def copy(self) -> "MD5":
        clone = MD5.__new__(MD5)
        clone._a, clone._b, clone._c, clone._d = self._a, self._b, self._c, self._d
        clone._buffer = self._buffer
        clone._length = self._length
        return clone

    def _compress(self, block: bytes) -> None:
        m = struct.unpack("<16I", block)
        a, b, c, d = self._a, self._b, self._c, self._d
        for i in range(64):
            if i < 16:
                f = (b & c) | (~b & d)
                g = i
            elif i < 32:
                f = (d & b) | (~d & c)
                g = (5 * i + 1) % 16
            elif i < 48:
                f = b ^ c ^ d
                g = (3 * i + 5) % 16
            else:
                f = c ^ (b | (~d & _MASK))
                g = (7 * i) % 16
            f = (f + a + _K[i] + m[g]) & _MASK
            a, d, c = d, c, b
            b = (b + _rotl(f, _SHIFTS[i])) & _MASK
        self._a = (self._a + a) & _MASK
        self._b = (self._b + b) & _MASK
        self._c = (self._c + c) & _MASK
        self._d = (self._d + d) & _MASK


def md5_digest(data: bytes | str) -> bytes:
    """16-byte MD5 digest of *data* (str is encoded UTF-8)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return MD5(data).digest()


def md5_hexdigest(data: bytes | str) -> str:
    """Hex MD5 digest of *data*."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return MD5(data).hexdigest()
