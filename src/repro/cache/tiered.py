"""Two-tier (memory + disk) LRU cache.

Section 4.2 of the paper compares *memory byte hit ratios*: with the
memory portion of each cache set to 1/10 of its total size (the ratio
reported for Squid deployments by Rousskov & Soloviev), a higher share
of BAPS hits land in browser-cache memory, reducing total hit latency.

The model: one LRU recency order across the whole cache; the most
recently used prefix that fits in ``memory_capacity`` lives in memory,
everything else on disk.  A disk hit promotes the object to memory,
demoting the memory LRU tail; a full cache evicts from the disk tail.
"""

from __future__ import annotations

from collections import OrderedDict
from enum import Enum
from typing import Callable, Iterator

from repro.cache.base import CacheEntry

__all__ = ["TieredLRUCache", "Tier"]


class Tier(Enum):
    """Where a tiered-cache hit was served from."""

    MEMORY = "memory"
    DISK = "disk"


class TieredLRUCache:
    """LRU cache split into a memory tier over a disk tier.

    Not a :class:`~repro.cache.base.Cache` subclass — its ``get``
    reports the serving tier, which the latency model needs.
    """

    policy = "tiered-lru"

    def __init__(self, capacity: int, memory_fraction: float = 0.1) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if not (0.0 <= memory_fraction <= 1.0):
            raise ValueError(
                f"memory_fraction must be in [0, 1], got {memory_fraction}"
            )
        self.capacity = int(capacity)
        self.memory_capacity = int(capacity * memory_fraction)
        # Both tiers are ordered least- to most-recently used.
        self._memory: OrderedDict[int, CacheEntry] = OrderedDict()
        self._disk: OrderedDict[int, CacheEntry] = OrderedDict()
        self.memory_used = 0
        self.disk_used = 0
        self.on_evict: Callable[[int], None] | None = None

    # -- public API ----------------------------------------------------

    @property
    def used(self) -> int:
        return self.memory_used + self.disk_used

    def get(self, key: int) -> tuple[CacheEntry | None, Tier | None]:
        """Look up *key*; returns ``(entry, tier)`` or ``(None, None)``.

        The tier reported is where the object was **before** this
        access (a disk hit pays disk latency even though the object is
        promoted to memory afterwards).
        """
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            return entry, Tier.MEMORY
        entry = self._disk.get(key)
        if entry is not None:
            del self._disk[key]
            self.disk_used -= entry.size
            self._admit_to_memory(entry)
            return entry, Tier.DISK
        return None, None

    def peek(self, key: int) -> CacheEntry | None:
        """Look up without promotion or recency update."""
        return self._memory.get(key) or self._disk.get(key)

    def tier_of(self, key: int) -> Tier | None:
        if key in self._memory:
            return Tier.MEMORY
        if key in self._disk:
            return Tier.DISK
        return None

    def put(self, key: int, size: int, version: int = 0) -> list[int]:
        """Insert or refresh; returns evicted keys."""
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        self._remove(key)
        if size > self.capacity:
            return []
        entry = CacheEntry(key, size, version)
        evicted = self._admit_to_memory(entry)
        if self.on_evict is not None:
            for k in evicted:
                self.on_evict(k)
        return evicted

    def invalidate(self, key: int) -> bool:
        removed = self._remove(key)
        if removed and self.on_evict is not None:
            self.on_evict(key)
        return removed

    def clear(self) -> None:
        """Empty both tiers without firing eviction callbacks, matching
        :meth:`repro.cache.base.Cache.clear` (a cold restart is not an
        eviction the index should hear about)."""
        self._memory.clear()
        self._disk.clear()
        self.memory_used = 0
        self.disk_used = 0

    def __contains__(self, key: int) -> bool:
        return key in self._memory or key in self._disk

    def __len__(self) -> int:
        return len(self._memory) + len(self._disk)

    def __iter__(self) -> Iterator[int]:
        yield from self._memory
        yield from self._disk

    def check_invariants(self) -> None:
        mem = sum(e.size for e in self._memory.values())
        dsk = sum(e.size for e in self._disk.values())
        if mem != self.memory_used or dsk != self.disk_used:
            raise AssertionError("tier occupancy drift")
        if self.memory_used > max(self.memory_capacity, self._max_single_mem()):
            raise AssertionError("memory tier over capacity")
        if self.used > self.capacity:
            raise AssertionError("cache over capacity")
        if set(self._memory) & set(self._disk):
            raise AssertionError("entry present in both tiers")

    # -- internals -------------------------------------------------------

    def _max_single_mem(self) -> int:
        # A single object larger than the memory tier is allowed to sit
        # alone in memory (it must live somewhere while being served).
        if len(self._memory) == 1:
            return next(iter(self._memory.values())).size
        return 0

    def _remove(self, key: int) -> bool:
        entry = self._memory.pop(key, None)
        if entry is not None:
            self.memory_used -= entry.size
            return True
        entry = self._disk.pop(key, None)
        if entry is not None:
            self.disk_used -= entry.size
            return True
        return False

    def _admit_to_memory(self, entry: CacheEntry) -> list[int]:
        """Place *entry* in the memory tier, demoting/evicting as needed."""
        self._memory[entry.key] = entry
        self.memory_used += entry.size
        # Demote memory overflow to disk (LRU first), keeping at least
        # the newly admitted entry in memory.
        while self.memory_used > self.memory_capacity and len(self._memory) > 1:
            old_key, old_entry = self._memory.popitem(last=False)
            self.memory_used -= old_entry.size
            self._disk[old_key] = old_entry
            self._disk.move_to_end(old_key)
            self.disk_used += old_entry.size
        # Evict disk overflow entirely.
        evicted: list[int] = []
        while self.used > self.capacity and self._disk:
            victim_key, victim = self._disk.popitem(last=False)
            self.disk_used -= victim.size
            evicted.append(victim_key)
        return evicted
