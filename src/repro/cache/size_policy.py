"""SIZE replacement policy (ablation baseline).

Evicts the largest object first — the classic web-cache heuristic that
maximises the request hit ratio at the expense of the byte hit ratio
(many small objects survive, few large ones do).
"""

from __future__ import annotations

import heapq
import itertools

from repro.cache.base import Cache

__all__ = ["SizeCache"]


class SizeCache(Cache):
    """Evict the biggest entry; ties break toward the older one."""

    policy = "size"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        # Max-heap on size via negation; lazy deletion on size changes.
        self._heap: list[tuple[int, int, int]] = []
        self._seq = itertools.count()

    def _push(self, key: int) -> None:
        entry = self._entries[key]
        heapq.heappush(self._heap, (-entry.size, next(self._seq), key))

    def _touch(self, key: int) -> None:
        # A refresh may have changed the size; repush so the heap sees it.
        self._push(key)

    def _on_insert(self, key: int) -> None:
        self._push(key)

    def _on_remove(self, key: int) -> None:
        pass  # lazy deletion

    def _pick_victim(self, exclude: int | None = None) -> int | None:
        skipped: list[tuple[int, int, int]] = []
        victim: int | None = None
        while self._heap:
            neg_size, seq, key = heapq.heappop(self._heap)
            entry = self._entries.get(key)
            if entry is None or entry.size != -neg_size:
                continue  # stale record
            if key == exclude:
                skipped.append((neg_size, seq, key))
                continue
            victim = key
            break
        for item in skipped:
            heapq.heappush(self._heap, item)
        return victim

    def _on_clear(self) -> None:
        self._heap.clear()
