"""Least-Frequently-Used cache (ablation baseline).

Uses a lazy-deletion heap: each access pushes a fresh ``(freq, seq,
key)`` record; stale records are discarded when popped.  Ties on
frequency break toward the older access (LRU among equals).
"""

from __future__ import annotations

import heapq
import itertools

from repro.cache.base import Cache

__all__ = ["LFUCache"]


class LFUCache(Cache):
    """Evict the entry with the fewest accesses."""

    policy = "lfu"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._freq: dict[int, int] = {}
        self._heap: list[tuple[int, int, int]] = []
        self._seq = itertools.count()

    def _push(self, key: int) -> None:
        heapq.heappush(self._heap, (self._freq[key], next(self._seq), key))

    def _touch(self, key: int) -> None:
        self._freq[key] += 1
        self._push(key)

    def _on_insert(self, key: int) -> None:
        self._freq[key] = 1
        self._push(key)

    def _on_remove(self, key: int) -> None:
        del self._freq[key]

    def _pick_victim(self, exclude: int | None = None) -> int | None:
        skipped: list[tuple[int, int, int]] = []
        victim: int | None = None
        while self._heap:
            freq, seq, key = heapq.heappop(self._heap)
            if self._freq.get(key) != freq:
                continue  # stale record
            if key == exclude:
                skipped.append((freq, seq, key))
                continue
            victim = key
            break
        for item in skipped:
            heapq.heappush(self._heap, item)
        return victim

    def _on_clear(self) -> None:
        self._freq.clear()
        self._heap.clear()

    def frequency(self, key: int) -> int:
        """Current access count for a resident key (0 if absent)."""
        return self._freq.get(key, 0)
