"""Cache substrate: size-bounded object caches with pluggable
replacement policies.

The paper's simulator uses LRU everywhere ("The cache replacement
algorithm used in our simulator is LRU"); the other policies here back
the replacement-policy ablation benchmark.  All caches share the same
semantics:

* capacities and occupancy are measured in **bytes**,
* entries carry a **version**; the simulation engine treats a version
  mismatch as a miss (the paper's size-change rule),
* objects larger than the capacity are never admitted,
* evictions can be observed through ``on_evict`` — this is how a
  browser cache sends invalidation messages to the proxy's browser
  index file.
"""

from repro.cache.base import Cache, CacheEntry
from repro.cache.lru import LRUCache
from repro.cache.fifo import FIFOCache
from repro.cache.lfu import LFUCache
from repro.cache.size_policy import SizeCache
from repro.cache.gdsf import GDSFCache
from repro.cache.slru import SLRUCache
from repro.cache.tiered import TieredLRUCache, Tier
from repro.cache.stats import CacheStats

POLICIES = {
    "lru": LRUCache,
    "fifo": FIFOCache,
    "lfu": LFUCache,
    "size": SizeCache,
    "gdsf": GDSFCache,
    "slru": SLRUCache,
}


def make_cache(policy: str, capacity: int) -> Cache:
    """Construct a cache by policy name (see :data:`POLICIES`)."""
    try:
        cls = POLICIES[policy.lower()]
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise KeyError(f"unknown policy {policy!r}; known: {known}") from None
    return cls(capacity)


__all__ = [
    "Cache",
    "CacheEntry",
    "LRUCache",
    "FIFOCache",
    "LFUCache",
    "SizeCache",
    "GDSFCache",
    "SLRUCache",
    "TieredLRUCache",
    "Tier",
    "CacheStats",
    "POLICIES",
    "make_cache",
]
