"""Hit/miss counters shared by caches and the simulation engine."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheStats"]


@dataclass
class CacheStats:
    """Request and byte counters for one cache or one hit location."""

    hits: int = 0
    misses: int = 0
    hit_bytes: int = 0
    miss_bytes: int = 0
    evictions: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    memory_hit_bytes: int = 0
    disk_hit_bytes: int = 0

    def record_hit(self, size: int) -> None:
        self.hits += 1
        self.hit_bytes += size

    def record_miss(self, size: int) -> None:
        self.misses += 1
        self.miss_bytes += size

    def record_tier_hit(self, size: int, memory: bool) -> None:
        self.record_hit(size)
        if memory:
            self.memory_hits += 1
            self.memory_hit_bytes += size
        else:
            self.disk_hits += 1
            self.disk_hit_bytes += size

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def total_bytes(self) -> int:
        return self.hit_bytes + self.miss_bytes

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def byte_hit_ratio(self) -> float:
        return self.hit_bytes / self.total_bytes if self.total_bytes else 0.0

    def merged(self, other: "CacheStats") -> "CacheStats":
        """Return the element-wise sum of two stats objects."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            hit_bytes=self.hit_bytes + other.hit_bytes,
            miss_bytes=self.miss_bytes + other.miss_bytes,
            evictions=self.evictions + other.evictions,
            memory_hits=self.memory_hits + other.memory_hits,
            disk_hits=self.disk_hits + other.disk_hits,
            memory_hit_bytes=self.memory_hit_bytes + other.memory_hit_bytes,
            disk_hit_bytes=self.disk_hit_bytes + other.disk_hit_bytes,
        )
