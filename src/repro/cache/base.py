"""Cache interface and shared bookkeeping.

Concrete policies implement :meth:`Cache._touch` (metadata update on
access), :meth:`Cache._on_insert`, and :meth:`Cache._pick_victim`.
The base class owns capacity accounting, the entry table, admission
control, and eviction callbacks, so policies stay small and obviously
correct.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterator

__all__ = ["Cache", "CacheEntry"]


class CacheEntry:
    """A cached object: key (document id), size in bytes, version.

    ``expires_at`` carries the expiration-based consistency deadline
    (see :mod:`repro.consistency`); infinity means never revalidate,
    which is the paper's implicit perfect-coherence assumption.
    """

    __slots__ = ("key", "size", "version", "expires_at")

    def __init__(
        self, key: int, size: int, version: int, expires_at: float = float("inf")
    ) -> None:
        self.key = key
        self.size = size
        self.version = version
        self.expires_at = expires_at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CacheEntry(key={self.key}, size={self.size}, version={self.version})"


class Cache(ABC):
    """Size-bounded object cache.

    Subclasses provide the replacement decision; all state transitions
    flow through :meth:`get`, :meth:`put`, and :meth:`invalidate`.
    """

    #: short policy name, e.g. ``"lru"``; set by subclasses.
    policy: str = "abstract"

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self.used = 0
        self._entries: dict[int, CacheEntry] = {}
        #: called with the evicted/invalidated key; used by the browser
        #: index to receive invalidation messages.
        self.on_evict: Callable[[int], None] | None = None

    # -- public API ----------------------------------------------------

    def get(self, key: int) -> CacheEntry | None:
        """Look up *key*, updating replacement metadata on a hit."""
        entry = self._entries.get(key)
        if entry is not None:
            self._touch(key)
        return entry

    def peek(self, key: int) -> CacheEntry | None:
        """Look up *key* without updating replacement metadata."""
        return self._entries.get(key)

    def put(self, key: int, size: int, version: int = 0) -> list[int]:
        """Insert or refresh an object; returns the evicted keys.

        Objects larger than the whole cache are not admitted (and any
        stale copy of the same key is dropped), matching how real
        proxies refuse objects beyond their storage.
        """
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        evicted: list[int] = []
        old = self._entries.get(key)
        if old is not None:
            # Refresh in place: account the size delta, keep identity.
            self.used -= old.size
            old.size = size
            old.version = version
            self.used += size
            self._touch(key)
        elif size > self.capacity:
            return evicted
        else:
            self._entries[key] = CacheEntry(key, size, version)
            self.used += size
            self._on_insert(key)
        while self.used > self.capacity:
            victim = self._pick_victim(exclude=key)
            if victim is None:
                # Only the just-refreshed oversized entry remains.
                self._drop(key)
                evicted.append(key)
                break
            self._drop(victim)
            evicted.append(victim)
        if self.on_evict is not None:
            for k in evicted:
                self.on_evict(k)
        return evicted

    def invalidate(self, key: int) -> bool:
        """Remove *key* if present.  Returns True when removed.

        Fires ``on_evict`` — an invalidation is observable exactly like
        an eviction from the index's point of view.
        """
        if key not in self._entries:
            return False
        self._drop(key)
        if self.on_evict is not None:
            self.on_evict(key)
        return True

    def clear(self) -> None:
        """Empty the cache without firing eviction callbacks."""
        self._entries.clear()
        self.used = 0
        self._on_clear()

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[int]:
        return iter(self._entries)

    @property
    def free(self) -> int:
        """Remaining capacity in bytes."""
        return self.capacity - self.used

    def check_invariants(self) -> None:
        """Verify internal consistency (used by property-based tests)."""
        total = sum(e.size for e in self._entries.values())
        if total != self.used:
            raise AssertionError(
                f"occupancy drift: tracked {self.used}, actual {total}"
            )
        if self.used > self.capacity:
            raise AssertionError(
                f"over capacity: used {self.used} > capacity {self.capacity}"
            )

    # -- policy hooks ----------------------------------------------------

    def _drop(self, key: int) -> None:
        entry = self._entries.pop(key)
        self.used -= entry.size
        self._on_remove(key)

    @abstractmethod
    def _touch(self, key: int) -> None:
        """Update metadata after an access to a resident *key*."""

    @abstractmethod
    def _on_insert(self, key: int) -> None:
        """Register a newly inserted *key*."""

    @abstractmethod
    def _on_remove(self, key: int) -> None:
        """Forget a removed *key*."""

    @abstractmethod
    def _pick_victim(self, exclude: int | None = None) -> int | None:
        """Choose the next eviction victim (never *exclude* unless it is
        the only entry, in which case return ``None``)."""

    def _on_clear(self) -> None:
        """Reset policy metadata; default assumes none beyond dicts."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(capacity={self.capacity}, used={self.used}, "
            f"entries={len(self._entries)})"
        )
