"""First-In-First-Out cache (ablation baseline)."""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import Cache

__all__ = ["FIFOCache"]


class FIFOCache(Cache):
    """Evict in insertion order; accesses do not refresh position."""

    policy = "fifo"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._order: OrderedDict[int, None] = OrderedDict()

    def _touch(self, key: int) -> None:
        # FIFO ignores accesses by design.
        pass

    def _on_insert(self, key: int) -> None:
        self._order[key] = None

    def _on_remove(self, key: int) -> None:
        del self._order[key]

    def _pick_victim(self, exclude: int | None = None) -> int | None:
        for key in self._order:
            if key != exclude:
                return key
        return None

    def _on_clear(self) -> None:
        self._order.clear()
