"""Least-Recently-Used cache — the paper's replacement policy.

LRU backs every browser cache and the proxy cache in the default
configuration, so its ``get``/``put`` sit directly on the replay hot
path.  Instead of the base class's entry table plus a parallel recency
``OrderedDict`` (two dict updates per access), the entry table *is* an
``OrderedDict``: insertion appends at the MRU end, a touch is one
``move_to_end``, and the LRU victim is the first key.  ``get`` and
``put`` are additionally overridden with inlined fast paths that skip
the policy-hook dispatch.  Behaviour — eviction order included — is
bit-identical to the layered implementation; the frozen copy of the old
code in :mod:`repro.core.reference` pins that under the differential
test suite.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import Cache, CacheEntry

__all__ = ["LRUCache"]


class LRUCache(Cache):
    """Classic LRU: evict the entry untouched for the longest time."""

    policy = "lru"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        # Replace the base entry table: ordered from LRU to MRU.
        self._entries: OrderedDict[int, CacheEntry] = OrderedDict()

    # -- inlined hot path ------------------------------------------------

    def get(self, key: int) -> CacheEntry | None:
        entries = self._entries
        entry = entries.get(key)
        if entry is not None:
            entries.move_to_end(key)
        return entry

    def put(self, key: int, size: int, version: int = 0) -> list[int]:
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        entries = self._entries
        used = self.used
        old = entries.get(key)
        if old is not None:
            # Refresh in place: account the size delta, keep identity.
            used += size - old.size
            old.size = size
            old.version = version
            entries.move_to_end(key)
        elif size > self.capacity:
            return []
        else:
            entries[key] = CacheEntry(key, size, version)
            used += size
        capacity = self.capacity
        if used <= capacity:
            self.used = used
            return []
        evicted: list[int] = []
        while used > capacity:
            victim = None
            for k in entries:
                if k != key:
                    victim = k
                    break
            if victim is None:
                # Only the just-refreshed oversized entry remains.
                used -= entries.pop(key).size
                evicted.append(key)
                break
            used -= entries.pop(victim).size
            evicted.append(victim)
        self.used = used
        if self.on_evict is not None:
            for k in evicted:
                self.on_evict(k)
        return evicted

    # -- policy hooks (for the base-class paths: invalidate, clear) ------

    def _touch(self, key: int) -> None:
        self._entries.move_to_end(key)

    def _on_insert(self, key: int) -> None:
        pass  # dict insertion already appended at the MRU end

    def _on_remove(self, key: int) -> None:
        pass  # popping the entry removed it from the order too

    def _pick_victim(self, exclude: int | None = None) -> int | None:
        for key in self._entries:
            if key != exclude:
                return key
        return None

    def keys_by_recency(self) -> list[int]:
        """Keys from least- to most-recently used (for inspection/tests)."""
        return list(self._entries)
