"""Least-Recently-Used cache — the paper's replacement policy."""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import Cache

__all__ = ["LRUCache"]


class LRUCache(Cache):
    """Classic LRU: evict the entry untouched for the longest time."""

    policy = "lru"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._order: OrderedDict[int, None] = OrderedDict()

    def _touch(self, key: int) -> None:
        self._order.move_to_end(key)

    def _on_insert(self, key: int) -> None:
        self._order[key] = None

    def _on_remove(self, key: int) -> None:
        del self._order[key]

    def _pick_victim(self, exclude: int | None = None) -> int | None:
        for key in self._order:
            if key != exclude:
                return key
        return None

    def _on_clear(self) -> None:
        self._order.clear()

    def keys_by_recency(self) -> list[int]:
        """Keys from least- to most-recently used (for inspection/tests)."""
        return list(self._order)
