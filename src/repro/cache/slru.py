"""Segmented LRU (ablation baseline).

SLRU divides the cache into a *probationary* and a *protected* segment
(Karedla et al.).  New objects enter probation; a hit promotes an
object to the protected segment, whose overflow demotes back to the
MRU end of probation.  Eviction always takes the probationary LRU
first, so one-touch objects (the long tail of web traffic) cannot flush
out proven-popular ones — the scan-resistance classic LRU lacks.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import Cache

__all__ = ["SLRUCache"]


class SLRUCache(Cache):
    """Two-segment LRU; the protected segment holds at most
    ``protected_fraction`` of the capacity."""

    policy = "slru"

    def __init__(self, capacity: int, protected_fraction: float = 0.8) -> None:
        super().__init__(capacity)
        if not (0.0 <= protected_fraction <= 1.0):
            raise ValueError(
                f"protected_fraction must be in [0, 1], got {protected_fraction}"
            )
        self.protected_capacity = int(capacity * protected_fraction)
        # both ordered least- to most-recently used; values are the
        # byte size accounted to the protected segment.
        self._probation: OrderedDict[int, None] = OrderedDict()
        self._protected: OrderedDict[int, int] = OrderedDict()
        self._protected_used = 0

    # -- policy hooks ---------------------------------------------------

    def _touch(self, key: int) -> None:
        size = self._entries[key].size
        if key in self._protected:
            self._protected_used += size - self._protected[key]
            self._protected[key] = size
            self._protected.move_to_end(key)
        else:
            del self._probation[key]
            self._protected[key] = size
            self._protected_used += size
        self._shrink_protected(keep=key)

    def _shrink_protected(self, keep: int) -> None:
        while self._protected_used > self.protected_capacity and len(self._protected) > 1:
            victim, size = next(iter(self._protected.items()))
            if victim == keep:
                # rotate the kept key to MRU and try the next
                self._protected.move_to_end(victim)
                victim, size = next(iter(self._protected.items()))
                if victim == keep:
                    break
            del self._protected[victim]
            self._protected_used -= size
            self._probation[victim] = None  # demoted to probation MRU

    def _on_insert(self, key: int) -> None:
        self._probation[key] = None

    def _on_remove(self, key: int) -> None:
        if key in self._probation:
            del self._probation[key]
        else:
            self._protected_used -= self._protected.pop(key)

    def _pick_victim(self, exclude: int | None = None) -> int | None:
        for key in self._probation:
            if key != exclude:
                return key
        for key in self._protected:
            if key != exclude:
                return key
        return None

    def _on_clear(self) -> None:
        self._probation.clear()
        self._protected.clear()
        self._protected_used = 0

    # -- introspection ------------------------------------------------------

    def segment_of(self, key: int) -> str | None:
        """``"probation"``, ``"protected"``, or ``None``."""
        if key in self._probation:
            return "probation"
        if key in self._protected:
            return "protected"
        return None
