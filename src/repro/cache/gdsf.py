"""GreedyDual-Size-Frequency cache (ablation baseline).

Cherkasova's GDSF assigns each object the priority

    H = clock + frequency * cost / size

and evicts the lowest-priority object; the *clock* is set to the
victim's priority on each eviction, which ages resident objects.  With
``cost = 1`` GDSF optimises request hit ratio while staying size-aware.
"""

from __future__ import annotations

import heapq
import itertools

from repro.cache.base import Cache

__all__ = ["GDSFCache"]


class GDSFCache(Cache):
    """GreedyDual-Size-Frequency with unit cost."""

    policy = "gdsf"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._clock = 0.0
        self._freq: dict[int, int] = {}
        self._priority: dict[int, float] = {}
        self._heap: list[tuple[float, int, int]] = []
        self._seq = itertools.count()

    def _compute_priority(self, key: int) -> float:
        entry = self._entries[key]
        size = max(entry.size, 1)
        return self._clock + self._freq[key] / size

    def _push(self, key: int) -> None:
        self._priority[key] = self._compute_priority(key)
        heapq.heappush(self._heap, (self._priority[key], next(self._seq), key))

    def _touch(self, key: int) -> None:
        self._freq[key] += 1
        self._push(key)

    def _on_insert(self, key: int) -> None:
        self._freq[key] = 1
        self._push(key)

    def _on_remove(self, key: int) -> None:
        del self._freq[key]
        del self._priority[key]

    def _pick_victim(self, exclude: int | None = None) -> int | None:
        skipped: list[tuple[float, int, int]] = []
        victim: int | None = None
        while self._heap:
            prio, seq, key = heapq.heappop(self._heap)
            if self._priority.get(key) != prio:
                continue  # stale record
            if key == exclude:
                skipped.append((prio, seq, key))
                continue
            victim = key
            self._clock = prio  # age the cache
            break
        for item in skipped:
            heapq.heappush(self._heap, item)
        return victim

    def _on_clear(self) -> None:
        self._clock = 0.0
        self._freq.clear()
        self._priority.clear()
        self._heap.clear()
