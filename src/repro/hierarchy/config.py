"""Configuration for the cooperative proxy hierarchy."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hierarchy.icp import ICPModel
from repro.network.ethernet import EthernetModel
from repro.network.latency import MemoryDiskModel
from repro.network.topology import WANModel
from repro.util.validation import check_non_negative, check_positive

__all__ = ["HierarchyConfig", "assign_proxy"]


def assign_proxy(
    client: int, n_proxies: int, n_clients: int, partition: str = "interleave"
) -> int:
    """Which of ``n_proxies`` groups serves *client*.

    The single client-partitioning rule shared by the hierarchy's leaf
    assignment and the federation's proxy sharding:
    ``"interleave"`` spreads clients round-robin (``client % n``),
    ``"blocks"`` carves contiguous id ranges.
    """
    if partition == "interleave":
        return client % n_proxies
    if partition != "blocks":
        raise ValueError(
            f"partition must be 'interleave' or 'blocks', got {partition!r}"
        )
    block = max(1, -(-n_clients // n_proxies))  # ceil division
    return min(client // block, n_proxies - 1)


@dataclass(frozen=True)
class HierarchyConfig:
    """A cluster of cooperating proxies.

    Clients are partitioned over ``n_leaves`` leaf proxies
    (``client % n_leaves`` by default, i.e. interleaved — a contiguous
    split is available via ``partition="blocks"``).  On a leaf miss the
    request escalates: siblings (if ``siblings=True``), then the parent
    proxy (if ``parent_capacity > 0``), then the origin.
    """

    n_leaves: int
    leaf_capacity: int
    parent_capacity: int = 0
    siblings: bool = False
    #: optional per-client browser caches in front of the leaves.
    browser_capacity: int = 0
    policy: str = "lru"
    partition: str = "interleave"
    #: does a sibling hit populate the requesting leaf's cache?
    cache_sibling_fetches: bool = True
    icp: ICPModel = field(default_factory=ICPModel)
    lan: EthernetModel = field(default_factory=EthernetModel)
    wan: WANModel = field(default_factory=WANModel)
    storage: MemoryDiskModel = field(default_factory=MemoryDiskModel)

    def __post_init__(self) -> None:
        check_positive("n_leaves", self.n_leaves)
        check_non_negative("leaf_capacity", self.leaf_capacity)
        check_non_negative("parent_capacity", self.parent_capacity)
        check_non_negative("browser_capacity", self.browser_capacity)
        if self.partition not in ("interleave", "blocks"):
            raise ValueError(
                f"partition must be 'interleave' or 'blocks', got {self.partition!r}"
            )
        if self.n_leaves == 1 and self.siblings:
            raise ValueError("sibling cooperation needs at least two leaves")

    @property
    def total_proxy_capacity(self) -> int:
        return self.n_leaves * self.leaf_capacity + self.parent_capacity

    def leaf_of(self, client: int, n_clients: int) -> int:
        """Which leaf proxy serves *client*."""
        return assign_proxy(client, self.n_leaves, n_clients, self.partition)
