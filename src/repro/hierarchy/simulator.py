"""Trace-driven simulation of cooperative proxy hierarchies.

The request path for client *c* assigned to leaf proxy *L*:

1. *c*'s browser cache (if configured),
2. leaf proxy *L*,
3. ICP query to sibling leaves (if configured) — a sibling hit fetches
   the document from that sibling (optionally caching it at *L*),
4. the parent proxy (if configured) — a parent hit populates *L*,
5. the origin server — the response populates the parent (if any),
   *L*, and the browser.

Results reuse :class:`~repro.core.metrics.SimulationResult` with the
``SIBLING_PROXY`` / ``PARENT_PROXY`` hit locations, so hierarchies and
BAPS runs are directly comparable.
"""

from __future__ import annotations

from repro.cache import make_cache
from repro.core.events import HitLocation
from repro.core.metrics import SimulationResult
from repro.hierarchy.config import HierarchyConfig
from repro.hierarchy.icp import ICPStats
from repro.traces.record import Trace

__all__ = ["HierarchySimulator", "simulate_hierarchy"]


class HierarchySimulator:
    """One hierarchy configuration, one trace replay."""

    def __init__(self, trace: Trace, config: HierarchyConfig) -> None:
        self.trace = trace
        self.config = config
        n_clients = int(trace.clients.max()) + 1 if len(trace) else 1
        self.n_clients = n_clients
        self.leaves = [
            make_cache(config.policy, config.leaf_capacity)
            for _ in range(config.n_leaves)
        ]
        self.parent = (
            make_cache(config.policy, config.parent_capacity)
            if config.parent_capacity > 0
            else None
        )
        self.browsers = (
            [make_cache(config.policy, config.browser_capacity) for _ in range(n_clients)]
            if config.browser_capacity > 0
            else []
        )
        self.leaf_of_client = [
            config.leaf_of(c, n_clients) for c in range(n_clients)
        ]
        self.icp_stats = ICPStats()
        self.result = SimulationResult(
            trace_name=trace.name,
            organization=self._label(),
        )

    def _label(self) -> str:
        parts = [f"{self.config.n_leaves}-leaf"]
        if self.config.siblings:
            parts.append("siblings")
        if self.parent is not None:
            parts.append("parent")
        if self.browsers:
            parts.append("browsers")
        return "hierarchy:" + "+".join(parts)

    # -- replay -----------------------------------------------------------

    def run(self) -> SimulationResult:
        config = self.config
        result = self.result
        overhead = result.overhead
        leaves = self.leaves
        parent = self.parent
        browsers = self.browsers
        leaf_of = self.leaf_of_client
        icp = config.icp
        lan = config.lan
        wan = config.wan
        storage = config.storage
        use_siblings = config.siblings

        for t, c, d, s, v in self.trace.iter_rows():
            # 1. browser cache
            if browsers:
                entry = browsers[c].get(d)
                if entry is not None and entry.version == v:
                    result.record(HitLocation.LOCAL_BROWSER, s)
                    overhead.local_hit_time += storage.disk_time(s)
                    continue

            leaf_id = leaf_of[c]
            leaf = leaves[leaf_id]

            # 2. own leaf proxy
            entry = leaf.get(d)
            if entry is not None and entry.version == v:
                result.record(HitLocation.PROXY, s)
                overhead.proxy_hit_time += storage.disk_time(s) + lan.transfer_time(s)
                if browsers:
                    browsers[c].put(d, s, v)
                continue

            # 3. sibling query round
            if use_siblings:
                holder = None
                for offset in range(1, len(leaves)):
                    sid = (leaf_id + offset) % len(leaves)
                    held = leaves[sid].peek(d)
                    if held is not None and held.version == v:
                        holder = sid
                        break
                cost = icp.account(
                    self.icp_stats, len(leaves) - 1, any_hit=holder is not None
                )
                overhead.proxy_hit_time += cost
                if holder is not None:
                    leaves[holder].get(d)  # serving refreshes the sibling's LRU
                    result.record(HitLocation.SIBLING_PROXY, s)
                    overhead.remote_storage_time += storage.disk_time(s)
                    overhead.remote_transfer_time += lan.transfer_time(s)
                    if config.cache_sibling_fetches:
                        leaf.put(d, s, v)
                    if browsers:
                        browsers[c].put(d, s, v)
                    continue

            # 4. parent proxy
            if parent is not None:
                entry = parent.get(d)
                if entry is not None and entry.version == v:
                    result.record(HitLocation.PARENT_PROXY, s)
                    overhead.remote_storage_time += storage.disk_time(s)
                    overhead.remote_transfer_time += lan.transfer_time(s)
                    leaf.put(d, s, v)
                    if browsers:
                        browsers[c].put(d, s, v)
                    continue

            # 5. origin
            result.record(HitLocation.ORIGIN, s)
            overhead.origin_miss_time += wan.fetch_time(s) + lan.transfer_time(s)
            if parent is not None:
                parent.put(d, s, v)
            leaf.put(d, s, v)
            if browsers:
                browsers[c].put(d, s, v)

        return result


def simulate_hierarchy(trace: Trace, config: HierarchyConfig) -> SimulationResult:
    """Convenience one-shot hierarchy simulation."""
    return HierarchySimulator(trace, config).run()
