"""ICP-style sibling query protocol model.

When a leaf proxy misses, it multicasts a query to its sibling proxies
and waits up to a timeout for hits (Internet Cache Protocol, RFC 2186,
as deployed by Squid and studied by Fan et al. as the baseline that
Summary Cache improves on).  We model the message costs and the added
latency, not the wire format:

* every miss that triggers cooperation costs one query message per
  sibling,
* if at least one sibling holds the object, the leaf fetches it from
  the first (round-robin) holder after one query round trip,
* if none do, the leaf has wasted a full timeout before escalating.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_non_negative, check_positive

__all__ = ["ICPModel", "ICPStats"]


@dataclass
class ICPStats:
    """Query traffic and time accounting."""

    queries_sent: int = 0
    query_rounds: int = 0
    hits: int = 0
    misses: int = 0
    query_time: float = 0.0
    timeout_time: float = 0.0

    @property
    def total_overhead_time(self) -> float:
        return self.query_time + self.timeout_time


@dataclass(frozen=True)
class ICPModel:
    """Timing/cost constants for one sibling group."""

    #: one-way LAN latency for a query or its reply.
    query_latency: float = 0.002
    #: how long a proxy waits for sibling replies before giving up.
    timeout: float = 0.05

    def __post_init__(self) -> None:
        check_non_negative("query_latency", self.query_latency)
        check_positive("timeout", self.timeout)

    def round_cost(self, n_siblings: int, any_hit: bool) -> float:
        """Latency added by one query round."""
        check_non_negative("n_siblings", n_siblings)
        if n_siblings == 0:
            return 0.0
        if any_hit:
            return 2 * self.query_latency  # query out, first hit back
        return self.timeout

    def account(self, stats: ICPStats, n_siblings: int, any_hit: bool) -> float:
        """Record one query round in *stats*; returns the added latency."""
        if n_siblings == 0:
            return 0.0
        stats.query_rounds += 1
        stats.queries_sent += n_siblings
        cost = self.round_cost(n_siblings, any_hit)
        if any_hit:
            stats.hits += 1
            stats.query_time += cost
        else:
            stats.misses += 1
            stats.timeout_time += cost
        return cost
