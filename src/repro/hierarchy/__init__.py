"""Cooperative proxy caching substrate.

The paper's introduction describes the conventional escalation path a
proxy uses on a miss: "the proxy server will immediately send the
request to its cooperative caches, if any, or to an upper level proxy
cache, or to the web server" — and its related work (Gadde et al.,
Fan et al.) studies exactly these proxy-level cooperation schemes.
This package implements them so BAPS can be compared against the
alternatives it competes with:

* :class:`~repro.hierarchy.icp.ICPModel` — an ICP-style sibling query
  protocol with per-query cost accounting,
* :class:`~repro.hierarchy.simulator.HierarchySimulator` — a cluster of
  leaf proxies (each serving a client partition, optionally with
  browser caches) cooperating as siblings and/or through a shared
  parent proxy.
"""

from repro.hierarchy.icp import ICPModel, ICPStats
from repro.hierarchy.config import HierarchyConfig
from repro.hierarchy.simulator import HierarchySimulator, simulate_hierarchy

__all__ = [
    "ICPModel",
    "ICPStats",
    "HierarchyConfig",
    "HierarchySimulator",
    "simulate_hierarchy",
]
