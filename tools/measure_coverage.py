"""Measure line coverage of ``src/repro`` over the test suite, stdlib-only.

CI enforces coverage with pytest-cov (see ``--cov-fail-under`` in
.github/workflows/ci.yml), but the development container does not ship
coverage.py.  This tool produces a comparable line-coverage percentage
using ``sys.settrace`` with per-file filtering (only ``src/repro``
frames get a local trace function, so numpy/pytest internals run at
full speed) and ``co_lines()`` to enumerate executable lines.

Usage::

    PYTHONPATH=src python tools/measure_coverage.py [pytest args...]

Prints per-file and total percentages.  The number tracks pytest-cov's
line coverage closely (same executable-line source: code objects), but
is not guaranteed to match to the decimal — use it to *choose* the CI
pin, leaving a small safety margin.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def executable_lines(path: Path) -> set[int]:
    """All line numbers that carry executable code, per the compiler."""
    lines: set[int] = set()
    code = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    stack = [code]
    while stack:
        co = stack.pop()
        for _, _, lineno in co.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in co.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def main() -> int:
    prefix = str(SRC) + os.sep
    executed: dict[str, set[int]] = {}

    def local_trace(frame, event, arg):
        if event == "line":
            executed[frame.f_code.co_filename].add(frame.f_lineno)
        return local_trace

    def global_trace(frame, event, arg):
        filename = frame.f_code.co_filename
        if filename.startswith(prefix):
            executed.setdefault(filename, set())
            return local_trace
        return None

    import pytest

    args = sys.argv[1:] or ["-x", "-q", "tests"]
    sys.settrace(global_trace)
    try:
        exit_code = pytest.main(args)
    finally:
        sys.settrace(None)
    if exit_code != 0:
        print(f"pytest exited {exit_code}; coverage numbers unreliable", file=sys.stderr)

    total_exec = 0
    total_hit = 0
    rows = []
    for path in sorted(SRC.rglob("*.py")):
        lines = executable_lines(path)
        hit = executed.get(str(path), set()) & lines
        total_exec += len(lines)
        total_hit += len(hit)
        pct = 100.0 * len(hit) / len(lines) if lines else 100.0
        rows.append((path.relative_to(SRC.parent), len(lines), len(hit), pct))
    for rel, n_exec, n_hit, pct in rows:
        print(f"{str(rel):60s} {n_hit:5d}/{n_exec:5d} {pct:6.1f}%")
    pct = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"{'TOTAL':60s} {total_hit:5d}/{total_exec:5d} {pct:6.1f}%")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
