"""Re-calibrate synthetic profile parameters to the Table 1 targets.

For each paper trace profile, iteratively adjusts ``p_new`` (to match
the target max hit ratio) and ``size_popularity_beta`` (to match the
target max byte-hit ratio), then prints the tuned parameters to freeze
into ``repro/traces/profiles.py``.  Run after changing any generator
knob that affects the reference stream.

Usage:  python tools/calibrate.py
"""

from dataclasses import replace

from repro.traces.profiles import PAPER_TRACES
from repro.traces.stats import compute_stats
from repro.traces.synthetic import generate_trace


def calibrate(profile, tolerance=0.006, max_iters=8):
    cfg = profile.config
    beta_lo, beta_hi = 0.0, 1.8
    st = None
    iteration = 0
    for iteration in range(max_iters):
        trace = generate_trace(cfg, seed=profile.seed)
        st = compute_stats(trace)
        err_hr = st.max_hit_ratio - profile.target_max_hit_ratio
        err_bhr = st.max_byte_hit_ratio - profile.target_max_byte_hit_ratio
        if abs(err_hr) < tolerance and abs(err_bhr) < tolerance:
            break
        new_p_new = min(0.95, max(0.02, cfg.p_new + err_hr))
        if err_bhr > tolerance:
            beta_lo = cfg.size_popularity_beta
            new_beta = (cfg.size_popularity_beta + beta_hi) / 2
        elif err_bhr < -tolerance:
            beta_hi = cfg.size_popularity_beta
            new_beta = (cfg.size_popularity_beta + beta_lo) / 2
        else:
            new_beta = cfg.size_popularity_beta
        cfg = replace(cfg, p_new=new_p_new, size_popularity_beta=new_beta)
    return cfg, st, iteration + 1


def main() -> None:
    for name, profile in PAPER_TRACES.items():
        cfg, st, iters = calibrate(profile)
        print(
            f"{name}: p_new={cfg.p_new:.4f} beta={cfg.size_popularity_beta:.4f} "
            f"-> maxHR={st.max_hit_ratio:.4f} (target {profile.target_max_hit_ratio}) "
            f"maxBHR={st.max_byte_hit_ratio:.4f} "
            f"(target {profile.target_max_byte_hit_ratio}) iters={iters}"
        )


if __name__ == "__main__":
    main()
