"""Regenerate the golden-result JSON for tests/test_golden_figures.py.

Runs small-profile versions of fig2, fig3, and table1 through the
**serial** engine (``workers=0``) and writes the resulting hit/byte-hit
ratios to ``tests/golden/golden_small.json``.  The golden tests then
re-run the same cells — serially and through the process pool — and
assert the numbers match to 1e-9, so neither the engine nor the trace
generator can silently drift.

Only regenerate when a change *intentionally* alters simulation
results (e.g. a calibration fix), and say so in the commit:

    PYTHONPATH=src python tools/make_goldens.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.mrc import (  # noqa: E402
    MRC_EXACT_ORGANIZATIONS,
    capacity_grid,
    compute_mrc,
)
from repro.core import Organization, run_policy_sweep, run_size_sweep  # noqa: E402
from repro.core.sweep import PAPER_SIZE_FRACTIONS  # noqa: E402
from repro.traces.profiles import (  # noqa: E402
    PAPER_TRACES,
    SMALL_PROFILE_REQUESTS,
    small_paper_trace,
)
from repro.traces.stats import compute_stats  # noqa: E402

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "tests" / "golden" / "golden_small.json"

#: the trace the small-profile fig2/fig3 goldens replay (the paper's
#: Figure 2/3 trace).
FIG_TRACE = "NLANR-uc"

#: MRC-vs-replay cross-validation tolerances (documented bounds, also
#: asserted by tests/test_golden_figures.py).  The one-pass analysis is
#: bit-exact for the pure-LRU organizations; the multi-level
#: organizations carry the eviction-order approximations documented in
#: ``repro.analysis.mrc`` (measured worst case on this profile: 0.005
#: on hit/byte-hit ratios, 0.0094 on BAPS breakdown shares).
MRC_EXACT_TOLERANCE = 1e-9
MRC_APPROX_TOLERANCE = 0.015
MRC_BREAKDOWN_TOLERANCE = 0.02


def build_goldens() -> dict:
    trace = small_paper_trace(FIG_TRACE)

    fig2_sweep = run_policy_sweep(
        trace,
        organizations=tuple(Organization),
        fractions=PAPER_SIZE_FRACTIONS,
        browser_sizing="minimum",
        workers=0,
    )
    assert not fig2_sweep.failures, fig2_sweep.failures
    fig2 = {
        f"{org.value}@{frac:g}": {
            "hit_ratio": result.hit_ratio,
            "byte_hit_ratio": result.byte_hit_ratio,
        }
        for (org, frac), result in sorted(
            fig2_sweep.results.items(), key=lambda kv: (kv[0][1], kv[0][0].value)
        )
    }

    fig3_sweep = run_size_sweep(
        trace,
        Organization.BROWSERS_AWARE_PROXY,
        fractions=PAPER_SIZE_FRACTIONS,
        browser_sizing="minimum",
        workers=0,
    )
    assert not fig3_sweep.failures, fig3_sweep.failures
    fig3 = {}
    for frac in PAPER_SIZE_FRACTIONS:
        result = fig3_sweep.get(Organization.BROWSERS_AWARE_PROXY, frac)
        hit, byte = result.breakdown(), result.byte_breakdown()
        fig3[f"{frac:g}"] = {
            "hit": {
                "local_browser": hit.local_browser,
                "proxy": hit.proxy,
                "remote_browser": hit.remote_browser,
            },
            "byte": {
                "local_browser": byte.local_browser,
                "proxy": byte.proxy,
                "remote_browser": byte.remote_browser,
            },
        }

    # One-pass MRC predictions at the same cells, cross-validated
    # against the replay numbers above at generation time so a bad
    # golden can never be written.
    analysis = compute_mrc(trace, capacity_grid(trace, PAPER_SIZE_FRACTIONS))
    mrc = {}
    for org in Organization:
        for frac in PAPER_SIZE_FRACTIONS:
            point = analysis.predict(org, frac)
            replay = fig2_sweep.get(org, frac)
            tol = (
                MRC_EXACT_TOLERANCE
                if org in MRC_EXACT_ORGANIZATIONS
                else MRC_APPROX_TOLERANCE
            )
            for got, want, what in (
                (point.hit_ratio, replay.hit_ratio, "hit_ratio"),
                (point.byte_hit_ratio, replay.byte_hit_ratio, "byte_hit_ratio"),
            ):
                assert abs(got - want) <= tol, (
                    f"mrc {org.value}@{frac:g} {what}: {got!r} vs replay "
                    f"{want!r} exceeds tolerance {tol:g}"
                )
            mrc[f"{org.value}@{frac:g}"] = {
                "hit_ratio": point.hit_ratio,
                "byte_hit_ratio": point.byte_hit_ratio,
                "exact": point.exact,
            }

    table1 = {}
    for name in PAPER_TRACES:
        stats = compute_stats(small_paper_trace(name))
        table1[name] = {
            "n_requests": stats.n_requests,
            "n_clients": stats.n_clients,
            "n_docs": stats.n_docs,
            "max_hit_ratio": stats.max_hit_ratio,
            "max_byte_hit_ratio": stats.max_byte_hit_ratio,
        }

    return {
        "_meta": {
            "generator": "tools/make_goldens.py (workers=0 serial engine)",
            "n_requests": SMALL_PROFILE_REQUESTS,
            "fig_trace": FIG_TRACE,
            "tolerance": 1e-9,
            "mrc_exact_tolerance": MRC_EXACT_TOLERANCE,
            "mrc_approx_tolerance": MRC_APPROX_TOLERANCE,
            "mrc_breakdown_tolerance": MRC_BREAKDOWN_TOLERANCE,
        },
        "fig2": {FIG_TRACE: fig2},
        "fig3": {FIG_TRACE: fig3},
        "mrc": {FIG_TRACE: mrc},
        "table1": table1,
    }


def main() -> int:
    goldens = build_goldens()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(goldens, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
