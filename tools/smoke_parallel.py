"""Serial-vs-parallel smoke sweep — run by CI.

Replays a fig2-scale grid (all five organizations x the paper's four
relative cache sizes) twice: once in-process (``workers=0``) and once
over a process pool sized to the machine.  Exits non-zero unless the
two runs are bit-identical; prints both timing reports and the
measured speedup.

With ``--inject-fault`` the parallel run additionally suffers an
injected worker kill and a transient cell failure (with retries
enabled), exercising the engine's pool-crash recovery and retry paths
end to end — the recovered results must still be bit-identical to the
clean serial run.

With ``--churn`` every cell runs under session-based client churn, and
``--max-holder-retries N`` arms the engine's holder failover.  The
smoke then additionally asserts that failover actually rescued remote
hits (some backup holder served a request whose primary was offline) —
the resilience path must be exercised, not just survived.

With ``--proxy-crash`` every cell additionally suffers two proxy cold
restarts (explicit crash times at 35% and 70% of the trace) with index
checkpointing and post-crash client re-announcements armed.  The smoke
asserts the recovery model actually fired — crashes registered, hits
were lost to degraded windows — and, when a journal was written,
re-runs the sweep with ``--resume`` and asserts every cell is restored
from the journal bit-identically (the new recovery counters must
round-trip).

With ``--federation`` every cell runs the cooperative two-proxy
federation with a digest exchange every 1/12th of the trace.  The
smoke asserts cooperation actually fired — cross-proxy hits were
served and digest staleness produced accountable false hits — and the
generic journal/resume block covers the new counters' round-trip.

With ``--adversarial`` every cell runs against a hostile peer
population — 20% persistent polluters (every transfer they serve fails
the integrity check) and 20% flappers churning offline over the middle
40% of the trace — with the quarantine defense armed at two strikes.
The smoke asserts the attack and the defense both fired (corrupt
deliveries attributed, peers quarantined) and re-runs the same grid
with the defense disarmed: quarantine must strictly reduce the summed
``wasted_round_trip_time`` versus the no-defense run.

With ``--chaos`` every cell runs a composed outage through one seeded
:class:`~repro.core.ChaosPlan`: a proxy cold restart *inside* an
inter-proxy partition window while clients churn, on a two-proxy
federation, with the runtime invariant monitor armed at a 5000-request
cadence.  The smoke asserts the partition actually fired (windows
entered, digest exchanges lost, crashes composed in), re-runs the grid
at ``workers=1`` (so serial, one worker, and the pool are all
bit-identical), and corrupts a copied result to prove the monitor
catches it.

With ``--stream`` every base-grid cell is additionally replayed
through the flat-state streaming engine
(:func:`repro.core.simulate_stream`) and must be bit-identical to the
serial run; the process's peak RSS must also stay under
``--stream-rss-ceiling-mb``.  Incompatible with the churn / crash /
federation grids (outside the streaming subset).

With ``--mrc`` the base grid is additionally derived from one
stack-distance pass (``run_policy_sweep(..., mrc=True)``) and checked
against the serial replay — bit-exact for the pure-LRU organizations,
within the documented approximation bound for the rest — and a
sampled pass at ``--sample-rate`` must stay within the documented
per-rate error bound (``repro.traces.sampling.SAMPLE_ERROR_BOUNDS``)
of the full pass.  Incompatible with the fault grids (the one-pass
analysis models the fault-free hierarchy).

    PYTHONPATH=src python tools/smoke_parallel.py [--workers N] [--requests M]
        [--journal PATH] [--inject-fault] [--churn] [--max-holder-retries N]
        [--proxy-crash] [--federation] [--adversarial] [--chaos] [--stream]
        [--mrc] [--sample-rate R]
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core import (  # noqa: E402
    AdversarialConfig,
    ChaosPlan,
    CheckpointPolicy,
    ChurnModel,
    EngineOptions,
    FaultPlan,
    FederationConfig,
    InvariantMonitor,
    InvariantViolation,
    MassChurnSchedule,
    Organization,
    ProxyFaultModel,
    SimulationConfig,
    resolve_workers,
    run_policy_sweep,
)
from repro.federation import LinkFaultModel  # noqa: E402
from repro.core.sweep import PAPER_SIZE_FRACTIONS  # noqa: E402
from repro.traces.profiles import get_profile  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None,
                        help="pool width for the parallel run (default: all CPUs)")
    parser.add_argument("--requests", type=int, default=30_000,
                        help="trace length (default 30k: fig2 scale, CI-friendly)")
    parser.add_argument("--trace", default="NLANR-uc")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="write the parallel run's JSONL attempt journal here")
    parser.add_argument("--inject-fault", action="store_true",
                        help="kill one worker and fail one cell transiently "
                             "during the parallel run (recovery must still "
                             "yield bit-identical results)")
    parser.add_argument("--churn", action="store_true",
                        help="run every cell under session-based client churn "
                             "(default 1800s on / 600s off sessions)")
    parser.add_argument("--max-holder-retries", type=int, default=0, metavar="N",
                        help="holder failover budget; with --churn the smoke "
                             "asserts failover rescued at least one remote hit")
    parser.add_argument("--proxy-crash", action="store_true",
                        help="inject two proxy cold restarts per cell with "
                             "checkpointing and re-announcement armed; the "
                             "smoke asserts the recovery model fired")
    parser.add_argument("--federation", action="store_true",
                        help="run every cell as a cooperative two-proxy "
                             "federation with periodic digest exchange; the "
                             "smoke asserts cross-proxy hits and digest "
                             "false hits occurred")
    parser.add_argument("--adversarial", action="store_true",
                        help="run every cell against 20%% polluters + 20%% "
                             "flappers with two-strike quarantine armed; the "
                             "smoke asserts the defense fired and strictly "
                             "reduced wasted round-trip time vs. no defense")
    parser.add_argument("--chaos", action="store_true",
                        help="compose a proxy crash inside an inter-proxy "
                             "partition with client churn through one chaos "
                             "plan (invariant monitor armed); the smoke "
                             "asserts the partition fired and that a "
                             "corrupted result trips the monitor")
    parser.add_argument("--stream", action="store_true",
                        help="also replay every cell through the flat-state "
                             "streaming engine; results must be bit-identical "
                             "and peak RSS must stay under the ceiling")
    parser.add_argument("--stream-rss-ceiling-mb", type=int, default=2048,
                        metavar="MB",
                        help="peak-RSS ceiling for the --stream check "
                             "(default 2048)")
    parser.add_argument("--mrc", action="store_true",
                        help="also derive the base grid from one "
                             "stack-distance pass and from a sampled pass; "
                             "both must stay within the documented bounds "
                             "of the serial replay")
    parser.add_argument("--sample-rate", type=float, default=0.05,
                        metavar="R",
                        help="spatial sample rate for the --mrc sampled "
                             "check (default 0.05; must have a documented "
                             "bound in SAMPLE_ERROR_BOUNDS)")
    args = parser.parse_args(argv)

    if args.stream and (args.churn or args.proxy_crash or args.federation
                        or args.adversarial or args.chaos):
        parser.error("--stream covers only the base grid; drop --churn/"
                     "--proxy-crash/--federation/--adversarial/--chaos")
    if args.mrc and (args.churn or args.proxy_crash or args.federation
                     or args.adversarial or args.chaos):
        parser.error("--mrc covers only the base grid; drop --churn/"
                     "--proxy-crash/--federation/--adversarial/--chaos")
    if args.chaos and (args.churn or args.proxy_crash or args.federation
                       or args.adversarial):
        parser.error("--chaos composes its own fault models; drop --churn/"
                     "--proxy-crash/--federation/--adversarial")

    workers = resolve_workers(args.workers)
    trace = get_profile(args.trace).scaled(args.requests).generate()
    grid = dict(
        organizations=tuple(Organization),
        fractions=PAPER_SIZE_FRACTIONS,
        browser_sizing="minimum",
    )
    if args.churn:
        grid["churn"] = ChurnModel()
        grid["max_holder_retries"] = args.max_holder_retries
        print(f"churn: 1800s on / 600s off sessions, "
              f"max_holder_retries={args.max_holder_retries}")
    if args.proxy_crash:
        duration = float(trace.timestamps.max())
        grid["proxy_faults"] = ProxyFaultModel(
            crash_times=(0.35 * duration, 0.70 * duration)
        )
        grid["checkpoint"] = CheckpointPolicy(interval=duration / 24)
        grid["reannounce_rate"] = 0.02
        print(f"proxy crashes at t={0.35 * duration:.0f}s and "
              f"t={0.70 * duration:.0f}s, checkpoint every "
              f"{duration / 24:.0f}s, re-announce 0.02 clients/s")
    if args.federation:
        duration = float(trace.timestamps.max())
        grid["federation"] = FederationConfig(
            n_proxies=2, digest_period=duration / 12
        )
        print(f"federation: 2 proxies, digest exchange every "
              f"{duration / 12:.0f}s")
    if args.adversarial:
        duration = float(trace.timestamps.max())
        grid["adversarial"] = AdversarialConfig(
            polluter_fraction=0.2,
            flapper_fraction=0.2,
            flap_schedule=MassChurnSchedule(
                windows=((0.30 * duration, 0.70 * duration),)
            ),
        )
        grid["quarantine_threshold"] = 2
        grid["max_holder_retries"] = max(
            int(grid.get("max_holder_retries", 0)), args.max_holder_retries, 2
        )
        print(f"adversarial: 20% polluters, 20% flappers offline "
              f"t={0.30 * duration:.0f}-{0.70 * duration:.0f}s, "
              f"quarantine after 2 strikes, "
              f"max_holder_retries={grid['max_holder_retries']}")
    if args.chaos:
        duration = float(trace.timestamps.max())
        grid["federation"] = FederationConfig(
            n_proxies=2, digest_period=duration / 12
        )
        grid["chaos"] = ChaosPlan(
            proxy_faults=ProxyFaultModel(crash_times=(0.50 * duration,)),
            churn=ChurnModel(),
            link_faults=LinkFaultModel(
                partition_windows=((0.40 * duration, 0.60 * duration),)
            ),
            check_invariants_every=5_000,
        )
        print(f"chaos: proxy crash at t={0.50 * duration:.0f}s inside a "
              f"partition t={0.40 * duration:.0f}-{0.60 * duration:.0f}s, "
              f"default churn, 2-proxy federation (digest every "
              f"{duration / 12:.0f}s), invariants checked every 5000 requests")
    n_cells = len(grid["organizations"]) * len(grid["fractions"])
    print(f"smoke sweep: {trace.name}, {len(trace):,} requests, {n_cells} cells")

    options = None
    if args.inject_fault or args.journal:
        faults = None
        retries = 0
        if args.inject_fault:
            # one hard worker death and one transient failure, both on
            # the first attempt only — the engine must absorb both.
            faults = FaultPlan.parse(f"kill:0, raise:{n_cells // 2}")
            retries = 2
            print("fault injection: worker kill on cell 0, transient "
                  f"failure on cell {n_cells // 2} (retries={retries})")
        options = EngineOptions(
            retries=retries, journal=args.journal, faults=faults,
            backoff_base=0.1,
        )

    serial = run_policy_sweep(trace, workers=0, **grid)
    parallel = run_policy_sweep(trace, workers=workers, options=options, **grid)

    for sweep, label in ((serial, "serial"), (parallel, f"parallel x{workers}")):
        if sweep.failures:
            print(f"FAIL: {label} run had cell failures:")
            for failure in sweep.failures:
                print(f"  {failure}")
            return 1
        print()
        print(f"-- {label}")
        print(sweep.timing.render())

    if args.inject_fault:
        retried = {k: n for k, n in parallel.attempts.items() if n > 1}
        print()
        print(f"recovered: pool crashes={parallel.pool_crashes}, "
              f"cells retried={len(retried)}")
        if parallel.pool_crashes < 1:
            print("FAIL: injected worker kill did not register a pool crash")
            return 1

    diverged = [
        key
        for key in serial.results
        if dataclasses.asdict(serial.results[key])
        != dataclasses.asdict(parallel.results[key])
    ]
    if diverged:
        print(f"FAIL: {len(diverged)} cells diverged between serial and parallel:")
        for org, frac in diverged:
            print(f"  ({org.value}, {frac:g})")
        return 1

    if args.churn and args.max_holder_retries > 0:
        rescued = sum(
            r.failover_rescued_hits for r in parallel.results.values()
        )
        offline = sum(r.holder_unavailable for r in parallel.results.values())
        print()
        print(f"churn resilience: {offline} offline-holder probes, "
              f"{rescued} remote hits rescued by failover")
        if rescued <= 0:
            print("FAIL: churn + failover produced no rescued remote hits")
            return 1

    if args.proxy_crash:
        crashes = sum(r.proxy_crashes for r in parallel.results.values())
        lost = sum(r.hits_lost_to_recovery for r in parallel.results.values())
        degraded = sum(
            r.degraded_window_requests for r in parallel.results.values()
        )
        ck_bytes = sum(
            r.checkpoint_bytes_written for r in parallel.results.values()
        )
        print()
        print(f"proxy recovery: {crashes} crashes, {degraded} degraded-window "
              f"requests, {lost} hits lost, {ck_bytes:,} checkpoint bytes")
        if crashes <= 0:
            print("FAIL: --proxy-crash registered no proxy crashes")
            return 1
        if lost <= 0:
            print("FAIL: --proxy-crash lost no hits to recovery windows")
            return 1
        if ck_bytes <= 0:
            print("FAIL: --proxy-crash wrote no checkpoint bytes")
            return 1

    if args.federation:
        ipx = sum(r.interproxy_hits for r in parallel.results.values())
        false_hits = sum(r.digest_false_hits for r in parallel.results.values())
        digest_bytes = sum(
            r.digest_bytes_exchanged for r in parallel.results.values()
        )
        print()
        print(f"federation: {ipx} cross-proxy hits, {false_hits} digest "
              f"false hits, {digest_bytes:,} digest bytes exchanged")
        if ipx <= 0:
            print("FAIL: --federation served no cross-proxy hits")
            return 1
        if false_hits <= 0:
            print("FAIL: --federation produced no digest false hits")
            return 1

    if args.adversarial:
        corrupt = sum(r.corrupt_deliveries for r in parallel.results.values())
        poisoned = sum(r.poisoned_requests for r in parallel.results.values())
        quarantined = sum(
            r.quarantined_peers for r in parallel.results.values()
        )
        rescued = sum(
            r.quarantine_rescued_hits for r in parallel.results.values()
        )
        defended_wasted = sum(
            r.overhead.wasted_round_trip_time for r in parallel.results.values()
        )
        print()
        print(f"adversarial: {corrupt} corrupt deliveries over "
              f"{poisoned} poisoned requests, {quarantined} peers "
              f"quarantined, {rescued} hits rescued by the ban list")
        if corrupt <= 0:
            print("FAIL: --adversarial attributed no corrupt deliveries")
            return 1
        if quarantined <= 0:
            print("FAIL: --adversarial quarantined no peers")
            return 1
        # the same attack with the defense disarmed: quarantine must
        # strictly reduce the time wasted on failed remote probes.
        undefended_grid = {
            k: v for k, v in grid.items() if k != "quarantine_threshold"
        }
        undefended = run_policy_sweep(trace, workers=0, **undefended_grid)
        if undefended.failures:
            print("FAIL: no-defense comparison run had cell failures")
            return 1
        undefended_wasted = sum(
            r.overhead.wasted_round_trip_time
            for r in undefended.results.values()
        )
        print(f"wasted round-trip time: defended {defended_wasted:,.2f}s "
              f"vs no defense {undefended_wasted:,.2f}s")
        if not defended_wasted < undefended_wasted:
            print("FAIL: quarantine did not strictly reduce wasted "
                  "round-trip time vs. the no-defense run")
            return 1

    if args.chaos:
        import copy

        windows = sum(r.partition_windows for r in parallel.results.values())
        lost = sum(r.digest_exchanges_lost for r in parallel.results.values())
        wasted = sum(
            r.wasted_partition_time for r in parallel.results.values()
        )
        crashes = sum(r.proxy_crashes for r in parallel.results.values())
        print()
        print(f"chaos: {windows} partition windows entered, {lost} digest "
              f"exchanges lost, {wasted:.2f}s wasted on dead links, "
              f"{crashes} proxy crashes composed in; invariant monitor "
              f"clean on every cell")
        if windows <= 0:
            print("FAIL: --chaos entered no partition windows")
            return 1
        if lost <= 0:
            print("FAIL: --chaos lost no digest exchanges to the partition")
            return 1
        if crashes <= 0:
            print("FAIL: --chaos composed no proxy crashes")
            return 1
        # one worker must agree with serial and the pool bit-identically.
        single = run_policy_sweep(trace, workers=1, **grid)
        if single.failures:
            print("FAIL: workers=1 chaos run had cell failures")
            return 1
        lone = [
            key
            for key in serial.results
            if dataclasses.asdict(serial.results[key])
            != dataclasses.asdict(single.results[key])
        ]
        if lone:
            print(f"FAIL: {len(lone)} cells diverged between serial and "
                  "workers=1 under chaos")
            return 1
        print(f"workers=1 rerun: all {len(single.results)} chaos cells "
              "bit-identical to serial")
        # negative test: the monitor must reject a corrupted result.
        probe = grid["chaos"].compose(
            SimulationConfig.relative(
                trace, proxy_frac=0.10,
                browser_sizing=grid["browser_sizing"],
                federation=grid["federation"], chaos=grid["chaos"],
            )
        )
        monitor = InvariantMonitor(probe, check_every=1)
        intact = next(iter(parallel.results.values()))
        monitor.check_final(intact)
        corrupted = copy.deepcopy(intact)
        corrupted.overhead.wasted_offline_time += 1e6
        try:
            monitor.check_final(corrupted)
        except InvariantViolation as exc:
            print(f"monitor negative test: caught {exc}")
        else:
            print("FAIL: the invariant monitor accepted a corrupted ledger")
            return 1

    if args.journal:
        print(f"journal written to {args.journal}")
        # resume from the journal we just wrote: every cell must restore
        # without re-simulating, and the restored results (including any
        # recovery counters) must match the live run exactly.
        resume_options = dataclasses.replace(
            options, journal=None, faults=None, resume=args.journal
        )
        resumed = run_policy_sweep(
            trace, workers=0, options=resume_options, **grid
        )
        if resumed.failures:
            print("FAIL: resume run had cell failures")
            return 1
        resimulated = [k for k, n in resumed.attempts.items() if n > 0]
        if resimulated:
            print(f"FAIL: resume re-simulated {len(resimulated)} cells "
                  "instead of restoring them from the journal")
            return 1
        stale = [
            key
            for key in parallel.results
            if dataclasses.asdict(parallel.results[key])
            != dataclasses.asdict(resumed.results[key])
        ]
        if stale:
            print(f"FAIL: {len(stale)} journal-restored cells diverged "
                  "from the live run")
            return 1
        print(f"resume: all {len(resumed.results)} cells restored from "
              "the journal bit-identically")

    if args.stream:
        from repro.core import simulate_stream
        from repro.util.memory import peak_rss_bytes

        stream_diverged = []
        for (org, frac), ref in serial.results.items():
            config = SimulationConfig.relative(
                trace, proxy_frac=frac, browser_sizing=grid["browser_sizing"]
            )
            got = simulate_stream(trace, org, config)
            if dataclasses.asdict(got) != dataclasses.asdict(ref):
                stream_diverged.append((org, frac))
        rss = peak_rss_bytes()
        ceiling = args.stream_rss_ceiling_mb * 1024 * 1024
        print()
        print(f"stream engine: {len(serial.results)} cells replayed "
              f"flat-state, process peak RSS {rss / (1024 * 1024):.0f} MB "
              f"(ceiling {args.stream_rss_ceiling_mb} MB)")
        if stream_diverged:
            print(f"FAIL: {len(stream_diverged)} streamed cells diverged "
                  "from the serial run:")
            for org, frac in stream_diverged:
                print(f"  ({org.value}, {frac:g})")
            return 1
        if rss > ceiling:
            print("FAIL: peak RSS exceeds the --stream ceiling")
            return 1

    if args.mrc:
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        from make_goldens import (
            MRC_APPROX_TOLERANCE,
            MRC_EXACT_TOLERANCE,
        )

        from repro.analysis.mrc import (
            MRC_EXACT_ORGANIZATIONS,
            capacity_grid,
            compute_mrc,
        )
        from repro.traces.sampling import SAMPLE_ERROR_BOUNDS, build_sample_report

        if args.sample_rate not in SAMPLE_ERROR_BOUNDS:
            parser.error(f"--sample-rate {args.sample_rate:g} has no documented "
                         f"bound; choose from {sorted(SAMPLE_ERROR_BOUNDS)}")

        mrc_sweep = run_policy_sweep(trace, workers=0, mrc=True, **grid)
        if mrc_sweep.failures:
            print("FAIL: mrc=True sweep had cell failures")
            return 1
        worst_exact = worst_approx = 0.0
        for (org, frac), ref in serial.results.items():
            got = mrc_sweep.get(org, frac)
            err = max(abs(got.hit_ratio - ref.hit_ratio),
                      abs(got.byte_hit_ratio - ref.byte_hit_ratio))
            if org in MRC_EXACT_ORGANIZATIONS:
                worst_exact = max(worst_exact, err)
            else:
                worst_approx = max(worst_approx, err)
        print()
        print(f"mrc: one pass covered {mrc_sweep.timing.mrc_points} cells "
              f"({mrc_sweep.timing.replays_avoided} replays avoided); "
              f"vs serial replay worst |err| exact={worst_exact:.2e} "
              f"(bound {MRC_EXACT_TOLERANCE:g}), approx={worst_approx:.4f} "
              f"(bound {MRC_APPROX_TOLERANCE:g})")
        if worst_exact > MRC_EXACT_TOLERANCE:
            print("FAIL: mrc pass not bit-exact for a pure-LRU organization")
            return 1
        if worst_approx > MRC_APPROX_TOLERANCE:
            print("FAIL: mrc pass exceeds the documented approximation bound")
            return 1

        bound = SAMPLE_ERROR_BOUNDS[args.sample_rate]
        report = build_sample_report(
            trace, capacity_grid(trace, grid["fractions"]), args.sample_rate,
            organizations=grid["organizations"],
        )
        print(f"sampled mrc: {report.summary()}")
        print(f"documented bound at rate {args.sample_rate:g}: {bound:g}")
        if report.max_abs_hit_error > bound or report.max_abs_byte_hit_error > bound:
            print("FAIL: sampled pass exceeds the documented error bound")
            return 1

    speedup = parallel.timing.speedup_vs_serial
    print()
    print(f"OK: all {len(serial.results)} cells bit-identical; "
          f"parallel speedup vs serial {speedup:.2f}x on {workers} workers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
