"""Serial-vs-parallel smoke sweep — run by CI.

Replays a fig2-scale grid (all five organizations x the paper's four
relative cache sizes) twice: once in-process (``workers=0``) and once
over a process pool sized to the machine.  Exits non-zero unless the
two runs are bit-identical; prints both timing reports and the
measured speedup.

With ``--inject-fault`` the parallel run additionally suffers an
injected worker kill and a transient cell failure (with retries
enabled), exercising the engine's pool-crash recovery and retry paths
end to end — the recovered results must still be bit-identical to the
clean serial run.

With ``--churn`` every cell runs under session-based client churn, and
``--max-holder-retries N`` arms the engine's holder failover.  The
smoke then additionally asserts that failover actually rescued remote
hits (some backup holder served a request whose primary was offline) —
the resilience path must be exercised, not just survived.

    PYTHONPATH=src python tools/smoke_parallel.py [--workers N] [--requests M]
        [--journal PATH] [--inject-fault] [--churn] [--max-holder-retries N]
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core import (  # noqa: E402
    ChurnModel,
    EngineOptions,
    FaultPlan,
    Organization,
    resolve_workers,
    run_policy_sweep,
)
from repro.core.sweep import PAPER_SIZE_FRACTIONS  # noqa: E402
from repro.traces.profiles import get_profile  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None,
                        help="pool width for the parallel run (default: all CPUs)")
    parser.add_argument("--requests", type=int, default=30_000,
                        help="trace length (default 30k: fig2 scale, CI-friendly)")
    parser.add_argument("--trace", default="NLANR-uc")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="write the parallel run's JSONL attempt journal here")
    parser.add_argument("--inject-fault", action="store_true",
                        help="kill one worker and fail one cell transiently "
                             "during the parallel run (recovery must still "
                             "yield bit-identical results)")
    parser.add_argument("--churn", action="store_true",
                        help="run every cell under session-based client churn "
                             "(default 1800s on / 600s off sessions)")
    parser.add_argument("--max-holder-retries", type=int, default=0, metavar="N",
                        help="holder failover budget; with --churn the smoke "
                             "asserts failover rescued at least one remote hit")
    args = parser.parse_args(argv)

    workers = resolve_workers(args.workers)
    trace = get_profile(args.trace).scaled(args.requests).generate()
    grid = dict(
        organizations=tuple(Organization),
        fractions=PAPER_SIZE_FRACTIONS,
        browser_sizing="minimum",
    )
    if args.churn:
        grid["churn"] = ChurnModel()
        grid["max_holder_retries"] = args.max_holder_retries
        print(f"churn: 1800s on / 600s off sessions, "
              f"max_holder_retries={args.max_holder_retries}")
    n_cells = len(grid["organizations"]) * len(grid["fractions"])
    print(f"smoke sweep: {trace.name}, {len(trace):,} requests, {n_cells} cells")

    options = None
    if args.inject_fault or args.journal:
        faults = None
        retries = 0
        if args.inject_fault:
            # one hard worker death and one transient failure, both on
            # the first attempt only — the engine must absorb both.
            faults = FaultPlan.parse(f"kill:0, raise:{n_cells // 2}")
            retries = 2
            print("fault injection: worker kill on cell 0, transient "
                  f"failure on cell {n_cells // 2} (retries={retries})")
        options = EngineOptions(
            retries=retries, journal=args.journal, faults=faults,
            backoff_base=0.1,
        )

    serial = run_policy_sweep(trace, workers=0, **grid)
    parallel = run_policy_sweep(trace, workers=workers, options=options, **grid)

    for sweep, label in ((serial, "serial"), (parallel, f"parallel x{workers}")):
        if sweep.failures:
            print(f"FAIL: {label} run had cell failures:")
            for failure in sweep.failures:
                print(f"  {failure}")
            return 1
        print()
        print(f"-- {label}")
        print(sweep.timing.render())

    if args.inject_fault:
        retried = {k: n for k, n in parallel.attempts.items() if n > 1}
        print()
        print(f"recovered: pool crashes={parallel.pool_crashes}, "
              f"cells retried={len(retried)}")
        if parallel.pool_crashes < 1:
            print("FAIL: injected worker kill did not register a pool crash")
            return 1

    diverged = [
        key
        for key in serial.results
        if dataclasses.asdict(serial.results[key])
        != dataclasses.asdict(parallel.results[key])
    ]
    if diverged:
        print(f"FAIL: {len(diverged)} cells diverged between serial and parallel:")
        for org, frac in diverged:
            print(f"  ({org.value}, {frac:g})")
        return 1

    if args.churn and args.max_holder_retries > 0:
        rescued = sum(
            r.failover_rescued_hits for r in parallel.results.values()
        )
        offline = sum(r.holder_unavailable for r in parallel.results.values())
        print()
        print(f"churn resilience: {offline} offline-holder probes, "
              f"{rescued} remote hits rescued by failover")
        if rescued <= 0:
            print("FAIL: churn + failover produced no rescued remote hits")
            return 1

    if args.journal:
        print(f"journal written to {args.journal}")

    speedup = parallel.timing.speedup_vs_serial
    print()
    print(f"OK: all {len(serial.results)} cells bit-identical; "
          f"parallel speedup vs serial {speedup:.2f}x on {workers} workers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
