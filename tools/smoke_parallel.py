"""Serial-vs-parallel smoke sweep — run by CI.

Replays a fig2-scale grid (all five organizations x the paper's four
relative cache sizes) twice: once in-process (``workers=0``) and once
over a process pool sized to the machine.  Exits non-zero unless the
two runs are bit-identical; prints both timing reports and the
measured speedup.

    PYTHONPATH=src python tools/smoke_parallel.py [--workers N] [--requests M]
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core import Organization, resolve_workers, run_policy_sweep  # noqa: E402
from repro.core.sweep import PAPER_SIZE_FRACTIONS  # noqa: E402
from repro.traces.profiles import get_profile  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None,
                        help="pool width for the parallel run (default: all CPUs)")
    parser.add_argument("--requests", type=int, default=30_000,
                        help="trace length (default 30k: fig2 scale, CI-friendly)")
    parser.add_argument("--trace", default="NLANR-uc")
    args = parser.parse_args(argv)

    workers = resolve_workers(args.workers)
    trace = get_profile(args.trace).scaled(args.requests).generate()
    grid = dict(
        organizations=tuple(Organization),
        fractions=PAPER_SIZE_FRACTIONS,
        browser_sizing="minimum",
    )
    print(f"smoke sweep: {trace.name}, {len(trace):,} requests, "
          f"{len(grid['organizations']) * len(grid['fractions'])} cells")

    serial = run_policy_sweep(trace, workers=0, **grid)
    parallel = run_policy_sweep(trace, workers=workers, **grid)

    for sweep, label in ((serial, "serial"), (parallel, f"parallel x{workers}")):
        if sweep.failures:
            print(f"FAIL: {label} run had cell failures:")
            for failure in sweep.failures:
                print(f"  {failure}")
            return 1
        print()
        print(f"-- {label}")
        print(sweep.timing.render())

    diverged = [
        key
        for key in serial.results
        if dataclasses.asdict(serial.results[key])
        != dataclasses.asdict(parallel.results[key])
    ]
    if diverged:
        print(f"FAIL: {len(diverged)} cells diverged between serial and parallel:")
        for org, frac in diverged:
            print(f"  ({org.value}, {frac:g})")
        return 1

    speedup = parallel.timing.speedup_vs_serial
    print()
    print(f"OK: all {len(serial.results)} cells bit-identical; "
          f"parallel speedup vs serial {speedup:.2f}x on {workers} workers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
