"""Inter-proxy partition tolerance + composed chaos (PR 9).

Covers the link-fault schedule mechanics, the validation helpers'
CLI-flag-naming errors, partition semantics in the federated engine
(dropped digest exchanges are not charged, fail-fast probes land on
``wasted_partition_time``, healing triggers anti-entropy), the
:class:`~repro.core.ChaosPlan` composition rules, the
:class:`~repro.core.InvariantMonitor` positive and negative paths,
composed-fault scenarios (crash during partition, quarantine under
partition), the streaming engine's rejection of the new knobs, and the
end-to-end ``baps run chaos`` sweep with its bracketing anchors.
"""

import dataclasses

import pytest

from repro.adversarial import AdversarialConfig
from repro.core import (
    ChaosPlan,
    FederationConfig,
    InvariantMonitor,
    InvariantViolation,
    Organization,
    SimulationConfig,
    simulate,
    simulate_stream,
)
from repro.core.churn import ChurnModel
from repro.core.proxy_faults import ProxyFaultModel
from repro.core.simulator import Simulator
from repro.experiments import chaos as chaos_experiment
from repro.federation import FederatedSimulator, LinkFaultModel, PartitionSchedule
from repro.traces.profiles import small_paper_trace
from repro.util.validation import (
    check_partition_schedule,
    check_partition_windows,
)
from tests.conftest import assert_result_roundtrips

ORG = Organization.BROWSERS_AWARE_PROXY


def fed_config(trace, period=300.0, link=None, n_proxies=2, **kwargs):
    return SimulationConfig.relative(
        trace,
        proxy_frac=0.10,
        browser_sizing="minimum",
        federation=FederationConfig(
            n_proxies=n_proxies, digest_period=period, link_faults=link
        ),
        **kwargs,
    )


# -- LinkFaultModel / PartitionSchedule ---------------------------------------


def test_link_fault_model_validates():
    with pytest.raises(ValueError, match="partition source"):
        LinkFaultModel()
    with pytest.raises(ValueError, match="not both"):
        LinkFaultModel(partition_rate=0.1, partition_windows=((0.0, 1.0),))
    with pytest.raises(ValueError, match="--partition-at"):
        LinkFaultModel(partition_windows=())
    with pytest.raises(ValueError, match="--partition-length"):
        LinkFaultModel(partition_windows=((5.0, 5.0),))
    with pytest.raises(ValueError, match="non-overlapping"):
        LinkFaultModel(partition_windows=((0.0, 10.0), (5.0, 20.0)))
    with pytest.raises(ValueError, match="mean_partition_seconds"):
        LinkFaultModel(partition_rate=0.1, mean_partition_seconds=0.0)


def test_link_fault_model_sorts_windows():
    model = LinkFaultModel(partition_windows=((30.0, 40.0), (0.0, 10.0)))
    assert model.partition_windows == ((0.0, 10.0), (30.0, 40.0))
    assert model.is_explicit


def test_partition_window_span_check_names_flags():
    with pytest.raises(ValueError, match=r"--partition-at.*trace span"):
        check_partition_windows(((100.0, 200.0),), span=50.0)
    # a window straddling the span end is fine — it fires.
    check_partition_windows(((40.0, 200.0),), span=50.0)


def test_partition_schedule_source_errors_name_chaos_seed():
    with pytest.raises(ValueError, match="--chaos-seed"):
        check_partition_schedule(0.0, None)


def test_explicit_schedule_state_machine():
    model = LinkFaultModel(partition_windows=((10.0, 20.0), (30.0, 40.0)))
    sched = PartitionSchedule(model, n_proxies=4)
    assert sched.poll(5.0) == (0, 0)
    assert not sched.active
    assert sched.poll(10.0) == (1, 0)  # half-open: starts at 10
    assert sched.active
    # the split: {0,1} vs {2,3}
    assert sched.connected(0, 1)
    assert sched.connected(2, 3)
    assert not sched.connected(0, 2)
    assert not sched.connected(1, 3)
    assert sched.connected(2, 2)
    assert sched.poll(19.9) == (0, 0)
    assert sched.poll(20.0) == (0, 1)  # half-open: healed at 20
    assert sched.connected(0, 2)
    # a gap spanning a whole window counts both edges exactly once.
    assert sched.poll(99.0) == (1, 1)
    assert not sched.active


def test_rate_schedule_is_seed_deterministic():
    model = LinkFaultModel(partition_rate=1 / 50.0, mean_partition_seconds=20.0)

    def windows(seed):
        sched = PartitionSchedule(model, n_proxies=2, seed=seed)
        out = []
        state = False
        for t in range(0, 2000):
            sched.poll(float(t))
            if sched.active != state:
                state = sched.active
                out.append((t, state))
        return out

    assert windows(7) == windows(7)
    assert windows(7) != windows(8)
    assert any(active for _, active in windows(7))


# -- partition semantics in the federated engine ------------------------------


def test_never_firing_window_is_bit_identical(small_trace):
    span = small_trace.duration
    base = fed_config(small_trace)
    # A window entirely past the last request: the schedule exists but
    # never fires, and the replay must not change by a single bit.
    idle = fed_config(
        small_trace, link=LinkFaultModel(partition_windows=((span + 1, span + 2),))
    )
    a = simulate(small_trace, ORG, base)
    b = simulate(small_trace, ORG, idle)
    assert a.hit_ratio == b.hit_ratio
    assert a.digest_bytes_exchanged == b.digest_bytes_exchanged
    assert b.partition_windows == 0
    assert b.digest_exchanges_lost == 0
    assert b.wasted_partition_time == 0.0
    assert b.antientropy_bytes == 0


def test_partition_degrades_and_heals(small_trace):
    span = small_trace.duration
    window = (0.25 * span, 0.75 * span)
    cfg = fed_config(
        small_trace, link=LinkFaultModel(partition_windows=(window,))
    )
    baseline = simulate(small_trace, ORG, fed_config(small_trace))
    result = simulate(small_trace, ORG, cfg)
    assert result.partition_windows == 1
    assert result.digest_exchanges_lost > 0
    assert result.wasted_partition_time > 0.0
    # healing triggers one anti-entropy refresh, charged separately.
    assert result.antientropy_bytes > 0
    assert result.hit_ratio < baseline.hit_ratio
    # the fail-fast probes are part of the wasted round-trip ledger.
    assert (
        result.overhead.wasted_round_trip_time
        >= result.wasted_partition_time
    )
    assert_result_roundtrips(result)


def test_dropped_exchanges_are_not_charged(small_trace):
    """Regression: a digest copy the partition dropped must not be
    billed to ``digest_bytes_exchanged`` — the bytes never crossed."""
    span = small_trace.duration
    always = fed_config(
        small_trace,
        link=LinkFaultModel(partition_windows=((0.0, span + 1.0),)),
    )
    result = simulate(small_trace, ORG, always)
    assert result.digest_exchanges_lost > 0
    assert result.digest_bytes_exchanged == 0
    assert result.interproxy_bandwidth_time == 0.0
    # nothing heals inside the trace, so no anti-entropy either.
    assert result.antientropy_bytes == 0
    assert result.interproxy_hits == 0


def test_partial_partition_charges_only_delivered_copies(small_trace):
    """With the window covering half the trace, the charged digest
    bytes must land strictly between zero and the no-fault bill."""
    span = small_trace.duration
    half = fed_config(
        small_trace,
        link=LinkFaultModel(partition_windows=((0.0, 0.5 * span),)),
    )
    clean = simulate(small_trace, ORG, fed_config(small_trace))
    result = simulate(small_trace, ORG, half)
    assert 0 < result.digest_bytes_exchanged < clean.digest_bytes_exchanged


# -- ChaosPlan composition ----------------------------------------------------


def test_chaos_plan_route_matches_direct_route(small_trace):
    span = small_trace.duration
    link = LinkFaultModel(partition_windows=((0.25 * span, 0.75 * span),))
    direct = simulate(small_trace, ORG, fed_config(small_trace, link=link))
    via_plan = simulate(
        small_trace,
        ORG,
        fed_config(small_trace, chaos=ChaosPlan(link_faults=link)),
    )
    assert dataclasses.asdict(direct) == dataclasses.asdict(via_plan)


def test_chaos_plan_owns_its_fault_models(small_trace):
    churn = ChurnModel()
    with pytest.raises(ValueError, match="chaos plan owns"):
        SimulationConfig(
            proxy_capacity=1000,
            browser_capacity=100,
            churn=churn,
            chaos=ChaosPlan(churn=churn),
        )


def test_chaos_link_faults_require_federation():
    link = LinkFaultModel(partition_windows=((0.0, 1.0),))
    with pytest.raises(ValueError, match="federation"):
        SimulationConfig(
            proxy_capacity=1000,
            browser_capacity=100,
            chaos=ChaosPlan(link_faults=link),
        )
    with pytest.raises(ValueError):
        SimulationConfig(
            proxy_capacity=1000,
            browser_capacity=100,
            federation=FederationConfig(n_proxies=2, link_faults=link),
            chaos=ChaosPlan(link_faults=link),
        )


def test_compose_is_idempotent():
    plan = ChaosPlan(
        proxy_faults=ProxyFaultModel(crash_times=(10.0,)),
        seed=3,
        check_invariants_every=100,
    )
    cfg = SimulationConfig(
        proxy_capacity=1000, browser_capacity=100, chaos=plan
    )
    once = plan.compose(cfg)
    assert once.proxy_faults == plan.proxy_faults
    assert once.chaos == ChaosPlan(check_invariants_every=100)
    assert once.availability_seed != cfg.availability_seed
    # composing the residual again changes nothing.
    assert once.chaos.compose(once) == once


def test_chaos_seed_folds_into_substreams(small_trace):
    base = SimulationConfig.relative(
        small_trace, proxy_frac=0.10, browser_sizing="minimum",
        churn=ChurnModel(),
    )
    seeded = base.with_(churn=None, chaos=ChaosPlan(churn=ChurnModel(), seed=11))
    a = simulate(small_trace, ORG, base)
    b = simulate(small_trace, ORG, seeded)
    # same churn model, different derived stream: offline probes differ.
    assert a.holder_unavailable != b.holder_unavailable
    # and the fold is itself deterministic.
    assert (
        simulate(small_trace, ORG, seeded).holder_unavailable
        == b.holder_unavailable
    )


def test_chaos_plan_validates_cadence():
    with pytest.raises(ValueError, match="check_invariants_every"):
        ChaosPlan(check_invariants_every=-1)


# -- InvariantMonitor ---------------------------------------------------------


def _monitored_result(trace, **plan_kwargs):
    cfg = SimulationConfig.relative(
        trace, proxy_frac=0.10, browser_sizing="minimum",
        chaos=ChaosPlan(check_invariants_every=500, **plan_kwargs),
    )
    sim = Simulator(trace, ORG, cfg)
    return sim, sim.run()


def test_monitor_runs_mid_replay_and_stays_clean(small_trace):
    sim, result = _monitored_result(
        small_trace, proxy_faults=ProxyFaultModel(crash_times=(20_000.0,))
    )
    assert result.proxy_crashes == 1
    # checked during the replay, not just at finalise.
    assert sim._monitor is not None
    assert sim._monitor.checks_run >= len(small_trace) // 500 - 1


def test_monitor_clean_on_federated_partition_run(small_trace):
    span = small_trace.duration
    link = LinkFaultModel(partition_windows=((0.25 * span, 0.75 * span),))
    cfg = fed_config(
        small_trace,
        chaos=ChaosPlan(link_faults=link, check_invariants_every=500),
    )
    engine = FederatedSimulator(small_trace, ORG, cfg)
    result = engine.run()
    assert result.partition_windows == 1
    assert engine.monitor is not None
    assert engine.monitor.checks_run > 1


def test_monitor_catches_injected_corruption(small_trace):
    sim, result = _monitored_result(small_trace)
    monitor = InvariantMonitor(sim.config, check_every=1)
    monitor.check_final(result)  # intact result passes

    broken = dataclasses.replace(result)
    broken.n_requests += 1
    with pytest.raises(InvariantViolation, match="hits . misses == requests"):
        monitor.check_final(broken)

    broken = dataclasses.replace(result)
    broken.overhead = dataclasses.replace(result.overhead)
    broken.overhead.wasted_offline_time += 1e6
    with pytest.raises(InvariantViolation, match="covers its breakdown"):
        monitor.check_final(broken)

    broken = dataclasses.replace(result)
    broken.overhead = dataclasses.replace(result.overhead)
    broken.overhead.proxy_hit_time = float("nan")
    with pytest.raises(InvariantViolation, match="finite"):
        monitor.check_final(broken)

    broken = dataclasses.replace(result)
    broken.partition_windows = 3
    with pytest.raises(
        InvariantViolation, match="partition_windows stays zero"
    ):
        monitor.check_final(broken)


def test_monitor_violation_names_request_index(small_trace):
    sim, result = _monitored_result(small_trace)
    monitor = InvariantMonitor(sim.config, check_every=1)
    broken = dataclasses.replace(result)
    broken.proxy_crashes = 5
    with pytest.raises(InvariantViolation, match=r"at request 8000"):
        monitor.check_final(broken)


def test_monitor_validates_cadence(small_trace):
    cfg = SimulationConfig.relative(
        small_trace, proxy_frac=0.10, browser_sizing="minimum"
    )
    with pytest.raises(ValueError, match="check_every"):
        InvariantMonitor(cfg, check_every=0)


# -- composed faults ----------------------------------------------------------


def test_crash_during_partition_composes(small_trace):
    span = small_trace.duration
    plan = ChaosPlan(
        proxy_faults=ProxyFaultModel(crash_times=(0.5 * span,)),
        link_faults=LinkFaultModel(
            partition_windows=((0.4 * span, 0.6 * span),)
        ),
        check_invariants_every=1000,
    )
    cfg = fed_config(small_trace, chaos=plan)
    result = simulate(small_trace, ORG, cfg)
    assert result.proxy_crashes >= 1
    assert result.partition_windows == 1
    assert result.digest_exchanges_lost > 0
    assert result.recovery_time > 0.0
    assert_result_roundtrips(result)


def test_quarantine_under_partition_composes(small_trace):
    span = small_trace.duration
    plan = ChaosPlan(
        adversarial=AdversarialConfig(polluter_fraction=0.3),
        link_faults=LinkFaultModel(
            partition_windows=((0.3 * span, 0.7 * span),)
        ),
        check_invariants_every=1000,
    )
    cfg = fed_config(
        small_trace,
        chaos=plan,
        quarantine_threshold=2,
        max_holder_retries=2,
    )
    result = simulate(small_trace, ORG, cfg)
    assert result.corrupt_deliveries > 0
    assert result.quarantined_peers > 0
    assert result.partition_windows == 1
    assert result.digest_exchanges_lost > 0
    assert_result_roundtrips(result)


# -- streaming engine stays honest about its subset ---------------------------


def test_stream_rejects_chaos_and_link_faults(small_trace):
    cfg = SimulationConfig.relative(
        small_trace, proxy_frac=0.10, browser_sizing="minimum"
    )
    with pytest.raises(
        ValueError, match="simulate_stream does not support chaos plans"
    ):
        simulate_stream(
            small_trace, ORG, cfg.with_(chaos=ChaosPlan(seed=1))
        )
    link = LinkFaultModel(partition_windows=((0.0, 1.0),))
    with pytest.raises(
        ValueError, match="simulate_stream does not support link_faults"
    ):
        simulate_stream(
            small_trace,
            ORG,
            cfg.with_(federation=FederationConfig(n_proxies=2, link_faults=link)),
        )


# -- the experiment -----------------------------------------------------------


def test_chaos_experiment_brackets(small_trace):
    span = small_trace.duration
    res = chaos_experiment.run(
        trace=small_trace,
        partition_lengths=(0.3 * span,),
        digest_periods=(span / 12,),
        workers=0,
    )
    assert res.brackets_all()
    cell = res.cell(0.3 * span, span / 12)
    assert cell.partition_windows == 1
    assert cell.digest_exchanges_lost > 0
    for period in res.digest_periods:
        assert res.floor[period].digest_bytes_exchanged == 0
        assert res.ceiling[period].partition_windows == 0
    table = res.render()
    assert "partition" in table
    assert "exchanges lost" in table
    assert_result_roundtrips(cell)


def test_chaos_experiment_worker_identity():
    trace = small_paper_trace("NLANR-uc", 4_000)
    span = trace.duration
    kwargs = dict(
        trace=trace,
        partition_lengths=(0.3 * span,),
        digest_periods=(span / 12,),
    )
    serial = chaos_experiment.run(workers=0, **kwargs)
    pooled = chaos_experiment.run(workers=2, **kwargs)
    for key in serial.cells:
        assert dataclasses.asdict(serial.cells[key]) == dataclasses.asdict(
            pooled.cells[key]
        )
