"""Cross-feature integration: the engine's optional features must
compose (policies × index kinds × tiers × churn × consistency)."""

import pytest

from repro.consistency import AdaptiveTTLPolicy
from repro.core import Organization, SimulationConfig, simulate
from repro.index.staleness import PeriodicUpdatePolicy


def test_slru_policy_end_to_end(small_trace):
    config = SimulationConfig.relative(
        small_trace,
        proxy_frac=0.1,
        proxy_policy="slru",
        browser_policy="slru",
    )
    r = simulate(small_trace, Organization.BROWSERS_AWARE_PROXY, config)
    assert 0 < r.hit_ratio < 1
    assert r.by_location_remote_hits() > 0


def test_mixed_policies_browser_vs_proxy(small_trace):
    config = SimulationConfig.relative(
        small_trace,
        proxy_frac=0.1,
        proxy_policy="gdsf",
        browser_policy="lru",
    )
    r = simulate(small_trace, Organization.BROWSERS_AWARE_PROXY, config)
    assert r.n_requests == len(small_trace)


def test_bloom_index_with_churn(small_trace):
    config = SimulationConfig.relative(
        small_trace, proxy_frac=0.1, index_kind="bloom"
    ).with_(holder_availability=0.6)
    r = simulate(small_trace, Organization.BROWSERS_AWARE_PROXY, config)
    assert r.holder_unavailable > 0
    assert r.n_requests == len(small_trace)


def test_periodic_index_with_consistency(small_trace):
    config = SimulationConfig.relative(small_trace, proxy_frac=0.1).with_(
        index_update_policy=PeriodicUpdatePolicy(threshold=0.1),
        consistency=AdaptiveTTLPolicy(),
    )
    r = simulate(small_trace, Organization.BROWSERS_AWARE_PROXY, config)
    assert r.n_requests == len(small_trace)
    assert r.consistency_stats.validations > 0


def test_tiered_with_ttl_and_security(small_trace):
    from repro.security import SecurityOverheadModel

    config = SimulationConfig.relative(
        small_trace,
        proxy_frac=0.1,
        memory_fraction=0.1,
        security=SecurityOverheadModel(),
    ).with_(index_entry_ttl=3600.0)
    r = simulate(small_trace, Organization.BROWSERS_AWARE_PROXY, config)
    assert r.uses_memory_tier
    if r.by_location_remote_hits():
        assert r.overhead.security_time > 0


def test_everything_at_once(small_trace):
    """The kitchen sink must still conserve requests."""
    config = SimulationConfig.relative(
        small_trace,
        proxy_frac=0.1,
        browser_sizing="average",
        memory_fraction=0.1,
        browser_memory_fraction=0.5,
        index_kind="bloom",
    ).with_(
        holder_availability=0.8,
        consistency=AdaptiveTTLPolicy(),
    )
    from repro.core import HitLocation

    r = simulate(small_trace, Organization.BROWSERS_AWARE_PROXY, config)
    total = r.hits + r.by_location[HitLocation.ORIGIN].misses
    assert total == len(small_trace)
    assert r.n_requests == len(small_trace)
    assert 0 < r.hit_ratio < 1
    assert abs(r.breakdown().total - r.hit_ratio) < 1e-9


def test_tiered_rejects_slru(small_trace):
    from repro.core import Simulator

    config = SimulationConfig.relative(
        small_trace, proxy_frac=0.1, memory_fraction=0.1, browser_policy="slru"
    )
    with pytest.raises(ValueError, match="LRU"):
        Simulator(small_trace, Organization.PROXY_AND_LOCAL_BROWSER, config)
