"""Trace container tests."""

import numpy as np
import pytest

from repro.traces.record import Request, Trace


def make_trace(**overrides):
    data = dict(
        timestamps=np.array([0.0, 1.0, 2.0, 3.0]),
        clients=np.array([0, 1, 0, 2]),
        docs=np.array([5, 5, 6, 5]),
        sizes=np.array([100, 100, 250, 110]),
        versions=np.array([0, 0, 0, 1]),
        name="t",
    )
    data.update(overrides)
    return Trace(**data)


def test_len_and_getitem():
    t = make_trace()
    assert len(t) == 4
    r = t[1]
    assert isinstance(r, Request)
    assert (r.timestamp, r.client, r.doc, r.size, r.version) == (1.0, 1, 5, 100, 0)
    assert r.key == 5


def test_iteration_matches_columns():
    t = make_trace()
    rows = list(t)
    assert [r.doc for r in rows] == [5, 5, 6, 5]
    assert [r.size for r in rows] == [100, 100, 250, 110]


def test_iter_rows_tuples():
    t = make_trace()
    rows = list(t.iter_rows())
    assert rows[0] == (0.0, 0, 5, 100, 0)
    assert len(rows) == 4


def test_basic_stats():
    t = make_trace()
    assert t.n_clients == 3
    assert t.n_docs == 2
    assert t.total_bytes == 560
    assert t.duration == 3.0


def test_infinite_cache_bytes_counts_unique_doc_versions():
    t = make_trace()
    # unique (doc, version): (5,0)=100, (6,0)=250, (5,1)=110
    assert t.infinite_cache_bytes() == 460


def test_client_footprint_bytes():
    t = make_trace()
    fp = t.client_footprint_bytes()
    # client0: (5,0)+(6,0) = 350; client1: (5,0)=100; client2: (5,1)=110
    assert fp.tolist() == [350, 100, 110]


def test_take_and_renumber():
    t = make_trace()
    sub = t.take(np.array([False, True, False, True]))
    assert len(sub) == 2
    dense = sub.renumbered()
    assert set(np.unique(dense.clients)) == {0, 1}
    assert set(np.unique(dense.docs)) == {0}


def test_renumber_preserves_urls():
    t = make_trace(urls={5: "http://a/", 6: "http://b/"})
    dense = t.renumbered()
    urls = {dense.url_of(d) for d in np.unique(dense.docs)}
    assert urls == {"http://a/", "http://b/"}


def test_url_of_synthesises_when_missing():
    t = make_trace()
    assert "doc-5" in t.url_of(5)


def test_from_requests_roundtrip():
    t = make_trace()
    rebuilt = Trace.from_requests(list(t), name="rb")
    assert np.array_equal(rebuilt.docs, t.docs)
    assert np.array_equal(rebuilt.sizes, t.sizes)


def test_empty_trace():
    t = Trace.empty()
    assert len(t) == 0
    assert t.n_clients == 0
    assert t.n_docs == 0
    assert t.total_bytes == 0
    assert t.duration == 0.0
    assert t.infinite_cache_bytes() == 0


def test_column_length_mismatch_rejected():
    with pytest.raises(ValueError, match="length"):
        make_trace(clients=np.array([0, 1]))


def test_decreasing_timestamps_rejected():
    with pytest.raises(ValueError, match="non-decreasing"):
        make_trace(timestamps=np.array([0.0, 2.0, 1.0, 3.0]))


def test_negative_sizes_rejected():
    with pytest.raises(ValueError, match="non-negative"):
        make_trace(sizes=np.array([100, -1, 250, 110]))
